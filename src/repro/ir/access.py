"""Affine tensor accesses.

Each tensor dimension is indexed by an affine expression of loop variables,
``sum_i coeff_i * loop_i + offset``.  This is rich enough to express every
operator the paper evaluates:

* GEMM / batch GEMM: single-term dimensions, coefficient 1 (``A[b, m, k]``).
* Convolution: sliding windows, e.g. the input height of a strided conv is
  ``oh * stride + kh``; after chain fusion, the producer convolution's output
  loops are substituted by consumer expressions, giving multi-term dims such
  as ``(oh2 * st2 + kh2) * st1 + kh1``.

The affine form gives closed-form *tile footprints*: for a dimension
``sum coeff_i * l_i``, a tile assigning ``T_i`` iterations to loop ``l_i``
touches ``sum coeff_i * (T_i - 1) + 1`` contiguous elements.  That is exactly
the quantity ``getFootprint`` needs in Algorithm 1, and it automatically
accounts for convolution halos / recomputation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff * loop) + offset`` over distinct loop names.

    ``terms`` is stored as a sorted tuple of (loop_name, coeff) for hashing
    and equality.  Coefficients must be positive: the IR builders only create
    forward strided accesses, which is all the evaluated workloads need.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    offset: int = 0

    @staticmethod
    def of(*terms: Tuple[str, int], offset: int = 0) -> "AffineExpr":
        """Build an expression from (loop, coeff) pairs, merging duplicates."""
        merged: Dict[str, int] = {}
        for name, coeff in terms:
            if coeff == 0:
                continue
            merged[name] = merged.get(name, 0) + coeff
        cleaned = tuple(sorted((n, c) for n, c in merged.items() if c != 0))
        for name, coeff in cleaned:
            if coeff < 0:
                raise ValueError(f"negative coefficient {coeff} for {name!r}")
        return AffineExpr(cleaned, offset)

    @staticmethod
    def var(name: str) -> "AffineExpr":
        """A single loop variable with coefficient 1."""
        return AffineExpr.of((name, 1))

    @property
    def loops(self) -> Tuple[str, ...]:
        """Names of the loops appearing in this expression."""
        return tuple(name for name, _ in self.terms)

    def coeff(self, loop_name: str) -> int:
        """Coefficient of ``loop_name`` (0 if absent)."""
        for name, coeff in self.terms:
            if name == loop_name:
                return coeff
        return 0

    def scaled(self, factor: int) -> "AffineExpr":
        """Multiply every coefficient and the offset by ``factor``."""
        return AffineExpr.of(
            *((n, c * factor) for n, c in self.terms),
            offset=self.offset * factor,
        )

    def substituted(self, mapping: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Replace loops by affine expressions (used by chain fusion).

        A producer's output loop (say ``oh1``) is replaced by the consumer's
        access expression (``oh2 * st2 + kh2``); coefficients compose
        multiplicatively.
        """
        terms: list = []
        offset = self.offset
        for name, coeff in self.terms:
            if name in mapping:
                sub = mapping[name].scaled(coeff)
                terms.extend(sub.terms)
                offset += sub.offset
            else:
                terms.append((name, coeff))
        return AffineExpr.of(*terms, offset=offset)

    def footprint(self, tiles: Mapping[str, float]) -> float:
        """Elements touched along this dimension by one tile.

        Args:
            tiles: tile size (iterations assigned to a block) per loop name.
                Loops absent from ``tiles`` contribute a single iteration.
        """
        span = 1.0
        for name, coeff in self.terms:
            span += coeff * (tiles.get(name, 1) - 1)
        return span

    def extent(self, extents: Mapping[str, int]) -> int:
        """Total elements spanned when every loop runs its full extent."""
        span = 1
        for name, coeff in self.terms:
            span += coeff * (extents[name] - 1)
        return span + self.offset

    def evaluate(self, point: Mapping[str, int]) -> int:
        """Value of the expression at a concrete iteration point."""
        value = self.offset
        for name, coeff in self.terms:
            value += coeff * point.get(name, 0)
        return value

    def __str__(self) -> str:
        parts = [
            name if coeff == 1 else f"{coeff}*{name}" for name, coeff in self.terms
        ]
        if self.offset:
            parts.append(str(self.offset))
        return " + ".join(parts) if parts else "0"


@dataclasses.dataclass(frozen=True)
class TensorAccess:
    """One operator's access pattern for one tensor.

    Attributes:
        tensor: name of the accessed tensor.
        dims: one affine expression per tensor dimension, outermost first.
    """

    tensor: str
    dims: Tuple[AffineExpr, ...]

    @staticmethod
    def simple(tensor: str, loop_names: Sequence[str]) -> "TensorAccess":
        """Access where each dim is a single loop with coefficient 1."""
        return TensorAccess(tensor, tuple(AffineExpr.var(n) for n in loop_names))

    @property
    def loops(self) -> Tuple[str, ...]:
        """Sorted unique loop names used anywhere in the access."""
        names = {name for dim in self.dims for name in dim.loops}
        return tuple(sorted(names))

    def uses(self, loop_name: str) -> bool:
        """Whether ``loop_name`` appears in any dimension's index."""
        return any(dim.coeff(loop_name) != 0 for dim in self.dims)

    def footprint(self, tiles: Mapping[str, float]) -> float:
        """Elements of the tensor touched by one tile (product over dims)."""
        footprint = 1.0
        for dim in self.dims:
            footprint *= dim.footprint(tiles)
        return footprint

    def substituted(self, mapping: Mapping[str, AffineExpr]) -> "TensorAccess":
        """Apply a loop substitution to every dimension."""
        return TensorAccess(
            self.tensor, tuple(dim.substituted(mapping) for dim in self.dims)
        )

    def region_from_ranges(
        self,
        ranges: Mapping[str, Tuple[int, int]],
        shape: Sequence[int],
    ) -> Tuple[Tuple[int, int], ...]:
        """Element range per dimension touched by a block of iteration ranges.

        Args:
            ranges: half-open iteration range per loop name; loops absent
                from the mapping contribute their single iteration 0.
            shape: tensor shape, used to clamp edge regions.

        Returns:
            per-dimension half-open ``(lo, hi)`` ranges.
        """
        out = []
        for dim, size in zip(self.dims, shape):
            lo = dim.offset
            hi = dim.offset
            for name, coeff in dim.terms:
                start, stop = ranges.get(name, (0, 1))
                lo += coeff * start
                hi += coeff * (stop - 1)
            hi += 1
            out.append((min(lo, size), min(hi, size)))
        return tuple(out)

    def region(
        self,
        block: Mapping[str, int],
        tiles: Mapping[str, int],
        shape: Sequence[int],
    ) -> Tuple[Tuple[int, int], ...]:
        """Element range per dimension touched by one block.

        Args:
            block: block index per loop name (block ``b`` covers iterations
                ``[b * T, (b + 1) * T)`` of that loop).
            tiles: tile size per loop name.
            shape: tensor shape, used to clamp edge tiles.

        Returns:
            per-dimension half-open ``(lo, hi)`` ranges.
        """
        ranges = []
        for dim, size in zip(self.dims, shape):
            lo = dim.offset
            span = 1
            for name, coeff in dim.terms:
                tile = tiles.get(name, 1)
                lo += coeff * block.get(name, 0) * tile
                span += coeff * (tile - 1)
            hi = min(lo + span, size)
            lo = min(lo, size)
            ranges.append((lo, hi))
        return tuple(ranges)

    def __str__(self) -> str:
        inside = ", ".join(str(d) for d in self.dims)
        return f"{self.tensor}[{inside}]"


def union_loops(accesses: Iterable[TensorAccess]) -> Tuple[str, ...]:
    """Sorted unique loop names used by a collection of accesses."""
    names = {name for access in accesses for name in access.loops}
    return tuple(sorted(names))
