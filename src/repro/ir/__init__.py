"""Tensor-expression IR: the substrate Chimera's analysis operates on.

Public surface:

* :mod:`repro.ir.dtypes` — element types.
* :mod:`repro.ir.loops` — :class:`Loop`, :class:`LoopKind`.
* :mod:`repro.ir.access` — affine accesses and tile footprints.
* :mod:`repro.ir.tensor` — :class:`TensorSpec`.
* :mod:`repro.ir.operator` — :class:`OperatorSpec`.
* :mod:`repro.ir.chain` — :class:`OperatorChain`.
* :mod:`repro.ir.builders` — GEMM / conv / softmax / relu constructors.
* :mod:`repro.ir.chains` — fused chain constructors (Figure 1 workloads).
* :mod:`repro.ir.graph` — whole-network compute DAGs.
* :mod:`repro.ir.stitch` — folding memory-intensive glue into CI chains.
"""

from .access import AffineExpr, TensorAccess
from .chain import OperatorChain, single_op_chain
from .chains import (
    attention_chain,
    batch_gemm_chain,
    conv_chain,
    conv_tower,
    fuse_sequence,
    gemm_chain,
    mlp_chain,
    rename_chain_loops,
    separable_chain,
)
from .dtypes import DType, FP16, FP32, FP64, INT8, INT32, dtype
from .graph import (
    STITCHABLE_TAGS,
    ComputeDAG,
    GraphBuilder,
    GraphNode,
    GraphPartition,
    StitchedChain,
    StitchedOp,
    is_fusable,
    partition_graph,
    stitching_enabled,
)
from .loops import Loop, LoopKind
from .operator import OperatorKind, OperatorSpec
from .stitch import StitchError, rename_chain_tensors, stitch_nodes
from .tensor import TensorSpec

__all__ = [
    "AffineExpr",
    "TensorAccess",
    "OperatorChain",
    "single_op_chain",
    "attention_chain",
    "batch_gemm_chain",
    "conv_chain",
    "conv_tower",
    "fuse_sequence",
    "gemm_chain",
    "mlp_chain",
    "rename_chain_loops",
    "separable_chain",
    "DType",
    "FP16",
    "FP32",
    "FP64",
    "INT8",
    "INT32",
    "dtype",
    "ComputeDAG",
    "GraphBuilder",
    "GraphNode",
    "GraphPartition",
    "STITCHABLE_TAGS",
    "StitchedChain",
    "StitchedOp",
    "StitchError",
    "is_fusable",
    "partition_graph",
    "rename_chain_tensors",
    "stitch_nodes",
    "stitching_enabled",
    "Loop",
    "LoopKind",
    "OperatorKind",
    "OperatorSpec",
    "TensorSpec",
]
