"""Loop descriptions.

A compute-intensive operator is a (possibly imperfect) loop nest.  Chimera
decomposes the nest into *computation blocks* by tiling every loop; the block
execution order is then a permutation of the loops.  This module defines the
loop objects shared by the IR and the analytical model.
"""

from __future__ import annotations

import dataclasses
import enum


class LoopKind(enum.Enum):
    """Role of a loop inside one operator.

    SPATIAL loops index the operator's output; REDUCTION loops are summed
    over.  The same loop name may be SPATIAL in a producer and REDUCTION in
    its consumer (e.g. the channel dimension ``oc1`` of a convolution chain).
    """

    SPATIAL = "spatial"
    REDUCTION = "reduction"


@dataclasses.dataclass(frozen=True)
class Loop:
    """One iteration dimension of an operator.

    Attributes:
        name: globally unique name within an operator chain.  Operators that
            share a loop use the same name (this is how the chain expresses
            "dimension ``m`` is common to both GEMMs").
        extent: the trip count of the full (untiled) loop.
        kind: spatial or reduction, relative to the owning operator.
    """

    name: str
    extent: int
    kind: LoopKind = LoopKind.SPATIAL

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise ValueError(f"loop {self.name!r} has extent {self.extent} < 1")

    @property
    def is_reduction(self) -> bool:
        return self.kind is LoopKind.REDUCTION

    def with_kind(self, kind: LoopKind) -> "Loop":
        """Return a copy of this loop with a different kind."""
        return Loop(self.name, self.extent, kind)

    def __str__(self) -> str:
        tag = "r" if self.is_reduction else "s"
        return f"{self.name}[{self.extent}]{tag}"
