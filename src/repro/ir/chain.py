"""Operator chains.

An :class:`OperatorChain` is the unit Chimera fuses: an ordered list of
operators (producers before consumers) over a shared loop namespace, plus the
tensors they touch.  The chain knows which tensors are chain inputs/outputs
("IO tensors" in Algorithm 1 — the only ones whose movement is counted) and
which loops are private to a single operator (observation 3 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Tuple

from .operator import OperatorSpec
from .tensor import TensorSpec


@dataclasses.dataclass(frozen=True)
class OperatorChain:
    """A dependence chain of operators sharing a loop namespace.

    Attributes:
        name: chain name used in reports.
        ops: operators in topological (producer-to-consumer) order.
        tensors: every tensor touched by the chain, by name.
    """

    name: str
    ops: Tuple[OperatorSpec, ...]
    tensors: Mapping[str, TensorSpec]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError(f"chain {self.name!r} has no operators")
        self._validate_tensors()
        self._validate_loops()

    def _validate_tensors(self) -> None:
        for op in self.ops:
            for access in op.all_accesses():
                if access.tensor not in self.tensors:
                    raise ValueError(
                        f"chain {self.name!r}: operator {op.name!r} touches "
                        f"undeclared tensor {access.tensor!r}"
                    )
                spec = self.tensors[access.tensor]
                if len(access.dims) != spec.ndim:
                    raise ValueError(
                        f"chain {self.name!r}: access {access} has "
                        f"{len(access.dims)} dims but tensor has {spec.ndim}"
                    )

    def _validate_loops(self) -> None:
        extents: Dict[str, int] = {}
        for op in self.ops:
            for loop in op.loops:
                seen = extents.setdefault(loop.name, loop.extent)
                if seen != loop.extent:
                    raise ValueError(
                        f"chain {self.name!r}: loop {loop.name!r} has extent "
                        f"{loop.extent} in {op.name!r} but {seen} elsewhere"
                    )

    # ------------------------------------------------------------------
    # tensor classification
    # ------------------------------------------------------------------
    def producers_of(self, tensor: str) -> Tuple[OperatorSpec, ...]:
        return tuple(
            op for op in self.ops if any(w.tensor == tensor for w in op.writes)
        )

    def consumers_of(self, tensor: str) -> Tuple[OperatorSpec, ...]:
        return tuple(
            op for op in self.ops if any(r.tensor == tensor for r in op.reads)
        )

    def intermediate_tensors(self) -> Tuple[str, ...]:
        """Tensors produced by one op and consumed by another in the chain.

        These live in on-chip memory in a fused kernel and contribute no
        off-chip data movement (their DM is 0 in Algorithm 1).
        """
        names = []
        for tensor in self.tensors:
            if self.producers_of(tensor) and self.consumers_of(tensor):
                names.append(tensor)
        return tuple(names)

    def io_tensors(self) -> Tuple[str, ...]:
        """Chain inputs plus final outputs — the tensors Algorithm 1 counts."""
        intermediates = set(self.intermediate_tensors())
        ordered: List[str] = []
        for op in self.ops:
            for access in op.all_accesses():
                if access.tensor in intermediates:
                    continue
                if access.tensor not in ordered:
                    ordered.append(access.tensor)
        return tuple(ordered)

    def input_tensors(self) -> Tuple[str, ...]:
        """IO tensors that are read but never written by the chain."""
        written = {w.tensor for op in self.ops for w in op.writes}
        return tuple(t for t in self.io_tensors() if t not in written)

    def output_tensors(self) -> Tuple[str, ...]:
        """IO tensors the chain writes."""
        written = {w.tensor for op in self.ops for w in op.writes}
        return tuple(t for t in self.io_tensors() if t in written)

    # ------------------------------------------------------------------
    # loop queries
    # ------------------------------------------------------------------
    def loop_extents(self) -> Dict[str, int]:
        """Extent of every chain-level loop."""
        extents: Dict[str, int] = {}
        for op in self.ops:
            for loop in op.loops:
                extents[loop.name] = loop.extent
        return extents

    def independent_loops(self) -> Tuple[str, ...]:
        """Chain-level loop names in first-appearance order.

        Loops shared by several operators appear once: ordering shared loops
        is what lets Chimera's design space shrink from ``(P+Q)!`` to ``I!``
        (Section IV-B of the paper).
        """
        ordered: List[str] = []
        for op in self.ops:
            for loop in op.loops:
                if loop.name not in ordered:
                    ordered.append(loop.name)
        return tuple(ordered)

    def ops_with_loop(self, loop_name: str) -> Tuple[OperatorSpec, ...]:
        return tuple(op for op in self.ops if op.has_loop(loop_name))

    def is_private(self, loop_name: str, op: OperatorSpec) -> bool:
        """Whether ``loop_name`` appears only in ``op`` (observation 3)."""
        owners = self.ops_with_loop(loop_name)
        return len(owners) == 1 and owners[0].name == op.name

    def private_loops(self, op: OperatorSpec) -> Tuple[str, ...]:
        return tuple(n for n in op.loop_names if self.is_private(n, op))

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def compute_intensive_ops(self) -> Tuple[OperatorSpec, ...]:
        return tuple(op for op in self.ops if op.is_compute_intensive)

    def memory_intensive_ops(self) -> Tuple[OperatorSpec, ...]:
        return tuple(op for op in self.ops if not op.is_compute_intensive)

    def total_flops(self) -> int:
        return sum(op.flops for op in self.ops)

    def io_bytes(self) -> int:
        """Compulsory traffic: every IO tensor moved exactly once."""
        return sum(self.tensors[t].nbytes for t in self.io_tensors())

    def arithmetic_intensity(self) -> float:
        """Flop per compulsory byte — the chain's roofline upper bound."""
        return self.total_flops() / self.io_bytes()

    def op(self, name: str) -> OperatorSpec:
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(f"chain {self.name!r} has no operator {name!r}")

    def with_name(self, name: str) -> "OperatorChain":
        return dataclasses.replace(self, name=name)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"chain {self.name}:"]
        for op in self.ops:
            lines.append(f"  {op}")
        lines.append(f"  io: {', '.join(self.io_tensors())}")
        inter = self.intermediate_tensors()
        if inter:
            lines.append(f"  intermediate: {', '.join(inter)}")
        lines.append(
            "  loops: "
            + ", ".join(
                f"{n}={e}" for n, e in sorted(self.loop_extents().items())
            )
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"OperatorChain({self.name}, {len(self.ops)} ops)"


def single_op_chain(op: OperatorSpec, tensors: Mapping[str, TensorSpec]) -> OperatorChain:
    """Wrap one operator as a chain (used by unfused baselines)."""
    touched = {a.tensor: tensors[a.tensor] for a in op.all_accesses()}
    return OperatorChain(name=op.name, ops=(op,), tensors=touched)
