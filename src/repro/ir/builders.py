"""Builders for the standalone operators the paper evaluates.

Every builder returns ``(OperatorSpec, {tensor_name: TensorSpec})`` with
operator-local loop names (``"<op>.m"`` etc.), so independently built
operators never collide.  Chain constructors in :mod:`repro.ir.chains` fuse
them and rename the surviving loops to the paper's friendly names
(``m, n, k, l`` ...).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .access import AffineExpr, TensorAccess
from .dtypes import DType, FP16
from .loops import Loop, LoopKind
from .operator import OperatorKind, OperatorSpec
from .tensor import TensorSpec

BuiltOp = Tuple[OperatorSpec, Dict[str, TensorSpec]]


def _loop_name(op_name: str, dim: str) -> str:
    return f"{op_name}.{dim}"


def gemm(
    name: str,
    m: int,
    k: int,
    n: int,
    *,
    lhs: Optional[str] = None,
    rhs: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """``out[m, n] = sum_k lhs[m, k] * rhs[k, n]``."""
    lhs = lhs or f"{name}.A"
    rhs = rhs or f"{name}.B"
    out = out or f"{name}.C"
    lm, lk, ln = (_loop_name(name, d) for d in ("m", "k", "n"))
    op = OperatorSpec(
        name=name,
        kind=OperatorKind.COMPUTE_INTENSIVE,
        tag="gemm",
        loops=(
            Loop(lm, m),
            Loop(ln, n),
            Loop(lk, k, LoopKind.REDUCTION),
        ),
        reads=(
            TensorAccess.simple(lhs, (lm, lk)),
            TensorAccess.simple(rhs, (lk, ln)),
        ),
        writes=(TensorAccess.simple(out, (lm, ln)),),
        flops=2 * m * k * n,
    )
    tensors = {
        lhs: TensorSpec(lhs, (m, k), dtype),
        rhs: TensorSpec(rhs, (k, n), dtype),
        out: TensorSpec(out, (m, n), dtype),
    }
    return op, tensors


def batch_gemm(
    name: str,
    batch: int,
    m: int,
    k: int,
    n: int,
    *,
    lhs: Optional[str] = None,
    rhs: Optional[str] = None,
    out: Optional[str] = None,
    transpose_b: bool = False,
    dtype: DType = FP16,
) -> BuiltOp:
    """``out[b, m, n] = sum_k lhs[b, m, k] * rhs[b, k, n]``.

    With ``transpose_b`` the right operand is stored ``[b, n, k]`` and read
    transposed — the attention score GEMM ``Q x K^T`` layout.
    """
    lhs = lhs or f"{name}.A"
    rhs = rhs or f"{name}.B"
    out = out or f"{name}.C"
    lb, lm, lk, ln = (_loop_name(name, d) for d in ("b", "m", "k", "n"))
    rhs_dims = (lb, ln, lk) if transpose_b else (lb, lk, ln)
    rhs_shape = (batch, n, k) if transpose_b else (batch, k, n)
    op = OperatorSpec(
        name=name,
        kind=OperatorKind.COMPUTE_INTENSIVE,
        tag="batch_gemm",
        loops=(
            Loop(lb, batch),
            Loop(lm, m),
            Loop(ln, n),
            Loop(lk, k, LoopKind.REDUCTION),
        ),
        reads=(
            TensorAccess.simple(lhs, (lb, lm, lk)),
            TensorAccess.simple(rhs, rhs_dims),
        ),
        writes=(TensorAccess.simple(out, (lb, lm, ln)),),
        flops=2 * batch * m * k * n,
        attrs={"transpose_b": int(transpose_b)},
    )
    tensors = {
        lhs: TensorSpec(lhs, (batch, m, k), dtype),
        rhs: TensorSpec(rhs, rhs_shape, dtype),
        out: TensorSpec(out, (batch, m, n), dtype),
    }
    return op, tensors


def conv2d(
    name: str,
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    *,
    data: Optional[str] = None,
    weight: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """NCHW convolution with "same"-style padding.

    Output spatial size follows the paper's Table V convention,
    ``OH = floor(H / stride)``; padding is implicit (edge accesses are
    clamped by the simulator and zero-padded by the executor).
    """
    data = data or f"{name}.X"
    weight = weight or f"{name}.W"
    out = out or f"{name}.Y"
    oh, ow = height // stride, width // stride
    ln, lc, loh, low, loc, lrh, lrw = (
        _loop_name(name, d) for d in ("n", "ic", "oh", "ow", "oc", "rh", "rw")
    )
    data_access = TensorAccess(
        data,
        (
            AffineExpr.var(ln),
            AffineExpr.var(lc),
            AffineExpr.of((loh, stride), (lrh, 1)),
            AffineExpr.of((low, stride), (lrw, 1)),
        ),
    )
    op = OperatorSpec(
        name=name,
        kind=OperatorKind.COMPUTE_INTENSIVE,
        tag="conv2d",
        loops=(
            Loop(ln, batch),
            Loop(loc, out_channels),
            Loop(loh, oh),
            Loop(low, ow),
            Loop(lc, in_channels, LoopKind.REDUCTION),
            Loop(lrh, kernel, LoopKind.REDUCTION),
            Loop(lrw, kernel, LoopKind.REDUCTION),
        ),
        reads=(
            data_access,
            TensorAccess.simple(weight, (loc, lc, lrh, lrw)),
        ),
        writes=(TensorAccess.simple(out, (ln, loc, loh, low)),),
        flops=2 * batch * out_channels * oh * ow * in_channels * kernel * kernel,
        attrs={"stride": stride, "kernel": kernel},
    )
    tensors = {
        data: TensorSpec(data, (batch, in_channels, height, width), dtype),
        weight: TensorSpec(
            weight, (out_channels, in_channels, kernel, kernel), dtype
        ),
        out: TensorSpec(out, (batch, out_channels, oh, ow), dtype),
    }
    return op, tensors


def depthwise_conv2d(
    name: str,
    batch: int,
    channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int = 1,
    *,
    data: Optional[str] = None,
    weight: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """Depthwise NCHW convolution (one filter per channel, no mixing).

    The channel loop is *spatial* here — it indexes both input and output —
    unlike a dense convolution where input channels reduce.  Paired with a
    1x1 convolution this forms the depthwise-separable block of MobileNet
    family CNNs (see :func:`repro.ir.chains.separable_chain`).
    """
    data = data or f"{name}.X"
    weight = weight or f"{name}.W"
    out = out or f"{name}.Y"
    oh, ow = height // stride, width // stride
    ln, lc, loh, low, lrh, lrw = (
        _loop_name(name, d) for d in ("n", "c", "oh", "ow", "rh", "rw")
    )
    data_access = TensorAccess(
        data,
        (
            AffineExpr.var(ln),
            AffineExpr.var(lc),
            AffineExpr.of((loh, stride), (lrh, 1)),
            AffineExpr.of((low, stride), (lrw, 1)),
        ),
    )
    op = OperatorSpec(
        name=name,
        kind=OperatorKind.COMPUTE_INTENSIVE,
        tag="depthwise_conv2d",
        loops=(
            Loop(ln, batch),
            Loop(lc, channels),
            Loop(loh, oh),
            Loop(low, ow),
            Loop(lrh, kernel, LoopKind.REDUCTION),
            Loop(lrw, kernel, LoopKind.REDUCTION),
        ),
        reads=(
            data_access,
            TensorAccess.simple(weight, (lc, lrh, lrw)),
        ),
        writes=(TensorAccess.simple(out, (ln, lc, loh, low)),),
        flops=2 * batch * channels * oh * ow * kernel * kernel,
        attrs={"stride": stride, "kernel": kernel},
    )
    tensors = {
        data: TensorSpec(data, (batch, channels, height, width), dtype),
        weight: TensorSpec(weight, (channels, kernel, kernel), dtype),
        out: TensorSpec(out, (batch, channels, oh, ow), dtype),
    }
    return op, tensors


def _elementwise(
    name: str,
    tag: str,
    shape: Tuple[int, ...],
    flops_per_elem: int,
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    src = src or f"{name}.X"
    out = out or f"{name}.Y"
    loop_names = tuple(_loop_name(name, f"d{i}") for i in range(len(shape)))
    loops = tuple(Loop(n, e) for n, e in zip(loop_names, shape))
    elements = 1
    for extent in shape:
        elements *= extent
    op = OperatorSpec(
        name=name,
        kind=OperatorKind.MEMORY_INTENSIVE,
        tag=tag,
        loops=loops,
        reads=(TensorAccess.simple(src, loop_names),),
        writes=(TensorAccess.simple(out, loop_names),),
        flops=flops_per_elem * elements,
    )
    tensors = {
        src: TensorSpec(src, shape, dtype),
        out: TensorSpec(out, shape, dtype),
    }
    return op, tensors


def relu(
    name: str,
    shape: Tuple[int, ...],
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """Element-wise ``max(x, 0)``."""
    return _elementwise(name, "relu", shape, 1, src=src, out=out, dtype=dtype)


def bias_add(
    name: str,
    shape: Tuple[int, ...],
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """Element-wise add of a broadcast bias (modelled as 1 flop/element)."""
    return _elementwise(name, "bias_add", shape, 1, src=src, out=out, dtype=dtype)


def gelu(
    name: str,
    shape: Tuple[int, ...],
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """Element-wise GELU (modelled as 8 flops/element)."""
    return _elementwise(name, "gelu", shape, 8, src=src, out=out, dtype=dtype)


def softmax(
    name: str,
    shape: Tuple[int, ...],
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """Softmax along the last dimension.

    Softmax is memory-intensive: three dependent passes (exp, sum, div).
    In a fused chain Chimera merges the ``sum`` into the following GEMM and
    swaps ``div`` past it (Section VI-B), so the fused form adds no traffic;
    the builder models it as a single element-indexed operator and the
    executor implements the real three-pass numerics.
    """
    return _elementwise(name, "softmax", shape, 5, src=src, out=out, dtype=dtype)


def layer_norm(
    name: str,
    shape: Tuple[int, ...],
    *,
    src: Optional[str] = None,
    out: Optional[str] = None,
    dtype: DType = FP16,
) -> BuiltOp:
    """LayerNorm along the last dimension (modelled as 8 flops/element)."""
    return _elementwise(name, "layer_norm", shape, 8, src=src, out=out, dtype=dtype)
