"""Compute DAGs for whole networks.

End-to-end evaluation (Figure 9) runs full Transformer/Bert/ViT graphs.  A
:class:`ComputeDAG` is a thin topological container whose nodes are either
fusable operator chains or standalone operators; the runtime times each node
independently and sums (single-stream execution, as on the paper's devices).

:func:`partition_graph` is Chimera's graph-partitioning step at network
granularity: it splits a DAG into the compute-intensive chains the fusion
pipeline targets and the memory-intensive / standalone remainder, with the
partition validated to cover every node exactly once in topological order.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .chain import OperatorChain, single_op_chain
from .operator import OperatorKind, OperatorSpec
from .stitch import StitchError, find_bridge, stitch_nodes
from .tensor import TensorSpec


@dataclasses.dataclass(frozen=True)
class GraphNode:
    """One schedulable unit of a network graph.

    Attributes:
        name: unique node name.
        chain: the operator chain this node executes (single-op chains wrap
            standalone operators).
        deps: names of nodes that must run first.
        repeat: how many times this node executes in the network (e.g. one
            attention chain per layer); timing multiplies by this.
    """

    name: str
    chain: OperatorChain
    deps: Tuple[str, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError(f"node {self.name!r} repeat must be >= 1")

    def output_bytes(self) -> int:
        """Bytes of the chain's output tensors (dtype-scaled extents).

        This is the footprint the node's result occupies while it waits
        for downstream consumers — the quantity the graph-level scheduler
        accounts as live between producer and last consumer.
        """
        return sum(
            self.chain.tensors[name].nbytes
            for name in self.chain.output_tensors()
        )

    def input_bytes(self) -> int:
        """Bytes of the chain's input tensors."""
        return sum(
            self.chain.tensors[name].nbytes
            for name in self.chain.input_tensors()
        )


@dataclasses.dataclass(frozen=True)
class ComputeDAG:
    """A topologically ordered network graph."""

    name: str
    nodes: Tuple[GraphNode, ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for node in self.nodes:
            missing = set(node.deps) - seen
            if missing:
                raise ValueError(
                    f"graph {self.name!r}: node {node.name!r} depends on "
                    f"{sorted(missing)} which do not precede it"
                )
            if node.name in seen:
                raise ValueError(
                    f"graph {self.name!r}: duplicate node {node.name!r}"
                )
            seen.add(node.name)

    def node(self, name: str) -> GraphNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"graph {self.name!r} has no node {name!r}")

    def total_flops(self) -> int:
        return sum(n.chain.total_flops() * n.repeat for n in self.nodes)

    def chains(self) -> Tuple[OperatorChain, ...]:
        return tuple(n.chain for n in self.nodes)

    def consumers(self) -> Dict[str, Tuple[str, ...]]:
        """Node name -> names of the nodes that depend on it (DAG order)."""
        table: Dict[str, List[str]] = {node.name: [] for node in self.nodes}
        for node in self.nodes:
            for dep in node.deps:
                table[dep].append(node.name)
        return {name: tuple(users) for name, users in table.items()}

    def intermediate_bytes(self) -> int:
        """Total bytes of node outputs consumed elsewhere in the graph.

        Nodes without consumers are network outputs; their results go
        straight to DRAM and never occupy scheduler-managed residency, so
        they are excluded (as are graph inputs, which no node produces).
        """
        consumed = self.consumers()
        return sum(
            node.output_bytes()
            for node in self.nodes
            if consumed[node.name]
        )

    def __str__(self) -> str:
        return f"ComputeDAG({self.name}, {len(self.nodes)} nodes)"


def is_fusable(chain: OperatorChain) -> bool:
    """Whether a chain is a compute-intensive fusion target.

    Chimera fuses chains of two or more compute-intensive operators
    (Section IV); single operators and memory-intensive glue run under the
    host compiler in the paper's end-to-end setup.  Stitching (below)
    additionally admits chains with one CI operator plus attached
    memory-intensive glue.
    """
    return len(chain.compute_intensive_ops()) >= 2


#: Memory-intensive tags the stitcher may fold into a CI block schedule.
#: All five have executor support inside a fused loop nest: the
#: elementwise three run in place per block, softmax runs as a two-pass
#: epilogue (exp + row-sum per block, deferred division), and layer_norm
#: accumulates per-row sum/sum-of-squares and normalizes at kernel end.
STITCHABLE_TAGS = frozenset(
    {"relu", "gelu", "bias_add", "softmax", "layer_norm"}
)


def stitching_enabled() -> bool:
    """Whether :func:`partition_graph` stitches MI glue (``REPRO_STITCH``).

    On by default; export ``REPRO_STITCH=0`` to fall back to the PR 3
    behavior (MI nodes in the unfused remainder).  A pure planning knob:
    both settings produce correct executions.
    """
    return os.environ.get("REPRO_STITCH", "1") != "0"


@dataclasses.dataclass(frozen=True)
class StitchedOp:
    """One memory-intensive operator folded into a stitched chain.

    Attributes:
        node: name of the original graph node the operator came from.
        op: the operator's name inside the merged chain.
        tag: executor tag (``"softmax"``, ``"gelu"``, ...).
        role: ``"prologue"`` (before the first CI member), ``"epilogue"``
            (after the last), or ``"sandwich"`` (between CI members).
    """

    node: str
    op: str
    tag: str
    role: str


@dataclasses.dataclass(frozen=True)
class StitchedChain:
    """A run of graph nodes merged into one fused chain node.

    Attributes:
        node: the synthetic merged :class:`GraphNode` (name joins the
            member names with ``+``).
        members: original node names, in producer-to-consumer order.
        stitched: the memory-intensive ops that were folded in.
    """

    node: GraphNode
    members: Tuple[str, ...]
    stitched: Tuple[StitchedOp, ...]


@dataclasses.dataclass(frozen=True)
class GraphPartition:
    """A validated split of a DAG into fusable chains and the remainder.

    Attributes:
        graph: name of the partitioned :class:`ComputeDAG`.
        chains: nodes holding compute-intensive fusable chains (including
            synthetic stitched nodes), in topological order.
        remainder: every other node (standalone operators and
            memory-intensive glue), in topological order.
        stitched: membership records for every synthetic node in
            ``chains`` that merged a run of original nodes.
    """

    graph: str
    chains: Tuple[GraphNode, ...]
    remainder: Tuple[GraphNode, ...]
    stitched: Tuple[StitchedChain, ...] = ()

    def all_nodes(self) -> Tuple[GraphNode, ...]:
        """Every node of the partition (chains first, then remainder)."""
        return self.chains + self.remainder

    def members_of(self, name: str) -> Tuple[str, ...]:
        """Original DAG node names covered by partition node ``name``."""
        for record in self.stitched:
            if record.node.name == name:
                return record.members
        return (name,)

    def stitched_record(self, name: str) -> Optional[StitchedChain]:
        for record in self.stitched:
            if record.node.name == name:
                return record
        return None

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """Producer -> consumers over *partition* nodes.

        Node ``deps`` reference original DAG node names; stitched nodes
        cover several of those, so each dep is first resolved to the
        partition node owning it.  Self-edges (a dep satisfied inside the
        same merged node) are dropped.  Consumers are listed in partition
        order (chains first, then remainder), deduplicated.
        """
        owner: Dict[str, str] = {}
        for node in self.all_nodes():
            for member in self.members_of(node.name):
                owner[member] = node.name
        table: Dict[str, List[str]] = {
            node.name: [] for node in self.all_nodes()
        }
        for node in self.all_nodes():
            for dep in node.deps:
                producer = owner.get(dep)
                if producer is None or producer == node.name:
                    continue
                if node.name not in table[producer]:
                    table[producer].append(node.name)
        return {name: tuple(users) for name, users in table.items()}

    def total_flops(self) -> int:
        return sum(
            n.chain.total_flops() * n.repeat for n in self.all_nodes()
        )

    def validate(self, dag: "ComputeDAG") -> None:
        """Check the partition is exact for ``dag``.

        Every original node must appear in exactly one side (stitched
        nodes cover all their members), both sides must preserve the
        DAG's topological order, stitched members must be mutually
        reachable in order, and no flops may be lost.

        Raises:
            ValueError: describing the first violation found.
        """
        order = {node.name: index for index, node in enumerate(dag.nodes)}
        seen: set = set()
        for side, nodes in (("chains", self.chains),
                            ("remainder", self.remainder)):
            last = -1
            for node in nodes:
                members = self.members_of(node.name)
                member_last = -1
                for member in members:
                    if member not in order:
                        raise ValueError(
                            f"partition of {self.graph!r}: {side} node "
                            f"{member!r} is not in the graph"
                        )
                    if member in seen:
                        raise ValueError(
                            f"partition of {self.graph!r}: node {member!r} "
                            f"appears in more than one partition"
                        )
                    seen.add(member)
                    if order[member] < member_last:
                        raise ValueError(
                            f"partition of {self.graph!r}: stitched node "
                            f"{node.name!r} breaks topological order at "
                            f"{member!r}"
                        )
                    member_last = order[member]
                first = order[members[0]]
                if first < last:
                    raise ValueError(
                        f"partition of {self.graph!r}: {side} breaks "
                        f"topological order at {node.name!r}"
                    )
                last = first
        missing = set(order) - seen
        if missing:
            raise ValueError(
                f"partition of {self.graph!r} misses nodes "
                f"{sorted(missing)}"
            )
        if self.total_flops() != dag.total_flops():
            raise ValueError(
                f"partition of {self.graph!r} loses flops: "
                f"{self.total_flops()} != {dag.total_flops()}"
            )


def _glue_tag(node: GraphNode) -> Optional[str]:
    """The stitchable tag of a single-op memory-intensive node, else None."""
    if len(node.chain.ops) != 1:
        return None
    op = node.chain.ops[0]
    if op.kind != OperatorKind.MEMORY_INTENSIVE:
        return None
    return op.tag if op.tag in STITCHABLE_TAGS else None


def _is_glue(node: GraphNode) -> bool:
    return _glue_tag(node) is not None


def _has_ci(node: GraphNode) -> bool:
    return bool(node.chain.compute_intensive_ops())


def _is_single_ci_matmul(node: GraphNode) -> bool:
    """A lone gemm/batch_gemm node — the only legal follower of softmax.

    The executor realizes stitched softmax by deferring the row division
    past its consumer (Section VI-B's computation-reordering trick),
    which is only algebraically sound when the consumer is linear in the
    softmax output and its result is the chain output.  Closing the run
    right after a single matmul consumer guarantees both.
    """
    ops = node.chain.ops
    return (
        len(ops) == 1
        and ops[0].is_compute_intensive
        and ops[0].tag in ("gemm", "batch_gemm")
    )


def _bridge_feasible(producer: GraphNode, consumer: GraphNode) -> bool:
    inputs = {
        name: consumer.chain.tensors[name]
        for name in consumer.chain.input_tensors()
    }
    try:
        find_bridge(producer.chain, inputs)
    except StitchError:
        return False
    return True


def _stitch_runs(dag: ComputeDAG) -> List[List[GraphNode]]:
    """Greedy producer->consumer runs eligible for stitching.

    A run extends from ``last`` to its sole consumer ``nxt`` when the two
    repeat together, at least one endpoint is memory-intensive glue (CI
    nodes never merge directly — that is ordinary chain fusion, done at
    build time), the bridge tensor is structurally unambiguous, and the
    glue state machine allows it: elementwise glue anywhere, softmax
    followed by at most one linear consumer (then the run closes), and
    layer_norm only as the final member (its normalization is deferred to
    kernel end, so nothing in-chain may read its output).
    """
    by_name = {node.name: node for node in dag.nodes}
    consumers: Dict[str, List[str]] = {node.name: [] for node in dag.nodes}
    for node in dag.nodes:
        for dep in node.deps:
            consumers[dep].append(node.name)
    assigned: set = set()
    runs: List[List[GraphNode]] = []
    for node in dag.nodes:
        if node.name in assigned:
            continue
        run = [node]
        assigned.add(node.name)
        pending_softmax = _glue_tag(node) == "softmax"
        closed = _glue_tag(node) == "layer_norm"
        while not closed:
            last = run[-1]
            names = consumers[last.name]
            if len(names) != 1 or names[0] in assigned:
                break
            nxt = by_name[names[0]]
            if nxt.repeat != last.repeat:
                break
            if pending_softmax and not _is_single_ci_matmul(nxt):
                break
            if not pending_softmax and not (_is_glue(last) or _is_glue(nxt)):
                break
            if not _bridge_feasible(last, nxt):
                break
            run.append(nxt)
            assigned.add(nxt.name)
            if pending_softmax:
                pending_softmax = False
                closed = True
            elif _glue_tag(nxt) == "softmax":
                pending_softmax = True
            elif _glue_tag(nxt) == "layer_norm":
                closed = True
        runs.append(run)
    return runs


def _merge_run(
    run: Sequence[GraphNode],
) -> Optional[Tuple[GraphNode, StitchedChain]]:
    """Merge a run into one stitched node, or None when not worthwhile."""
    if len(run) < 2 or not any(_has_ci(node) for node in run):
        return None
    name = "+".join(node.name for node in run)
    try:
        chain = stitch_nodes(name, [(node.name, node.chain) for node in run])
    except StitchError:
        return None
    members = tuple(node.name for node in run)
    member_set = set(members)
    deps: List[str] = []
    for node in run:
        for dep in node.deps:
            if dep not in member_set and dep not in deps:
                deps.append(dep)
    merged = GraphNode(name, chain, tuple(deps), run[0].repeat)
    ci_indices = [i for i, node in enumerate(run) if _has_ci(node)]
    first_ci, last_ci = ci_indices[0], ci_indices[-1]
    stitched_ops: List[StitchedOp] = []
    for index, member in enumerate(run):
        if not _is_glue(member):
            continue
        op = member.chain.ops[0]
        if index < first_ci:
            role = "prologue"
        elif index > last_ci:
            role = "epilogue"
        else:
            role = "sandwich"
        stitched_ops.append(StitchedOp(member.name, op.name, op.tag, role))
    return merged, StitchedChain(merged, members, tuple(stitched_ops))


def partition_graph(
    dag: ComputeDAG,
    predicate: Optional[Callable[[OperatorChain], bool]] = None,
    *,
    stitch: Optional[bool] = None,
) -> GraphPartition:
    """Split a DAG into fusable chain nodes and the remainder.

    With stitching on (the default; see :func:`stitching_enabled`),
    memory-intensive glue nodes adjacent to compute-intensive work are
    merged into the neighboring chain node — prologue, sandwich, or
    epilogue — so their bridge tensors become on-chip chain
    intermediates instead of DRAM round-trips.  Any run that cannot be
    merged structurally falls back to individual classification, so the
    partition always succeeds.

    Args:
        dag: the network graph.
        predicate: chain classifier (default :func:`is_fusable`).
            Passing an explicit predicate disables stitching: the caller
            has taken over classification entirely.
        stitch: force stitching on/off regardless of ``REPRO_STITCH``.

    Returns:
        a :class:`GraphPartition` that has been validated against ``dag``.
    """
    classify = is_fusable if predicate is None else predicate
    do_stitch = stitching_enabled() if stitch is None else bool(stitch)
    if predicate is not None:
        do_stitch = False
    runs = _stitch_runs(dag) if do_stitch else [[node] for node in dag.nodes]
    # A run may skip over unrelated nodes (its members need only be in
    # producer->consumer order), so emit every partition node at its first
    # member's DAG position to keep both sides topologically ordered.
    position = {node.name: index for index, node in enumerate(dag.nodes)}
    chains: List[Tuple[int, GraphNode]] = []
    remainder: List[Tuple[int, GraphNode]] = []
    stitched: List[StitchedChain] = []
    for run in runs:
        merged = _merge_run(run) if len(run) > 1 else None
        if merged is not None:
            node, record = merged
            chains.append((position[record.members[0]], node))
            stitched.append(record)
            continue
        for node in run:
            side = chains if classify(node.chain) else remainder
            side.append((position[node.name], node))
    partition = GraphPartition(
        graph=dag.name,
        chains=tuple(node for _, node in sorted(chains, key=lambda e: e[0])),
        remainder=tuple(
            node for _, node in sorted(remainder, key=lambda e: e[0])
        ),
        stitched=tuple(stitched),
    )
    partition.validate(dag)
    return partition


class GraphBuilder:
    """Incremental builder enforcing topological insertion order."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._nodes: List[GraphNode] = []

    def add_chain(
        self,
        chain: OperatorChain,
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        node_name = name or chain.name
        self._nodes.append(
            GraphNode(node_name, chain, tuple(deps), repeat)
        )
        return node_name

    def add_op(
        self,
        op: OperatorSpec,
        tensors: Mapping[str, TensorSpec],
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        return self.add_chain(
            single_op_chain(op, tensors), deps=deps, repeat=repeat, name=name
        )

    def build(self) -> ComputeDAG:
        return ComputeDAG(self._name, tuple(self._nodes))
