"""Compute DAGs for whole networks.

End-to-end evaluation (Figure 9) runs full Transformer/Bert/ViT graphs.  A
:class:`ComputeDAG` is a thin topological container whose nodes are either
fusable operator chains or standalone operators; the runtime times each node
independently and sums (single-stream execution, as on the paper's devices).

:func:`partition_graph` is Chimera's graph-partitioning step at network
granularity: it splits a DAG into the compute-intensive chains the fusion
pipeline targets and the memory-intensive / standalone remainder, with the
partition validated to cover every node exactly once in topological order.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from .chain import OperatorChain, single_op_chain
from .operator import OperatorSpec
from .tensor import TensorSpec


@dataclasses.dataclass(frozen=True)
class GraphNode:
    """One schedulable unit of a network graph.

    Attributes:
        name: unique node name.
        chain: the operator chain this node executes (single-op chains wrap
            standalone operators).
        deps: names of nodes that must run first.
        repeat: how many times this node executes in the network (e.g. one
            attention chain per layer); timing multiplies by this.
    """

    name: str
    chain: OperatorChain
    deps: Tuple[str, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError(f"node {self.name!r} repeat must be >= 1")


@dataclasses.dataclass(frozen=True)
class ComputeDAG:
    """A topologically ordered network graph."""

    name: str
    nodes: Tuple[GraphNode, ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for node in self.nodes:
            missing = set(node.deps) - seen
            if missing:
                raise ValueError(
                    f"graph {self.name!r}: node {node.name!r} depends on "
                    f"{sorted(missing)} which do not precede it"
                )
            if node.name in seen:
                raise ValueError(
                    f"graph {self.name!r}: duplicate node {node.name!r}"
                )
            seen.add(node.name)

    def node(self, name: str) -> GraphNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"graph {self.name!r} has no node {name!r}")

    def total_flops(self) -> int:
        return sum(n.chain.total_flops() * n.repeat for n in self.nodes)

    def chains(self) -> Tuple[OperatorChain, ...]:
        return tuple(n.chain for n in self.nodes)

    def __str__(self) -> str:
        return f"ComputeDAG({self.name}, {len(self.nodes)} nodes)"


def is_fusable(chain: OperatorChain) -> bool:
    """Whether a chain is a compute-intensive fusion target.

    Chimera fuses chains of two or more compute-intensive operators
    (Section IV); single operators and memory-intensive glue run under the
    host compiler in the paper's end-to-end setup.
    """
    return len(chain.compute_intensive_ops()) >= 2


@dataclasses.dataclass(frozen=True)
class GraphPartition:
    """A validated split of a DAG into fusable chains and the remainder.

    Attributes:
        graph: name of the partitioned :class:`ComputeDAG`.
        chains: nodes holding compute-intensive fusable chains, in
            topological order.
        remainder: every other node (standalone operators and
            memory-intensive glue), in topological order.
    """

    graph: str
    chains: Tuple[GraphNode, ...]
    remainder: Tuple[GraphNode, ...]

    def all_nodes(self) -> Tuple[GraphNode, ...]:
        """Every node of the partition (chains first, then remainder)."""
        return self.chains + self.remainder

    def total_flops(self) -> int:
        return sum(
            n.chain.total_flops() * n.repeat for n in self.all_nodes()
        )

    def validate(self, dag: "ComputeDAG") -> None:
        """Check the partition is exact for ``dag``.

        Every node must appear in exactly one side, both sides must
        preserve the DAG's topological order, and no flops may be lost.

        Raises:
            ValueError: describing the first violation found.
        """
        order = {node.name: index for index, node in enumerate(dag.nodes)}
        seen: set = set()
        for side, nodes in (("chains", self.chains),
                            ("remainder", self.remainder)):
            last = -1
            for node in nodes:
                if node.name not in order:
                    raise ValueError(
                        f"partition of {self.graph!r}: {side} node "
                        f"{node.name!r} is not in the graph"
                    )
                if node.name in seen:
                    raise ValueError(
                        f"partition of {self.graph!r}: node {node.name!r} "
                        f"appears in more than one partition"
                    )
                seen.add(node.name)
                if order[node.name] < last:
                    raise ValueError(
                        f"partition of {self.graph!r}: {side} breaks "
                        f"topological order at {node.name!r}"
                    )
                last = order[node.name]
        missing = set(order) - seen
        if missing:
            raise ValueError(
                f"partition of {self.graph!r} misses nodes "
                f"{sorted(missing)}"
            )
        if self.total_flops() != dag.total_flops():
            raise ValueError(
                f"partition of {self.graph!r} loses flops: "
                f"{self.total_flops()} != {dag.total_flops()}"
            )


def partition_graph(
    dag: ComputeDAG,
    predicate: Optional[Callable[[OperatorChain], bool]] = None,
) -> GraphPartition:
    """Split a DAG into fusable chain nodes and the remainder.

    Args:
        dag: the network graph.
        predicate: chain classifier (default :func:`is_fusable`).

    Returns:
        a :class:`GraphPartition` that has been validated against ``dag``.
    """
    classify = is_fusable if predicate is None else predicate
    chains: List[GraphNode] = []
    remainder: List[GraphNode] = []
    for node in dag.nodes:
        (chains if classify(node.chain) else remainder).append(node)
    partition = GraphPartition(
        graph=dag.name, chains=tuple(chains), remainder=tuple(remainder)
    )
    partition.validate(dag)
    return partition


class GraphBuilder:
    """Incremental builder enforcing topological insertion order."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._nodes: List[GraphNode] = []

    def add_chain(
        self,
        chain: OperatorChain,
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        node_name = name or chain.name
        self._nodes.append(
            GraphNode(node_name, chain, tuple(deps), repeat)
        )
        return node_name

    def add_op(
        self,
        op: OperatorSpec,
        tensors: Mapping[str, TensorSpec],
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        return self.add_chain(
            single_op_chain(op, tensors), deps=deps, repeat=repeat, name=name
        )

    def build(self) -> ComputeDAG:
        return ComputeDAG(self._name, tuple(self._nodes))
