"""Compute DAGs for whole networks.

End-to-end evaluation (Figure 9) runs full Transformer/Bert/ViT graphs.  A
:class:`ComputeDAG` is a thin topological container whose nodes are either
fusable operator chains or standalone operators; the runtime times each node
independently and sums (single-stream execution, as on the paper's devices).
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple

from .chain import OperatorChain, single_op_chain
from .operator import OperatorSpec
from .tensor import TensorSpec


@dataclasses.dataclass(frozen=True)
class GraphNode:
    """One schedulable unit of a network graph.

    Attributes:
        name: unique node name.
        chain: the operator chain this node executes (single-op chains wrap
            standalone operators).
        deps: names of nodes that must run first.
        repeat: how many times this node executes in the network (e.g. one
            attention chain per layer); timing multiplies by this.
    """

    name: str
    chain: OperatorChain
    deps: Tuple[str, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError(f"node {self.name!r} repeat must be >= 1")


@dataclasses.dataclass(frozen=True)
class ComputeDAG:
    """A topologically ordered network graph."""

    name: str
    nodes: Tuple[GraphNode, ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for node in self.nodes:
            missing = set(node.deps) - seen
            if missing:
                raise ValueError(
                    f"graph {self.name!r}: node {node.name!r} depends on "
                    f"{sorted(missing)} which do not precede it"
                )
            if node.name in seen:
                raise ValueError(
                    f"graph {self.name!r}: duplicate node {node.name!r}"
                )
            seen.add(node.name)

    def node(self, name: str) -> GraphNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"graph {self.name!r} has no node {name!r}")

    def total_flops(self) -> int:
        return sum(n.chain.total_flops() * n.repeat for n in self.nodes)

    def chains(self) -> Tuple[OperatorChain, ...]:
        return tuple(n.chain for n in self.nodes)

    def __str__(self) -> str:
        return f"ComputeDAG({self.name}, {len(self.nodes)} nodes)"


class GraphBuilder:
    """Incremental builder enforcing topological insertion order."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._nodes: List[GraphNode] = []

    def add_chain(
        self,
        chain: OperatorChain,
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        node_name = name or chain.name
        self._nodes.append(
            GraphNode(node_name, chain, tuple(deps), repeat)
        )
        return node_name

    def add_op(
        self,
        op: OperatorSpec,
        tensors: Mapping[str, TensorSpec],
        deps: Sequence[str] = (),
        repeat: int = 1,
        name: Optional[str] = None,
    ) -> str:
        return self.add_chain(
            single_op_chain(op, tensors), deps=deps, repeat=repeat, name=name
        )

    def build(self) -> ComputeDAG:
        return ComputeDAG(self._name, tuple(self._nodes))
