"""Chain construction by producer-into-consumer fusion.

The core trick: when operator ``P`` feeds operator ``Q`` through tensor
``T``, every output loop of ``P`` can be *substituted* by ``Q``'s affine
access expression of the corresponding dimension of ``T``.  After the
substitution the two operators live in one loop namespace — exactly the
"independent loops" view of Section IV-B — and sliding-window recomputation
(3x3 convolutions) falls out automatically because the substituted
expressions carry the consumer's strides and kernel offsets.

Folding happens back-to-front so that each producer is substituted exactly
once with expressions already written in the final loop names.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from . import builders
from .access import AffineExpr
from .builders import BuiltOp
from .chain import OperatorChain
from .dtypes import DType, FP16
from .loops import Loop, LoopKind
from .operator import OperatorSpec
from .tensor import TensorSpec


def fuse_sequence(name: str, stages: Sequence[BuiltOp]) -> OperatorChain:
    """Fuse a linear sequence of operators into one chain.

    Args:
        name: chain name.
        stages: ``(op, tensors)`` pairs in producer-to-consumer order.  Each
            operator after the first must read the previous operator's output
            tensor (builders take explicit tensor names to arrange this).

    Returns:
        a chain whose operators share the final consumer's loop namespace.

    Raises:
        ValueError: if the stages do not form a chain or tensor declarations
            disagree.
    """
    if not stages:
        raise ValueError("fuse_sequence needs at least one stage")

    tensors: Dict[str, TensorSpec] = {}
    for _, stage_tensors in stages:
        for tname, spec in stage_tensors.items():
            known = tensors.get(tname)
            if known is not None and known != spec:
                raise ValueError(
                    f"tensor {tname!r} declared twice with different specs: "
                    f"{known} vs {spec}"
                )
            tensors[tname] = spec

    ops = [op for op, _ in stages]
    folded: List[OperatorSpec] = [ops[-1]]
    for producer in reversed(ops[:-1]):
        consumer = folded[0]
        intermediate = producer.output.tensor
        try:
            consumer_access = consumer.access_of(intermediate)
        except KeyError:
            raise ValueError(
                f"operator {consumer.name!r} does not read the output "
                f"{intermediate!r} of {producer.name!r}; stages must chain"
            ) from None

        mapping: Dict[str, AffineExpr] = {}
        for dim_idx, dim in enumerate(producer.output.dims):
            if len(dim.terms) != 1 or dim.terms[0][1] != 1 or dim.offset != 0:
                raise ValueError(
                    f"producer {producer.name!r} output dim {dim_idx} is not "
                    f"a plain loop ({dim}); cannot fuse"
                )
            mapping[dim.terms[0][0]] = consumer_access.dims[dim_idx]

        # Loops introduced into the producer are spatial from its point of
        # view (they index the region of the intermediate it must produce).
        downstream_loops: Dict[str, Loop] = {}
        for op in folded:
            for loop in op.loops:
                downstream_loops[loop.name] = Loop(
                    loop.name, loop.extent, LoopKind.SPATIAL
                )
        folded.insert(0, producer.substituted(mapping, downstream_loops))

    return OperatorChain(name=name, ops=tuple(folded), tensors=tensors)


def rename_chain_loops(
    chain: OperatorChain, mapping: Mapping[str, str]
) -> OperatorChain:
    """Rename chain loops to friendly names (``m``, ``n``, ``k``, ``l`` ...).

    Raises:
        ValueError: if the new names collide with each other or with loops
            that are not being renamed.
    """
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise ValueError(f"rename targets collide: {sorted(values)}")
    untouched = set(chain.independent_loops()) - set(mapping)
    collisions = untouched & set(values)
    if collisions:
        raise ValueError(f"rename targets shadow existing loops: {collisions}")
    ops = tuple(op.renamed_loops(mapping) for op in chain.ops)
    return OperatorChain(name=chain.name, ops=ops, tensors=chain.tensors)


# ----------------------------------------------------------------------
# the two chain families of the paper's evaluation
# ----------------------------------------------------------------------
def batch_gemm_chain(
    batch: int,
    m: int,
    n: int,
    k: int,
    l: int,
    *,
    with_softmax: bool = False,
    qkt_layout: bool = False,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """The attention-style batch GEMM chain of Figure 2 / Table IV.

    ``C[b,M,L] = A[b,M,K] x B[b,K,L]``, optionally ``S = softmax(C)``, then
    ``E[b,M,N] = C_or_S[b,M,L] x D[b,L,N]``.  Independent loops after fusion
    are ``(b, m, n, k, l)``.  With ``qkt_layout`` the first GEMM reads its
    right operand transposed (``B`` stored ``[b, L, K]``), the actual
    ``Q x K^T`` memory layout of attention.
    """
    if name is None:
        suffix = "+softmax" if with_softmax else ""
        name = f"bmm_chain{suffix}_b{batch}_m{m}_n{n}_k{k}_l{l}"
    gemm1 = builders.batch_gemm(
        "gemm1", batch, m, k, l, lhs="A", rhs="B", out="C",
        transpose_b=qkt_layout, dtype=dtype,
    )
    stages: List[BuiltOp] = [gemm1]
    second_lhs = "C"
    if with_softmax:
        stages.append(
            builders.softmax("softmax", (batch, m, l), src="C", out="S", dtype=dtype)
        )
        second_lhs = "S"
    stages.append(
        builders.batch_gemm(
            "gemm2", batch, m, l, n, lhs=second_lhs, rhs="D", out="E", dtype=dtype
        )
    )
    chain = fuse_sequence(name, stages)
    rename = {
        "gemm2.b": "b",
        "gemm2.m": "m",
        "gemm2.n": "n",
        "gemm2.k": "l",
        "gemm1.k": "k",
    }
    return rename_chain_loops(chain, rename)


def attention_chain(
    batch: int,
    seq: int,
    head_dim: int,
    *,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """Self-attention score/value chain: ``softmax(Q K^T) V`` shapes.

    This is :func:`batch_gemm_chain` with ``M = L = seq`` and
    ``N = K = head_dim``, softmax included.
    """
    return batch_gemm_chain(
        batch,
        seq,
        head_dim,
        head_dim,
        seq,
        with_softmax=True,
        dtype=dtype,
        name=name,
    )


def conv_chain(
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    oc1: int,
    oc2: int,
    st1: int = 1,
    st2: int = 1,
    k1: int = 3,
    k2: int = 1,
    *,
    with_relu: bool = False,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """The CNN convolution chain of Figure 1(b) / Table V.

    ``conv1`` is ``(OC1, IC, k1, k1)`` with stride ``st1``; ``conv2`` is
    ``(OC2, OC1, k2, k2)`` with stride ``st2`` reading conv1's output.  With
    ``with_relu`` a ReLU follows each convolution (the paper's chain has two
    ReLU layers).  Up to ten independent loops after fusion.
    """
    if name is None:
        suffix = "+relu" if with_relu else ""
        name = (
            f"conv_chain{suffix}_n{batch}_ic{in_channels}_h{height}_w{width}"
            f"_oc1{oc1}_oc2{oc2}"
        )
    conv1 = builders.conv2d(
        "conv1", batch, in_channels, height, width, oc1, k1, st1,
        data="X", weight="W1", out="Y1", dtype=dtype,
    )
    stages: List[BuiltOp] = [conv1]
    h1, w1 = height // st1, width // st1
    second_in = "Y1"
    if with_relu:
        stages.append(
            builders.relu(
                "relu1", (batch, oc1, h1, w1), src="Y1", out="R1", dtype=dtype
            )
        )
        second_in = "R1"
    stages.append(
        builders.conv2d(
            "conv2", batch, oc1, h1, w1, oc2, k2, st2,
            data=second_in, weight="W2", out="Y2", dtype=dtype,
        )
    )
    if with_relu:
        h2, w2 = h1 // st2, w1 // st2
        stages.append(
            builders.relu(
                "relu2", (batch, oc2, h2, w2), src="Y2", out="R2", dtype=dtype
            )
        )
    chain = fuse_sequence(name, stages)
    if with_relu:
        rename = {
            "relu2.d0": "n",
            "relu2.d1": "oc2",
            "relu2.d2": "oh",
            "relu2.d3": "ow",
        }
    else:
        rename = {
            "conv2.n": "n",
            "conv2.oc": "oc2",
            "conv2.oh": "oh",
            "conv2.ow": "ow",
        }
    rename.update(
        {
            "conv2.ic": "oc1",
            "conv2.rh": "rh2",
            "conv2.rw": "rw2",
            "conv1.ic": "ic",
            "conv1.rh": "rh1",
            "conv1.rw": "rw1",
        }
    )
    return rename_chain_loops(chain, rename)


def separable_chain(
    batch: int,
    channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int = 3,
    stride: int = 1,
    *,
    with_relu: bool = False,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """A depthwise-separable block: depthwise kxk then pointwise 1x1.

    The MobileNet building block.  The depthwise stage's channel loop is
    shared with the pointwise stage's reduction (it becomes ``c``), while
    its kernel taps stay private — a different reuse structure from the
    paper's dense chains, handled by the same Algorithm 1 machinery.
    """
    if name is None:
        suffix = "+relu" if with_relu else ""
        name = (
            f"separable{suffix}_n{batch}_c{channels}_h{height}_w{width}"
            f"_oc{out_channels}"
        )
    dw = builders.depthwise_conv2d(
        "dw", batch, channels, height, width, kernel, stride,
        data="X", weight="Wd", out="T", dtype=dtype,
    )
    stages: List[BuiltOp] = [dw]
    h, w = height // stride, width // stride
    pw_input = "T"
    if with_relu:
        stages.append(
            builders.relu("relu_dw", (batch, channels, h, w),
                          src="T", out="R", dtype=dtype)
        )
        pw_input = "R"
    stages.append(
        builders.conv2d(
            "pw", batch, channels, h, w, out_channels, 1, 1,
            data=pw_input, weight="Wp", out="Y", dtype=dtype,
        )
    )
    chain = fuse_sequence(name, stages)
    rename = {
        "pw.n": "n",
        "pw.oc": "oc",
        "pw.oh": "oh",
        "pw.ow": "ow",
        "pw.ic": "c",
        "dw.rh": "rh",
        "dw.rw": "rw",
    }
    return rename_chain_loops(chain, rename)


def conv_tower(
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels: Sequence[int],
    kernels: Sequence[int],
    strides: Optional[Sequence[int]] = None,
    *,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """A tower of ``len(out_channels)`` directly chained convolutions.

    The paper's analysis "remains similar for more compute-intensive
    operators" (Section IV-B); this constructor exercises that: halo
    expressions compose through every stage, and each producer's private
    reductions stay private.

    Loop names: stage ``i`` keeps ``ic{i}``/``rh{i}``/``rw{i}`` for its
    reductions; the final output's loops are ``n, oc, oh, ow``.
    """
    if len(out_channels) != len(kernels):
        raise ValueError("out_channels and kernels must have equal length")
    if len(out_channels) < 2:
        raise ValueError("a tower needs at least two convolutions")
    if strides is None:
        strides = [1] * len(out_channels)
    if len(strides) != len(out_channels):
        raise ValueError("strides must match out_channels")
    if name is None:
        chans = "-".join(str(c) for c in out_channels)
        name = f"conv_tower_n{batch}_ic{in_channels}_{chans}"

    stages: List[BuiltOp] = []
    channels = in_channels
    h, w = height, width
    for index, (oc, kk, st) in enumerate(zip(out_channels, kernels, strides)):
        data = "X" if index == 0 else f"T{index - 1}"
        stages.append(
            builders.conv2d(
                f"conv{index}", batch, channels, h, w, oc, kk, st,
                data=data, weight=f"W{index}", out=f"T{index}", dtype=dtype,
            )
        )
        channels = oc
        h, w = h // st, w // st
    chain = fuse_sequence(name, stages)

    last = len(out_channels) - 1
    rename = {
        f"conv{last}.n": "n",
        f"conv{last}.oc": "oc",
        f"conv{last}.oh": "oh",
        f"conv{last}.ow": "ow",
    }
    for index in range(len(out_channels)):
        rename[f"conv{index}.ic"] = f"ic{index}"
        rename[f"conv{index}.rh"] = f"rh{index}"
        rename[f"conv{index}.rw"] = f"rw{index}"
    # The last conv's spatial loops were renamed above; its reductions got
    # stage-indexed names like every other stage.
    return rename_chain_loops(chain, rename)


def mlp_chain(
    m: int,
    k: int,
    hidden: int,
    n: int,
    *,
    with_gelu: bool = True,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """A feed-forward block: ``Y = gelu(X x W1) x W2``.

    Two dependent GEMMs with an element-wise activation between — the
    other ubiquitous compute-intensive chain in Transformers (the paper's
    MLP-Mixer rows G10-G12 are this pattern with ``batch = 1``).
    Independent loops after fusion: ``(m, h, k, n)``.
    """
    if name is None:
        suffix = "+gelu" if with_gelu else ""
        name = f"mlp_chain{suffix}_m{m}_k{k}_h{hidden}_n{n}"
    gemm1 = builders.gemm("fc1", m, k, hidden, lhs="X", rhs="W1", out="H",
                          dtype=dtype)
    stages: List[BuiltOp] = [gemm1]
    second_lhs = "H"
    if with_gelu:
        stages.append(
            builders.gelu("act", (m, hidden), src="H", out="A", dtype=dtype)
        )
        second_lhs = "A"
    stages.append(
        builders.gemm("fc2", m, hidden, n, lhs=second_lhs, rhs="W2", out="Y",
                      dtype=dtype)
    )
    chain = fuse_sequence(name, stages)
    rename = {
        "fc2.m": "m",
        "fc2.n": "n",
        "fc2.k": "h",
        "fc1.k": "k",
    }
    return rename_chain_loops(chain, rename)


def gemm_chain(
    m: int,
    n: int,
    k: int,
    l: int,
    *,
    dtype: DType = FP16,
    name: Optional[str] = None,
) -> OperatorChain:
    """Unbatched GEMM chain ``E = (A x B) x D`` (Figure 2's running example)."""
    if name is None:
        name = f"gemm_chain_m{m}_n{n}_k{k}_l{l}"
    gemm1 = builders.gemm("gemm1", m, k, l, lhs="A", rhs="B", out="C", dtype=dtype)
    gemm2 = builders.gemm("gemm2", m, l, n, lhs="C", rhs="D", out="E", dtype=dtype)
    chain = fuse_sequence(name, [gemm1, gemm2])
    rename = {
        "gemm2.m": "m",
        "gemm2.n": "n",
        "gemm2.k": "l",
        "gemm1.k": "k",
    }
    return rename_chain_loops(chain, rename)
