"""Stitching memory-intensive glue into compute-intensive chains.

Chimera's graph partitioner (PR 3) exiled softmax / layer-norm /
elementwise nodes to an unfused remainder, so a real transformer never
compiled end-to-end fused.  Following FusionStitching and Neptune (see
PAPERS.md), :func:`stitch_nodes` merges a producer/consumer run of graph
nodes into ONE :class:`OperatorChain`: the bridge tensor between two
nodes becomes a chain intermediate, so Algorithm 1's data-volume model
stops charging its DRAM round-trip automatically (chain intermediates
have DM = 0; see :mod:`repro.core.movement`) and the block scheduler
emits the stitched op's compute inside the adjacent compute-intensive
block's loop nest.

The merge is the same affine-substitution fold used inside
:func:`repro.ir.chains.fuse_sequence`, generalized to whole chains with
independent namespaces: producer loops/tensors are renamed out of the
way of the consumer's, the producer's output loops are substituted by
the consumer's access expressions of the bridge tensor, and the
producer's operators are prepended.  Any structural mismatch raises
:class:`StitchError`; callers (the graph partitioner) treat that as
"do not stitch", never as a hard failure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence, Tuple

from .access import AffineExpr
from .chain import OperatorChain
from .loops import Loop, LoopKind
from .operator import OperatorSpec
from .tensor import TensorSpec


class StitchError(ValueError):
    """A node run cannot be merged into a single chain.

    Raised for structural reasons only (ambiguous bridge tensor, strided
    producer output, multiple consumers).  The partitioner catches it and
    falls back to classifying the nodes individually, so degenerate
    shapes never break compilation.
    """


def rename_chain_tensors(
    chain: OperatorChain, mapping: Mapping[str, str]
) -> OperatorChain:
    """Rename tensors of ``chain``, rejecting collisions."""
    for old, new in mapping.items():
        if new in chain.tensors and new not in mapping:
            raise StitchError(
                f"chain {chain.name!r}: renaming {old!r} -> {new!r} collides"
            )
    ops = tuple(op.renamed_tensors(mapping) for op in chain.ops)
    tensors = {
        mapping.get(name, name): dataclasses.replace(
            spec, name=mapping.get(name, name)
        )
        for name, spec in chain.tensors.items()
    }
    if len(tensors) != len(chain.tensors):
        raise StitchError(f"chain {chain.name!r}: tensor rename collides")
    return OperatorChain(chain.name, ops, tensors)


def _unique(base: str, taken: set) -> str:
    name = base
    suffix = 1
    while name in taken:
        name = f"{base}~{suffix}"
        suffix += 1
    taken.add(name)
    return name


def _read_only_tensors(ops: Sequence[OperatorSpec]) -> Tuple[str, ...]:
    """Tensors read but never written by ``ops`` (the fold's open inputs)."""
    written = {a.tensor for op in ops for a in op.writes}
    seen: List[str] = []
    for op in ops:
        for access in op.reads:
            if access.tensor not in written and access.tensor not in seen:
                seen.append(access.tensor)
    return tuple(seen)


def find_bridge(
    producer: OperatorChain, consumer_inputs: Mapping[str, TensorSpec]
) -> Tuple[str, str]:
    """Match the producer's single output against the consumer's inputs.

    The graph carries no tensor-identity edges (nodes are independent
    chains), so the bridge is recovered structurally: the producer must
    have exactly one output tensor, and exactly one consumer input must
    share its shape and dtype.  Ambiguity (e.g. a degenerate config where
    several inputs collapse to the same shape) raises :class:`StitchError`
    so the caller falls back to not stitching.
    """
    outputs = producer.output_tensors()
    if len(outputs) != 1:
        raise StitchError(
            f"chain {producer.name!r} has {len(outputs)} outputs; "
            "stitching needs exactly one"
        )
    out_name = outputs[0]
    spec = producer.tensors[out_name]
    matches = [
        name
        for name, candidate in consumer_inputs.items()
        if candidate.shape == spec.shape and candidate.dtype == spec.dtype
    ]
    if len(matches) != 1:
        raise StitchError(
            f"bridge for {producer.name!r} output {out_name!r} "
            f"{spec.shape} is ambiguous: matches {sorted(matches)}"
        )
    return out_name, matches[0]


def _fold_producer(
    stage_name: str,
    producer: OperatorChain,
    folded_ops: List[OperatorSpec],
    folded_tensors: Dict[str, TensorSpec],
) -> Tuple[List[OperatorSpec], Dict[str, TensorSpec]]:
    """Fold one producer chain into the already-folded consumer suffix."""
    consumer_inputs = {
        name: folded_tensors[name] for name in _read_only_tensors(folded_ops)
    }
    out_name, bridge_name = find_bridge(producer, consumer_inputs)

    # Rename producer loops and tensors out of the consumer's namespace.
    folded_loops = {l.name for op in folded_ops for l in op.loops}
    producer_loops = {l.name for op in producer.ops for l in op.loops}
    taken = set(folded_loops) | set(producer_loops)
    loop_map = {
        name: _unique(f"{stage_name}.{name}", taken)
        for name in sorted(producer_loops)
        if name in folded_loops
    }
    tensor_taken = set(folded_tensors) | set(producer.tensors)
    tensor_map = {
        name: _unique(f"{stage_name}.{name}", tensor_taken)
        for name in sorted(producer.tensors)
        if name in folded_tensors and name != out_name
    }
    if out_name in folded_tensors and out_name != bridge_name:
        tensor_map[out_name] = _unique(f"{stage_name}.{out_name}", tensor_taken)
    if loop_map:
        producer = OperatorChain(
            producer.name,
            tuple(op.renamed_loops(loop_map) for op in producer.ops),
            producer.tensors,
        )
    if tensor_map:
        producer = rename_chain_tensors(producer, tensor_map)
        out_name = tensor_map.get(out_name, out_name)

    # Rename the consumer's bridge input to the producer's output name so
    # the merged chain sees one shared intermediate.
    if bridge_name != out_name:
        folded_ops = [
            op.renamed_tensors({bridge_name: out_name}) for op in folded_ops
        ]
        spec = folded_tensors.pop(bridge_name)
        folded_tensors[out_name] = dataclasses.replace(spec, name=out_name)

    readers = [
        op for op in folded_ops if any(a.tensor == out_name for a in op.reads)
    ]
    if len(readers) != 1:
        raise StitchError(
            f"bridge {out_name!r} has {len(readers)} consumers; "
            "stitching needs exactly one"
        )
    consumer_access = readers[0].access_of(out_name)

    writers = [
        op for op in producer.ops if any(a.tensor == out_name for a in op.writes)
    ]
    if len(writers) != 1:
        raise StitchError(
            f"chain {producer.name!r} writes bridge {out_name!r} "
            f"{len(writers)} times"
        )
    final_op = writers[0]
    out_access = final_op.access_of(out_name)
    mapping: Dict[str, AffineExpr] = {}
    for dim, expr in zip(out_access.dims, consumer_access.dims):
        if len(dim.terms) != 1 or dim.terms[0][1] != 1 or dim.offset != 0:
            raise StitchError(
                f"producer {final_op.name!r} output dim {dim} is not a "
                "plain loop; cannot stitch"
            )
        loop_name = dim.terms[0][0]
        if loop_name in mapping:
            raise StitchError(
                f"producer {final_op.name!r} output repeats loop "
                f"{loop_name!r}; cannot stitch"
            )
        mapping[loop_name] = expr

    downstream: Dict[str, Loop] = {}
    for op in folded_ops:
        for loop in op.loops:
            known = downstream.get(loop.name)
            if known is not None and known.extent != loop.extent:
                raise StitchError(
                    f"consumer loop {loop.name!r} has conflicting extents"
                )
            downstream[loop.name] = Loop(loop.name, loop.extent, LoopKind.SPATIAL)

    # Substitute per-op with only the loops that op actually uses:
    # ``substituted`` introduces every loop referenced by the mapping's
    # expressions, which would graft consumer loops onto producer ops that
    # never touched the bridge loops.
    new_ops: List[OperatorSpec] = []
    for op in producer.ops:
        op_map = {k: v for k, v in mapping.items() if op.has_loop(k)}
        new_ops.append(op.substituted(op_map, downstream) if op_map else op)

    merged_tensors = dict(folded_tensors)
    for name, spec in producer.tensors.items():
        known = merged_tensors.get(name)
        if known is not None and known != spec:
            raise StitchError(
                f"tensor {name!r} declared with conflicting specs"
            )
        merged_tensors[name] = spec
    return new_ops + folded_ops, merged_tensors


def stitch_nodes(
    name: str, stages: Sequence[Tuple[str, OperatorChain]]
) -> OperatorChain:
    """Merge a producer->consumer run of chains into one fused chain.

    Args:
        name: name of the merged chain.
        stages: ``(stage_name, chain)`` pairs in producer-to-consumer
            order; each stage's single output feeds exactly one operator
            of the folded suffix after it.

    Returns:
        one :class:`OperatorChain` whose bridge tensors are chain
        intermediates (never counted in DV, never touch DRAM when the
        fused plan keeps them in the shared buffer).

    Raises:
        StitchError: when the run cannot be merged structurally.
    """
    if len(stages) < 2:
        raise StitchError("stitching needs at least two stages")
    _, last_chain = stages[-1]
    folded_ops = list(last_chain.ops)
    folded_tensors = dict(last_chain.tensors)
    for stage_name, stage_chain in reversed(stages[:-1]):
        folded_ops, folded_tensors = _fold_producer(
            stage_name, stage_chain, folded_ops, folded_tensors
        )
    op_names = [op.name for op in folded_ops]
    if len(set(op_names)) != len(op_names):
        raise StitchError(
            f"stitched chain {name!r} has duplicate operator names: "
            f"{sorted(op_names)}"
        )
    return OperatorChain(name, tuple(folded_ops), folded_tensors)
