"""Tensor declarations."""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from .dtypes import DType, FP16


@dataclasses.dataclass(frozen=True)
class TensorSpec:
    """A dense tensor with a static shape.

    Whether a tensor is a chain input, chain output, or an on-chip
    intermediate is a property of the *chain*, not of the tensor itself, so
    it is not stored here (see :meth:`OperatorChain.io_tensors`).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = FP16

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have at least 1 dim")
        if any(s < 1 for s in self.shape):
            raise ValueError(f"tensor {self.name!r} has bad shape {self.shape}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def elements(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.elements * self.dtype.nbytes

    def __str__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"{self.name}<{dims}, {self.dtype}>"
