"""Element data types for tensors.

Chimera's analytical model reasons about *bytes moved*, so the only property
of a data type that matters to the optimizer is its width.  The executor also
uses the numpy mapping to run kernels numerically.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class DType:
    """An element type with a fixed byte width.

    Attributes:
        name: canonical short name, e.g. ``"fp16"``.
        nbytes: storage size of one element in bytes.
        np_dtype: numpy dtype string used by the executor.  Accumulation
            always happens in fp32 regardless of the storage type, mirroring
            what tensor cores / cube units do.
    """

    name: str
    nbytes: int
    np_dtype: str

    def __str__(self) -> str:
        return self.name

    @property
    def numpy(self) -> np.dtype:
        """The numpy dtype object for this element type."""
        return np.dtype(self.np_dtype)


FP16 = DType("fp16", 2, "float16")
FP32 = DType("fp32", 4, "float32")
FP64 = DType("fp64", 8, "float64")
INT8 = DType("int8", 1, "int8")
INT32 = DType("int32", 4, "int32")

_BY_NAME = {t.name: t for t in (FP16, FP32, FP64, INT8, INT32)}


def dtype(name: str) -> DType:
    """Look up a :class:`DType` by name.

    Raises:
        KeyError: if the name is not a known dtype.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
