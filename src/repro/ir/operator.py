"""Operator specifications.

An :class:`OperatorSpec` is a perfect loop nest annotated with affine tensor
accesses.  It is deliberately *not* an AST: Chimera's inter-block analysis
(Algorithm 1 of the paper) only needs to know which loops exist, their
extents and kinds, and which loops index which tensors.  The executor
dispatches on :attr:`OperatorSpec.tag` to run the actual numerics.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Mapping, Tuple

from .access import AffineExpr, TensorAccess
from .loops import Loop, LoopKind


class OperatorKind:
    """Coarse operator classes used by the fusion planner."""

    COMPUTE_INTENSIVE = "compute-intensive"
    MEMORY_INTENSIVE = "memory-intensive"


@dataclasses.dataclass(frozen=True)
class OperatorSpec:
    """A single tensor operator expressed as an affine loop nest.

    Attributes:
        name: unique name within a chain (e.g. ``"gemm1"``).
        kind: compute-intensive or memory-intensive.
        tag: semantic tag used by the executor / micro-kernel selection,
            e.g. ``"gemm"``, ``"conv2d"``, ``"softmax"``, ``"relu"``.
        loops: the iteration space; names shared with other operators in a
            chain denote the *same* chain-level loop.
        reads: accesses to input tensors.
        writes: accesses to output tensors (exactly one for all built-ins).
        flops: algorithmic floating point operations of the *standalone*
            operator.  Stored explicitly because fusing a producer into a
            consumer rewrites its loop space (recomputation), which must not
            change the algorithmic flop count.
        attrs: free-form attributes (e.g. convolution strides) consumed by
            code generation and the executor.
    """

    name: str
    kind: str
    tag: str
    loops: Tuple[Loop, ...]
    reads: Tuple[TensorAccess, ...]
    writes: Tuple[TensorAccess, ...]
    flops: int
    attrs: Mapping[str, int] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise ValueError(f"operator {self.name!r} has duplicate loops: {names}")
        loop_set = set(names)
        for access in self.reads + self.writes:
            missing = set(access.loops) - loop_set
            if missing:
                raise ValueError(
                    f"operator {self.name!r} access {access} uses undeclared "
                    f"loops {sorted(missing)}"
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def loop_names(self) -> Tuple[str, ...]:
        return tuple(loop.name for loop in self.loops)

    @property
    def is_compute_intensive(self) -> bool:
        return self.kind == OperatorKind.COMPUTE_INTENSIVE

    def loop(self, name: str) -> Loop:
        for loop in self.loops:
            if loop.name == name:
                return loop
        raise KeyError(f"operator {self.name!r} has no loop {name!r}")

    def has_loop(self, name: str) -> bool:
        return any(loop.name == name for loop in self.loops)

    @property
    def reduction_loop_names(self) -> Tuple[str, ...]:
        return tuple(l.name for l in self.loops if l.is_reduction)

    @property
    def spatial_loop_names(self) -> Tuple[str, ...]:
        return tuple(l.name for l in self.loops if not l.is_reduction)

    def all_accesses(self) -> Tuple[TensorAccess, ...]:
        return self.reads + self.writes

    def tensor_names(self) -> Tuple[str, ...]:
        return tuple(a.tensor for a in self.all_accesses())

    def access_of(self, tensor: str) -> TensorAccess:
        """The (unique) access of ``tensor`` by this operator."""
        found = [a for a in self.all_accesses() if a.tensor == tensor]
        if not found:
            raise KeyError(f"operator {self.name!r} does not access {tensor!r}")
        if len(found) > 1:
            raise KeyError(f"operator {self.name!r} accesses {tensor!r} twice")
        return found[0]

    @property
    def output(self) -> TensorAccess:
        if len(self.writes) != 1:
            raise ValueError(f"operator {self.name!r} has {len(self.writes)} outputs")
        return self.writes[0]

    def iteration_space(self) -> int:
        """Product of all loop extents (reflects recomputation when fused)."""
        return math.prod(loop.extent for loop in self.loops)

    def extents(self) -> Dict[str, int]:
        return {loop.name: loop.extent for loop in self.loops}

    # ------------------------------------------------------------------
    # rewriting (chain fusion)
    # ------------------------------------------------------------------
    def substituted(
        self,
        mapping: Mapping[str, AffineExpr],
        new_loops: Mapping[str, Loop],
    ) -> "OperatorSpec":
        """Rewrite this operator by substituting some of its loops.

        Used when fusing a producer into a consumer: the producer's output
        loops are replaced by the consumer's access expressions of the
        intermediate tensor (see :func:`repro.ir.chains.fuse_into_chain`).

        Args:
            mapping: producer loop name -> affine expression over consumer
                loops.
            new_loops: definitions (extent, kind) of every loop that may be
                introduced by the substitution.

        Returns:
            a new operator whose loop set contains the surviving original
            loops plus the introduced consumer loops.
        """
        surviving = [loop for loop in self.loops if loop.name not in mapping]
        introduced_names: list = []
        for expr in mapping.values():
            for name in expr.loops:
                if name not in introduced_names:
                    introduced_names.append(name)
        kept = {loop.name for loop in surviving}
        introduced = [new_loops[n] for n in introduced_names if n not in kept]
        reads = tuple(a.substituted(mapping) for a in self.reads)
        writes = tuple(a.substituted(mapping) for a in self.writes)
        return dataclasses.replace(
            self,
            loops=tuple(surviving) + tuple(introduced),
            reads=reads,
            writes=writes,
        )

    def renamed_tensors(self, mapping: Mapping[str, str]) -> "OperatorSpec":
        """Rename accessed tensors without touching the iteration space."""
        reads = tuple(
            dataclasses.replace(a, tensor=mapping.get(a.tensor, a.tensor))
            for a in self.reads
        )
        writes = tuple(
            dataclasses.replace(a, tensor=mapping.get(a.tensor, a.tensor))
            for a in self.writes
        )
        return dataclasses.replace(self, reads=reads, writes=writes)

    def renamed_loops(self, mapping: Mapping[str, str]) -> "OperatorSpec":
        """Rename loops (a special case of substitution with coefficient 1)."""
        expr_map = {old: AffineExpr.var(new) for old, new in mapping.items()}
        loops = tuple(
            Loop(mapping.get(l.name, l.name), l.extent, l.kind) for l in self.loops
        )
        reads = tuple(a.substituted(expr_map) for a in self.reads)
        writes = tuple(a.substituted(expr_map) for a in self.writes)
        return dataclasses.replace(self, loops=loops, reads=reads, writes=writes)

    def __str__(self) -> str:
        loops = ", ".join(str(l) for l in self.loops)
        reads = ", ".join(str(a) for a in self.reads)
        writes = ", ".join(str(a) for a in self.writes)
        return f"{self.name}({self.tag}): [{loops}] {writes} <- {reads}"


def make_loop(
    name: str, extent: int, kind: LoopKind = LoopKind.SPATIAL
) -> Loop:
    """Convenience constructor re-exported for builders."""
    return Loop(name, extent, kind)
