"""Always-on compilation serving for the Chimera pipeline.

:mod:`repro.service` makes compilation cheap to repeat inside one
process; this package keeps a *process* running so every client shares
one warm cache. An ``asyncio`` TCP server speaks newline-delimited JSON
(plus an HTTP shim for ``GET /stats`` / ``GET /healthz``) and layers, in
request order: per-tenant quotas (:mod:`~repro.serving.quotas`), bounded
two-tier admission with load shedding (:mod:`~repro.serving.admission`),
and the sharded size-aware plan cache behind
:meth:`~repro.service.CompileService.serve_raw`.

Quickstart::

    # terminal 1
    python -m repro serve --cache-dir ~/.cache/repro-plans --port 9119

    # terminal 2 (or any process)
    from repro.serving import ServingClient
    with ServingClient("127.0.0.1", 9119) as client:
        reply = client.compile(chain, "a100")
        result = reply.decode("a100")   # full CompileResult, lowered locally

See ``docs/serving.md`` for the wire protocol, tier/quota semantics,
drain guarantees, and the ops runbook.
"""

from .admission import (
    DEFAULT_SERVICE_ESTIMATE,
    EWMA_ALPHA,
    AdmissionController,
    Rejected,
)
from .client import (
    AsyncServingClient,
    CompileReply,
    ServerError,
    ServingClient,
    http_get,
)
from .protocol import (
    DEFAULT_TENANT,
    MAX_LINE_BYTES,
    OP_COMPILE,
    OP_PING,
    OP_STATS,
    OPS,
    STATUS_BAD_REQUEST,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_REJECTED,
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIERS,
    ProtocolError,
    compile_message,
    decode_message,
    encode_message,
    parse_compile_request,
)
from .quotas import QuotaManager, TokenBucket
from .server import (
    BackgroundServer,
    CompileServer,
    ServerConfig,
    run_server,
)

__all__ = [
    "AdmissionController",
    "Rejected",
    "DEFAULT_SERVICE_ESTIMATE",
    "EWMA_ALPHA",
    "AsyncServingClient",
    "CompileReply",
    "ServerError",
    "ServingClient",
    "http_get",
    "ProtocolError",
    "compile_message",
    "decode_message",
    "encode_message",
    "parse_compile_request",
    "DEFAULT_TENANT",
    "MAX_LINE_BYTES",
    "OP_COMPILE",
    "OP_PING",
    "OP_STATS",
    "OPS",
    "TIERS",
    "TIER_BATCH",
    "TIER_INTERACTIVE",
    "STATUS_OK",
    "STATUS_BAD_REQUEST",
    "STATUS_NOT_FOUND",
    "STATUS_REJECTED",
    "STATUS_ERROR",
    "STATUS_DRAINING",
    "QuotaManager",
    "TokenBucket",
    "BackgroundServer",
    "CompileServer",
    "ServerConfig",
    "run_server",
]
