"""Wire protocol for the always-on compilation server.

The native transport is **newline-delimited JSON over TCP**: each request
is one JSON object on one line, each response one JSON object on one line.
Responses carry the request's ``id``, so a client may pipeline many
requests on a single connection and match replies out of order.

Request shape::

    {"op": "compile", "id": 7, "tenant": "team-a", "tier": "interactive",
     "chain": {...chain_to_dict...},
     "hardware": "a100" | {...hardware_to_dict...},
     "config": {...ChimeraConfig fields...} | null,
     "force_fusion": true | false | null}

Other ops: ``{"op": "stats", "id": 1}`` and ``{"op": "ping", "id": 2}``.

Response shape (compile)::

    {"id": 7, "ok": true, "status": 200, "key": "...", "source": "memory",
     "warm_start": "exact" | "near" | "cold",
     "entry": {...cache entry...}, "seconds": 0.0009,
     "queue_seconds": 0.0001}

``warm_start`` reports how much cached knowledge served the request:
``"exact"`` for cache hits, ``"near"`` when a fresh compile was
warm-started from the nearest same-structure cached plan (byte-identical
result, lower latency), ``"cold"`` otherwise; coalesced requests inherit
the leader's label.

Error responses carry ``ok=false``, an HTTP-flavoured ``status`` code and
an ``error`` string; admission rejections (429/503) add a ``retry_after``
hint in seconds.

A minimal HTTP/1.1 shim rides on the same port: a connection whose first
line is ``GET /stats`` or ``GET /healthz`` receives a one-shot
``application/json`` HTTP response and is closed — enough for ``curl``,
load balancer health checks, and dashboard scrapers without an HTTP
dependency.

The server recomputes the cache key from the *reconstructed* chain,
hardware and config objects (never from client-supplied dicts verbatim),
so structurally equivalent requests hash identically no matter which
client built them — and the on-disk cache stays shared with in-process
:class:`~repro.service.CompileService` users.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Union

from ..core.optimizer import ChimeraConfig
from ..hardware import preset
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..runtime.serialization import (
    chain_from_dict,
    chain_to_dict,
    hardware_from_dict,
    hardware_to_dict,
)
from ..service.service import CompileRequest

#: Protocol operations.
OP_COMPILE = "compile"
OP_STATS = "stats"
OP_PING = "ping"
OPS = (OP_COMPILE, OP_STATS, OP_PING)

#: Priority tiers, highest first.
TIER_INTERACTIVE = "interactive"
TIER_BATCH = "batch"
TIERS = (TIER_INTERACTIVE, TIER_BATCH)

DEFAULT_TENANT = "default"

#: HTTP-flavoured response statuses.
STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_REJECTED = 429
STATUS_ERROR = 500
STATUS_DRAINING = 503

#: Hard cap on one NDJSON line — a compile request is a few hundred KB at
#: the very worst; anything larger is a protocol violation, not a plan.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A structurally invalid or unparseable wire message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One JSON object, one line, UTF-8."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one NDJSON line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", "replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def config_from_dict(data: Optional[Dict[str, Any]]) -> Optional[ChimeraConfig]:
    """Rebuild a :class:`ChimeraConfig` from its wire/key encoding."""
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ProtocolError("config must be a JSON object or null")
    known = {field.name for field in dataclasses.fields(ChimeraConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(f"unknown config field(s): {', '.join(unknown)}")
    try:
        return ChimeraConfig(**data)
    except TypeError as exc:
        raise ProtocolError(f"bad config: {exc}") from None


def compile_message(
    chain: OperatorChain,
    hardware: Union[HardwareSpec, str],
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
    *,
    tenant: str = DEFAULT_TENANT,
    tier: str = TIER_INTERACTIVE,
    request_id: Optional[int] = None,
) -> Dict[str, Any]:
    """Build the wire payload for one compile request (client side)."""
    from ..service.keys import config_to_dict

    message: Dict[str, Any] = {
        "op": OP_COMPILE,
        "tenant": tenant,
        "tier": tier,
        "chain": chain_to_dict(chain),
        "hardware": (
            hardware if isinstance(hardware, str) else hardware_to_dict(hardware)
        ),
        "config": config_to_dict(config),
        "force_fusion": force_fusion,
    }
    if request_id is not None:
        message["id"] = request_id
    return message


def parse_compile_request(message: Dict[str, Any]) -> CompileRequest:
    """Reconstruct a :class:`CompileRequest` from a wire message.

    Raises:
        ProtocolError: on any missing or malformed field.
    """
    chain_data = message.get("chain")
    if not isinstance(chain_data, dict):
        raise ProtocolError("missing or malformed 'chain'")
    try:
        chain = chain_from_dict(chain_data)
    except Exception as exc:  # noqa: BLE001 - surface as a 400, not a 500
        raise ProtocolError(f"bad chain: {type(exc).__name__}: {exc}") from None

    hardware_data = message.get("hardware")
    try:
        if isinstance(hardware_data, str):
            hardware = preset(hardware_data)
        elif isinstance(hardware_data, dict):
            hardware = hardware_from_dict(hardware_data)
        else:
            raise ProtocolError(
                "missing or malformed 'hardware' (preset name or dict)"
            )
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise ProtocolError(
            f"bad hardware: {type(exc).__name__}: {exc}"
        ) from None

    config = config_from_dict(message.get("config"))
    force_fusion = message.get("force_fusion")
    if force_fusion is not None and not isinstance(force_fusion, bool):
        raise ProtocolError("force_fusion must be true, false or null")
    return CompileRequest(
        chain=chain,
        hardware=hardware,
        config=config,
        force_fusion=force_fusion,
    )


def parse_tier(message: Dict[str, Any]) -> str:
    tier = message.get("tier", TIER_INTERACTIVE)
    if tier not in TIERS:
        raise ProtocolError(
            f"unknown tier {tier!r} (expected one of {', '.join(TIERS)})"
        )
    return tier


def parse_tenant(message: Dict[str, Any]) -> str:
    tenant = message.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    return tenant


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "status": STATUS_OK, **fields}


def error_response(
    request_id: Any,
    status: int,
    error: str,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "status": status,
        "error": error,
    }
    if retry_after is not None:
        response["retry_after"] = round(retry_after, 4)
    return response


# ----------------------------------------------------------------------
# HTTP/1.1 shim
# ----------------------------------------------------------------------
_HTTP_REASONS = {
    STATUS_OK: "OK",
    STATUS_BAD_REQUEST: "Bad Request",
    STATUS_NOT_FOUND: "Not Found",
    STATUS_REJECTED: "Too Many Requests",
    STATUS_ERROR: "Internal Server Error",
    STATUS_DRAINING: "Service Unavailable",
}


def is_http_request(first_line: bytes) -> bool:
    return first_line.startswith((b"GET ", b"HEAD "))


def http_request_path(first_line: bytes) -> str:
    parts = first_line.decode("latin-1").split()
    return parts[1] if len(parts) >= 2 else "/"


def http_response(status: int, body: Dict[str, Any]) -> bytes:
    """A complete one-shot ``application/json`` HTTP/1.1 response."""
    payload = json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"
    reason = _HTTP_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + payload
