"""Clients for the compilation server.

Two flavours over the same NDJSON protocol:

* :class:`ServingClient` — blocking, ``socket``-based; one request at a
  time. The natural client for scripts and the CLI.
* :class:`AsyncServingClient` — ``asyncio`` streams with id-multiplexed
  futures: hundreds of compiles may be pipelined on one connection and
  resolve out of order. The load benchmark drives the server through it.

Both return :class:`CompileReply`. A successful reply carries the raw
cache ``entry``; call :meth:`CompileReply.decode` (which wraps
:func:`repro.service.decode_plan_entry`) to lower it into a full
:class:`~repro.core.pipeline.CompileResult` locally — the server never
pays kernel lowering for warm hits.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from ..core.optimizer import ChimeraConfig
from ..hardware import preset
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..service.service import decode_plan_entry
from .protocol import (
    DEFAULT_TENANT,
    MAX_LINE_BYTES,
    OP_PING,
    OP_STATS,
    TIER_INTERACTIVE,
    ProtocolError,
    compile_message,
    decode_message,
    encode_message,
)


class ServerError(RuntimeError):
    """A non-OK response from the server (shed, quota, drain, 500...)."""

    def __init__(
        self,
        status: int,
        error: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status}] {error}")
        self.status = status
        self.error = error
        self.retry_after = retry_after


@dataclass
class CompileReply:
    """One server response to a compile request."""

    ok: bool
    status: int
    key: Optional[str] = None
    source: Optional[str] = None
    #: ``"exact"`` (cache hit), ``"near"`` (fresh compile warm-started
    #: from a shape neighbor) or ``"cold"``; ``None`` from pre-warm-start
    #: servers.
    warm_start: Optional[str] = None
    tier: Optional[str] = None
    entry: Optional[Dict[str, Any]] = None
    seconds: float = 0.0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    error: Optional[str] = None
    retry_after: Optional[float] = None
    raw: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def from_cache(self) -> bool:
        return self.source in ("memory", "disk")

    def decode(self, hardware: Union[HardwareSpec, str]):
        """Lower the raw entry into a ``CompileResult`` locally."""
        if self.entry is None:
            raise ServerError(
                self.status, self.error or "reply carries no entry"
            )
        if isinstance(hardware, str):
            hardware = preset(hardware)
        return decode_plan_entry(self.entry, hardware)

    def raise_for_status(self) -> "CompileReply":
        if not self.ok:
            raise ServerError(
                self.status,
                self.error or "request failed",
                self.retry_after,
            )
        return self


def _reply_from_message(message: Dict[str, Any]) -> CompileReply:
    return CompileReply(
        ok=bool(message.get("ok")),
        status=int(message.get("status", 0)),
        key=message.get("key"),
        source=message.get("source"),
        warm_start=message.get("warm_start"),
        tier=message.get("tier"),
        entry=message.get("entry"),
        seconds=float(message.get("seconds", 0.0)),
        queue_seconds=float(message.get("queue_seconds", 0.0)),
        service_seconds=float(message.get("service_seconds", 0.0)),
        error=message.get("error"),
        retry_after=message.get("retry_after"),
        raw=message,
    )


class ServingClient:
    """Blocking client: one socket, sequential request/response.

    Usage::

        with ServingClient(host, port) as client:
            reply = client.compile(chain, "a100")
            result = reply.decode("a100")
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9119,
        *,
        tenant: str = DEFAULT_TENANT,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ----------------------------------------------------
    def connect(self) -> "ServingClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServingClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests ------------------------------------------------------
    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        self._sock.sendall(encode_message(message))
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        reply = decode_message(line)
        if reply.get("id") != message.get("id"):
            raise ProtocolError(
                f"response id {reply.get('id')!r} does not match "
                f"request id {message.get('id')!r}"
            )
        return reply

    def compile(
        self,
        chain: OperatorChain,
        hardware: Union[HardwareSpec, str],
        config: Optional[ChimeraConfig] = None,
        force_fusion: Optional[bool] = None,
        *,
        tier: str = TIER_INTERACTIVE,
        check: bool = False,
    ) -> CompileReply:
        """Send one compile request and wait for its reply.

        With ``check=True`` a non-OK reply raises :class:`ServerError`
        instead of returning.
        """
        message = compile_message(
            chain,
            hardware,
            config,
            force_fusion,
            tenant=self.tenant,
            tier=tier,
            request_id=next(self._ids),
        )
        reply = _reply_from_message(self._roundtrip(message))
        return reply.raise_for_status() if check else reply

    def stats(self) -> Dict[str, Any]:
        reply = self._roundtrip({"op": OP_STATS, "id": next(self._ids)})
        if not reply.get("ok"):
            raise ServerError(
                int(reply.get("status", 500)),
                reply.get("error", "stats failed"),
            )
        return reply["stats"]

    def ping(self) -> bool:
        reply = self._roundtrip({"op": OP_PING, "id": next(self._ids)})
        return bool(reply.get("ok"))


class AsyncServingClient:
    """Pipelining asyncio client: many in-flight requests, one connection.

    Every request gets a fresh id and a future; a reader task resolves
    futures as responses arrive (in any order). Usage::

        client = await AsyncServingClient.open(host, port)
        replies = await asyncio.gather(
            *(client.compile(chain, "a100") for chain in chains)
        )
        await client.close()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def open(
        cls,
        host: str = "127.0.0.1",
        port: int = 9119,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> "AsyncServingClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer, tenant=tenant)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                try:
                    message = decode_message(line)
                except ProtocolError:
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("client closed"))
            raise

    def _fail_pending(self, exc: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request_id = message["id"]
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(encode_message(message))
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def compile(
        self,
        chain: OperatorChain,
        hardware: Union[HardwareSpec, str],
        config: Optional[ChimeraConfig] = None,
        force_fusion: Optional[bool] = None,
        *,
        tier: str = TIER_INTERACTIVE,
        check: bool = False,
    ) -> CompileReply:
        message = compile_message(
            chain,
            hardware,
            config,
            force_fusion,
            tenant=self.tenant,
            tier=tier,
            request_id=next(self._ids),
        )
        reply = _reply_from_message(await self._roundtrip(message))
        return reply.raise_for_status() if check else reply

    async def send_raw(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Ship a pre-built message (tests poke malformed requests here)."""
        message = dict(payload)
        message.setdefault("id", next(self._ids))
        return await self._roundtrip(message)

    async def stats(self) -> Dict[str, Any]:
        reply = await self._roundtrip({"op": OP_STATS, "id": next(self._ids)})
        if not reply.get("ok"):
            raise ServerError(
                int(reply.get("status", 500)),
                reply.get("error", "stats failed"),
            )
        return reply["stats"]

    async def ping(self) -> bool:
        reply = await self._roundtrip({"op": OP_PING, "id": next(self._ids)})
        return bool(reply.get("ok"))

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001
            pass


def http_get(
    host: str, port: int, path: str = "/stats", timeout: float = 10.0
) -> Tuple[int, Dict[str, Any]]:
    """Fetch one of the server's HTTP endpoints without an HTTP library.

    Returns ``(status, body)``; used by tests and ops checks (``curl``
    works just as well from a shell).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n"
        )
        sock.sendall(request.encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    blob = b"".join(chunks)
    head, _, body = blob.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(body.decode("utf-8"))
