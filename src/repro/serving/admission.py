"""Request admission: two priority tiers, bounded queues, load shedding.

The server admits a compile request into one of two tiers:

* **interactive** — latency-sensitive traffic; always dispatched before
  any queued batch work;
* **batch** — offline/bulk traffic; absorbs whatever worker capacity the
  interactive tier leaves idle.

Each tier owns a bounded FIFO.  When a tier's queue is full the request is
**shed** immediately — an explicit 429-style :class:`Rejected` carrying a
``retry_after`` hint — instead of being buffered into an ever-growing
backlog.  The hint is the expected drain time of the tier's own queue
*plus every higher-priority queue ahead of it* (strict-priority dispatch
means batch work waits for interactive to empty), each scaled by that
tier's EWMA service-time estimate and divided by the worker count — so
clients back off proportionally to actual load rather than a fixed
constant.

Dispatch is strict-priority but non-preemptive: a worker that frees up
always takes the oldest interactive job first, batch only when the
interactive queue is empty.  Admitted jobs are never dropped — draining
stops *admission*, then lets the workers run both queues dry (the drain
invariant the load benchmark gates on).
"""

from __future__ import annotations

import asyncio
import collections
from typing import Any, Deque, Dict, Optional

from .protocol import (
    STATUS_DRAINING,
    STATUS_REJECTED,
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIERS,
)

#: Fallback service-time estimate (seconds) before the first completion.
DEFAULT_SERVICE_ESTIMATE = 0.05

#: EWMA smoothing factor for the per-tier service-time estimate.
EWMA_ALPHA = 0.2


class Rejected(Exception):
    """A request refused at admission (shed, quota, or draining)."""

    def __init__(
        self,
        status: int,
        reason: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after


class AdmissionController:
    """Bounded two-tier admission queue with strict-priority dispatch.

    Single-event-loop object: every method is called from the server's
    loop, so plain deques + one semaphore are race-free without locks.

    Args:
        interactive_capacity: interactive queue bound (jobs waiting for a
            worker; in-flight jobs do not count).
        batch_capacity: batch queue bound.
        workers: dispatcher width, used only to scale ``retry_after``.
    """

    def __init__(
        self,
        interactive_capacity: int = 256,
        batch_capacity: int = 1024,
        workers: int = 1,
    ) -> None:
        capacities = {
            TIER_INTERACTIVE: interactive_capacity,
            TIER_BATCH: batch_capacity,
        }
        for tier, capacity in capacities.items():
            if capacity < 1:
                raise ValueError(
                    f"{tier} queue capacity must be >= 1, got {capacity}"
                )
        self.capacity = capacities
        self.workers = max(1, workers)
        self._queues: Dict[str, Deque[Any]] = {
            tier: collections.deque() for tier in TIERS
        }
        self._ready = asyncio.Semaphore(0)
        self.admitted = {tier: 0 for tier in TIERS}
        self.shed = {tier: 0 for tier in TIERS}
        self.completed = {tier: 0 for tier in TIERS}
        self._estimate = {tier: DEFAULT_SERVICE_ESTIMATE for tier in TIERS}
        self.draining = False

    # ------------------------------------------------------------------
    # admission side
    # ------------------------------------------------------------------
    def submit(self, tier: str, job: Any) -> None:
        """Enqueue a job or shed it.

        Raises:
            Rejected: 503 while draining, 429 when the tier's queue is
                full (with a drain-time ``retry_after`` hint).
        """
        if self.draining:
            raise Rejected(STATUS_DRAINING, "server is draining")
        queue = self._queues[tier]
        if len(queue) >= self.capacity[tier]:
            self.shed[tier] += 1
            raise Rejected(
                STATUS_REJECTED,
                f"{tier} queue full ({self.capacity[tier]} waiting)",
                retry_after=self.retry_after(tier),
            )
        queue.append(job)
        self.admitted[tier] += 1
        self._ready.release()

    def retry_after(self, tier: str) -> float:
        """Expected seconds until the tier's queue has room again.

        Dispatch is strict-priority, so a queued job waits behind its own
        queue *and* every job in higher-priority tiers: a batch hint that
        ignored a deep interactive queue would tell clients to come back
        long before a worker could possibly reach them, turning one shed
        into a retry storm.  The estimate is therefore the drain time of
        this tier's queue (plus the slot the retry would occupy) plus the
        drain time of everything queued ahead of it.
        """
        depth = len(self._queues[tier])
        seconds = (depth + 1) * self._estimate[tier]
        for higher in TIERS:
            if higher == tier:
                break
            seconds += len(self._queues[higher]) * self._estimate[higher]
        return seconds / self.workers

    # ------------------------------------------------------------------
    # dispatch side
    # ------------------------------------------------------------------
    async def next_job(self) -> Any:
        """Wait for the next job, interactive tier first."""
        await self._ready.acquire()
        for tier in TIERS:
            queue = self._queues[tier]
            if queue:
                return queue.popleft()
        raise RuntimeError("admission semaphore out of sync with queues")

    def observe_service(self, tier: str, seconds: float) -> None:
        """Fold one completed job's service time into the EWMA estimate."""
        self.completed[tier] += 1
        self._estimate[tier] += EWMA_ALPHA * (seconds - self._estimate[tier])

    # ------------------------------------------------------------------
    # draining + observability
    # ------------------------------------------------------------------
    def start_draining(self) -> None:
        """Refuse new submissions; queued jobs still run to completion."""
        self.draining = True

    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def depth(self, tier: str) -> int:
        return len(self._queues[tier])

    def snapshot(self) -> Dict[str, Any]:
        return {
            tier: {
                "depth": len(self._queues[tier]),
                "capacity": self.capacity[tier],
                "admitted": self.admitted[tier],
                "completed": self.completed[tier],
                "shed": self.shed[tier],
                "service_estimate_seconds": self._estimate[tier],
            }
            for tier in TIERS
        }
