"""The always-on compilation server.

:class:`CompileServer` fronts a :class:`~repro.service.CompileService`
with a long-lived ``asyncio`` process:

* **transport** — newline-delimited JSON over TCP (pipelined, out-of-order
  responses matched by ``id``) plus a minimal HTTP/1.1 shim on the same
  port for ``GET /stats`` and ``GET /healthz``;
* **admission** — two priority tiers (interactive > batch) with bounded
  queues and explicit 429 load shedding
  (:class:`~repro.serving.admission.AdmissionController`);
* **quotas** — per-tenant token-bucket rate limits and in-flight caps
  (:class:`~repro.serving.quotas.QuotaManager`);
* **cache** — the service's sharded, size-aware plan cache, re-warmed
  from disk on start (hot restart) and compacted by a background task off
  the request path;
* **drain** — SIGTERM/SIGINT stop admission, let every admitted request
  finish and its response flush, checkpoint the metrics counters, then
  exit; a subsequent start restores the counters and the memory tier.

Compiles execute on a thread pool (`serve_raw` — the optimizer releases
the GIL inside NumPy/SciPy); the event loop only parses, queues, and
serializes, so warm hits stay latency-dominated by serialization.

Deployment entry points: ``python -m repro serve`` (:func:`run_server`)
for a real process, :class:`BackgroundServer` for tests/benchmarks that
want a server on a thread inside the current process.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import functools
import json
import os
import pathlib
import signal
import threading
import time
from typing import Any, Dict, Optional, Set

from ..service.service import CompileRequest, CompileService
from .admission import AdmissionController, Rejected
from .protocol import (
    MAX_LINE_BYTES,
    OP_COMPILE,
    OP_PING,
    OP_STATS,
    STATUS_BAD_REQUEST,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    http_request_path,
    http_response,
    is_http_request,
    ok_response,
    parse_compile_request,
    parse_tenant,
    parse_tier,
)
from .quotas import QuotaManager

#: Name of the metrics checkpoint written into the cache directory.
STATE_FILENAME = "server-state.json"


@dataclasses.dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` exposes as flags.

    Attributes:
        host/port: bind address (``port=0`` picks a free port; the chosen
            one is in :attr:`CompileServer.port` and the startup line).
        workers: dispatcher width == compile thread-pool size.
        interactive_queue/batch_queue: per-tier admission bounds.
        cache_dir: persistent plan store (also holds the metrics
            checkpoint); ``None`` keeps everything in memory.
        shards: plan-cache shards (1 = flat cache).
        memory_capacity/max_memory_bytes: memory-tier bounds (total).
        tenant_rate/tenant_burst/tenant_inflight: default per-tenant
            quotas; 0 disables a check.
        tenant_overrides: per-tenant quota overrides.
        compact_interval: seconds between background compaction passes
            (0 disables).
        compact_max_age: evict disk entries older than this many seconds
            during compaction (``None`` keeps them forever).
        compact_disk_budget: disk byte budget enforced by compaction.
        warm_start: refill the memory tier from disk on start.
        state_path: metrics checkpoint location (default:
            ``<cache_dir>/server-state.json``).
        drain_timeout: maximum seconds to wait for in-flight responses to
            flush during drain.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    interactive_queue: int = 256
    batch_queue: int = 1024
    cache_dir: Optional[str] = None
    shards: int = 4
    memory_capacity: int = 512
    max_memory_bytes: Optional[int] = None
    tenant_rate: float = 0.0
    tenant_burst: Optional[float] = None
    tenant_inflight: int = 0
    tenant_overrides: Optional[Dict[str, Dict[str, Any]]] = None
    compact_interval: float = 60.0
    compact_max_age: Optional[float] = None
    compact_disk_budget: Optional[int] = None
    warm_start: bool = True
    state_path: Optional[str] = None
    drain_timeout: float = 30.0
    retries: int = 1
    fallback: bool = True


class _Job:
    """One admitted compile request waiting for a dispatcher."""

    __slots__ = ("request", "tier", "tenant", "future", "enqueued")

    def __init__(
        self,
        request: CompileRequest,
        tier: str,
        tenant: str,
        future: "asyncio.Future[Any]",
        enqueued: float,
    ) -> None:
        self.request = request
        self.tier = tier
        self.tenant = tenant
        self.future = future
        self.enqueued = enqueued


class CompileServer:
    """Async front end over a :class:`CompileService`.

    Construct, then ``await start()`` from a running event loop.  All
    coroutine methods must be called on that same loop.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[CompileService] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        if service is not None:
            self.service = service
        else:
            self.service = CompileService(
                cache_dir=self.config.cache_dir,
                memory_capacity=self.config.memory_capacity,
                retries=self.config.retries,
                fallback=self.config.fallback,
                shards=self.config.shards,
                max_memory_bytes=self.config.max_memory_bytes,
            )
        self.quotas = QuotaManager(
            rate=self.config.tenant_rate,
            burst=self.config.tenant_burst,
            max_inflight=self.config.tenant_inflight,
            overrides=self.config.tenant_overrides,
        )
        self.admission: Optional[AdmissionController] = None
        self.warmed_entries = 0
        self.restored_counters = False
        self.compactions = 0
        self.last_compaction: Optional[Dict[str, int]] = None
        self.draining = False
        self.drained = False
        self._started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._maintenance_pool: Optional[
            concurrent.futures.ThreadPoolExecutor
        ] = None
        self._workers: list = []
        self._compactor: Optional[asyncio.Task] = None
        self._inflight = 0
        self._connections = 0
        self._writers: Set[asyncio.StreamWriter] = set()
        self._message_tasks: Set[asyncio.Task] = set()
        self._drain_lock: Optional[asyncio.Lock] = None
        self._bound_port = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self._bound_port if self._bound_port else self.config.port

    def _state_path(self) -> Optional[pathlib.Path]:
        if self.config.state_path is not None:
            return pathlib.Path(self.config.state_path)
        if self.config.cache_dir is not None:
            return pathlib.Path(self.config.cache_dir) / STATE_FILENAME
        return None

    async def start(self) -> None:
        """Warm the cache, restore counters, bind, and start dispatching."""
        self.admission = AdmissionController(
            interactive_capacity=self.config.interactive_queue,
            batch_capacity=self.config.batch_queue,
            workers=self.config.workers,
        )
        self._drain_lock = asyncio.Lock()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._maintenance_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-compact"
        )
        self._restore_checkpoint()
        if self.config.warm_start:
            self.warmed_entries = self.service.cache.warm_memory()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"repro-dispatch-{i}")
            for i in range(self.config.workers)
        ]
        if self.config.compact_interval > 0:
            self._compactor = asyncio.create_task(
                self._compact_loop(), name="repro-compactor"
            )

    async def drain(self) -> None:
        """Graceful shutdown: finish everything admitted, lose nothing.

        1. stop accepting connections and refuse new compile submissions
           (503 + no retry storm — clients get an explicit signal);
        2. wait for both queues to empty and every in-flight compile to
           finish *and* its response to flush to the socket;
        3. checkpoint the metrics counters next to the cache.

        Idempotent; concurrent callers share one drain.
        """
        async with self._drain_lock:
            if self.drained:
                return
            self.draining = True
            self.admission.start_draining()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            deadline = time.monotonic() + self.config.drain_timeout
            while (
                self.admission.pending() > 0 or self._inflight > 0
            ) and time.monotonic() < deadline:
                await asyncio.sleep(0.005)
            # Every admitted job has a result; now let the handler tasks
            # finish writing responses to their sockets.
            pending = [task for task in self._message_tasks if not task.done()]
            if pending:
                await asyncio.wait(
                    pending, timeout=max(0.0, deadline - time.monotonic())
                )
            self._checkpoint()
            self.drained = True

    async def aclose(self) -> None:
        """Tear down tasks, connections, and pools (call after drain)."""
        for task in self._workers:
            task.cancel()
        if self._compactor is not None:
            self._compactor.cancel()
        tasks = [t for t in (*self._workers, self._compactor) if t is not None]
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
        if self._server is not None and not self.draining:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._maintenance_pool is not None:
            self._maintenance_pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # checkpointing (drain -> hot restart)
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        path = self._state_path()
        if path is None:
            return
        snapshot = self.service.metrics.snapshot()
        payload = {
            "checkpoint_at": time.time(),
            "counters": {
                name: value
                for name, value in snapshot.items()
                if isinstance(value, int) and not isinstance(value, bool)
            },
            "serving": {
                "queues": self.admission.snapshot(),
                "tenants": self.quotas.snapshot(),
            },
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass  # checkpointing is best-effort; never block the drain

    def _restore_checkpoint(self) -> None:
        path = self._state_path()
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        counters = payload.get("counters")
        if isinstance(counters, dict):
            self.service.metrics.restore(counters)
            self.restored_counters = True

    # ------------------------------------------------------------------
    # dispatchers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.admission.next_job()
            self._inflight += 1
            queue_seconds = loop.time() - job.enqueued
            started = time.perf_counter()
            try:
                raw = await loop.run_in_executor(
                    self._pool,
                    functools.partial(self.service.serve_raw, job.request),
                )
                outcome: Any = (raw, queue_seconds)
                failure: Optional[BaseException] = None
            except asyncio.CancelledError:
                self._inflight -= 1
                self.quotas.release(job.tenant)
                if not job.future.done():
                    job.future.set_exception(
                        RuntimeError("server shut down mid-compile")
                    )
                raise
            except Exception as exc:  # noqa: BLE001 - isolate request crashes
                outcome = None
                failure = exc
            self.admission.observe_service(
                job.tier, time.perf_counter() - started
            )
            self._inflight -= 1
            self.quotas.release(job.tenant)
            if not job.future.done():
                if failure is not None:
                    job.future.set_exception(failure)
                else:
                    job.future.set_result(outcome)

    async def _compact_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.compact_interval)
            try:
                result = await loop.run_in_executor(
                    self._maintenance_pool,
                    functools.partial(
                        self.service.cache.compact,
                        self.config.compact_max_age,
                        self.config.compact_disk_budget,
                    ),
                )
            except Exception:  # noqa: BLE001 - keep compacting next round
                continue
            self.compactions += 1
            self.last_compaction = result

    def compact_now(self) -> Dict[str, int]:
        """Run one synchronous compaction pass (tests, CLI tooling)."""
        result = self.service.cache.compact(
            self.config.compact_max_age, self.config.compact_disk_budget
        )
        self.compactions += 1
        self.last_compaction = result
        return result

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: Set[asyncio.Task] = set()
        try:
            first = await reader.readline()
            if not first:
                return
            if is_http_request(first):
                await self._handle_http(reader, writer, first)
                return
            line: Optional[bytes] = first
            while line:
                stripped = line.strip()
                if stripped:
                    task = asyncio.create_task(
                        self._handle_message(stripped, writer, write_lock)
                    )
                    conn_tasks.add(task)
                    self._message_tasks.add(task)
                    task.add_done_callback(conn_tasks.discard)
                    task.add_done_callback(self._message_tasks.discard)
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._write(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            STATUS_BAD_REQUEST,
                            f"line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
            # Keep responses for pipelined requests flowing even after the
            # client half-closes its send side.
            if conn_tasks:
                await asyncio.wait(conn_tasks)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown after drain: exit quietly instead of letting
            # asyncio.run log every parked reader as a task exception.
            pass
        finally:
            self._connections -= 1
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        # Drain the header block (best effort) so the peer's write side
        # isn't reset before it finishes sending.
        try:
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=1.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
        except (asyncio.TimeoutError, ConnectionError, ValueError):
            pass
        path = http_request_path(first).split("?", 1)[0]
        if path == "/stats":
            body = self.stats()
            status = STATUS_OK
        elif path == "/healthz":
            status = STATUS_DRAINING if self.draining else STATUS_OK
            body = {
                "ok": not self.draining,
                "draining": self.draining,
                "uptime_seconds": self.uptime_seconds(),
            }
        else:
            status = STATUS_NOT_FOUND
            body = {"ok": False, "error": f"no route for {path}"}
        try:
            writer.write(http_response(status, body))
            await writer.drain()
        except ConnectionError:
            pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        message: Dict[str, Any],
    ) -> None:
        async with lock:
            try:
                writer.write(encode_message(message))
                await writer.drain()
            except ConnectionError:
                pass  # peer vanished; the compile still warmed the cache

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    async def _handle_message(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            message = decode_message(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == OP_PING:
                response = ok_response(
                    request_id, pong=True, draining=self.draining
                )
            elif op == OP_STATS:
                response = ok_response(request_id, stats=self.stats())
            elif op == OP_COMPILE:
                response = await self._compile_response(message, request_id)
            else:
                response = error_response(
                    request_id, STATUS_BAD_REQUEST, f"unknown op {op!r}"
                )
        except ProtocolError as exc:
            response = error_response(request_id, STATUS_BAD_REQUEST, str(exc))
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the conn
            response = error_response(
                request_id, STATUS_ERROR, f"{type(exc).__name__}: {exc}"
            )
        await self._write(writer, write_lock, response)

    async def _compile_response(
        self, message: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        received = time.perf_counter()
        if self.draining:
            return error_response(
                request_id, STATUS_DRAINING, "server is draining"
            )
        tier = parse_tier(message)
        tenant = parse_tenant(message)
        request = parse_compile_request(message)
        try:
            self.quotas.admit(tenant)
        except Rejected as exc:
            self.service.metrics.count("quota_rejections")
            return error_response(
                request_id, exc.status, exc.reason, exc.retry_after
            )
        loop = asyncio.get_running_loop()
        job = _Job(
            request=request,
            tier=tier,
            tenant=tenant,
            future=loop.create_future(),
            enqueued=loop.time(),
        )
        try:
            self.admission.submit(tier, job)
        except Rejected as exc:
            self.quotas.release(tenant)
            self.service.metrics.count(f"shed_{tier}")
            return error_response(
                request_id, exc.status, exc.reason, exc.retry_after
            )
        try:
            raw, queue_seconds = await job.future
        except Exception as exc:  # noqa: BLE001
            return error_response(
                request_id, STATUS_ERROR, f"{type(exc).__name__}: {exc}"
            )
        total = time.perf_counter() - received
        self.service.metrics.observe(
            "serve_warm" if raw.from_cache else "serve_cold", total
        )
        if raw.entry is None:
            return error_response(
                request_id, STATUS_ERROR, raw.error or "compilation failed"
            )
        return ok_response(
            request_id,
            key=raw.key,
            source=raw.source,
            warm_start=raw.warm_start,
            tier=tier,
            entry=raw.entry,
            seconds=round(total, 6),
            queue_seconds=round(queue_seconds, 6),
            service_seconds=round(raw.seconds, 6),
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def stats(self) -> Dict[str, Any]:
        """Service stats plus the serving layer's live state."""
        snap = self.service.stats()
        snap["serving"] = {
            "host": self.config.host,
            "port": self.port,
            "uptime_seconds": self.uptime_seconds(),
            "draining": self.draining,
            "connections": self._connections,
            "inflight": self._inflight,
            "workers": self.config.workers,
            "queues": (
                self.admission.snapshot() if self.admission is not None else {}
            ),
            "tenants": self.quotas.snapshot(),
            "warmed_entries": self.warmed_entries,
            "restored_counters": self.restored_counters,
            "compaction": {
                "runs": self.compactions,
                "interval_seconds": self.config.compact_interval,
                "last": self.last_compaction,
            },
        }
        return snap


def run_server(config: Optional[ServerConfig] = None) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    Prints ``serving on <host>:<port>`` once listening (parsers rely on
    it), installs SIGTERM/SIGINT handlers that trigger a graceful drain,
    and returns 0 after a clean drain.
    """
    config = config if config is not None else ServerConfig()

    async def _main() -> None:
        server = CompileServer(config)
        await server.start()
        print(f"serving on {server.host}:{server.port}", flush=True)
        if server.warmed_entries:
            print(
                f"warmed {server.warmed_entries} plan(s) from disk",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix platform or nested loop; Ctrl-C still works
        await stop.wait()
        print("draining: admission closed, flushing in-flight", flush=True)
        await server.drain()
        await server.aclose()
        queues = server.admission.snapshot()
        admitted = sum(tier["admitted"] for tier in queues.values())
        completed = sum(tier["completed"] for tier in queues.values())
        print(
            f"drained cleanly: {completed}/{admitted} admitted requests "
            "completed",
            flush=True,
        )

    asyncio.run(_main())
    return 0


class BackgroundServer:
    """A :class:`CompileServer` on a daemon thread — tests and benchmarks.

    Usage::

        with BackgroundServer(ServerConfig(port=0)) as bg:
            client = ServingClient(bg.host, bg.port)
            ...

    ``drain()`` and ``stop()`` are thread-safe; exiting the context
    manager drains (losing nothing) and tears the loop down.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[CompileService] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._service = service
        self.server: Optional[CompileServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serving", daemon=True
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._error}"
            ) from self._error
        if self.server is None:
            raise RuntimeError("background server failed to start (timeout)")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001
            if not self._ready.is_set():
                self._error = exc
                self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = CompileServer(self.config, service=self._service)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001
            self._error = exc
            self._ready.set()
            return
        self.server = server
        self._ready.set()
        await self._stop.wait()
        if not server.drained:
            await server.drain()
        await server.aclose()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def drain(self, timeout: float = 60.0) -> None:
        """Drain the server from the calling thread; blocks until done."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        future = asyncio.run_coroutine_threadsafe(
            _call_soon(self.server.stats), self._loop
        )
        return future.result(timeout=30)

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


async def _call_soon(fn: Any) -> Any:
    return fn()
