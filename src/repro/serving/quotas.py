"""Per-tenant rate limits and in-flight quotas.

Every wire request names a ``tenant`` (defaulting to ``"default"``); the
server enforces two independent limits per tenant *before* a request may
enter the admission queues:

* **token-bucket rate limit** — ``rate`` requests/second refill up to a
  ``burst`` ceiling; an empty bucket rejects with a ``retry_after`` equal
  to the time until the next token.  Bursty tenants therefore borrow
  capacity smoothly rather than flapping on a fixed per-second window.
* **in-flight quota** — at most ``max_inflight`` admitted-but-unfinished
  requests per tenant; protects worker capacity from any single tenant
  queueing a flood of slow cold compiles.

A limit of ``0`` disables that check (the default: quotas are opt-in via
server flags).  Per-tenant overrides replace the defaults for named
tenants, so one noisy tenant can be clamped without touching the rest.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from .admission import Rejected
from .protocol import STATUS_REJECTED


class TokenBucket:
    """Classic token bucket on a monotonic clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self._stamp = time.monotonic()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_take(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class _TenantState:
    __slots__ = (
        "bucket",
        "max_inflight",
        "inflight",
        "requests",
        "rejected_rate",
        "rejected_inflight",
    )

    def __init__(self, bucket: Optional[TokenBucket], max_inflight: int):
        self.bucket = bucket
        self.max_inflight = max_inflight
        self.inflight = 0
        self.requests = 0
        self.rejected_rate = 0
        self.rejected_inflight = 0


class QuotaManager:
    """Admission-side tenant accounting.

    Args:
        rate: default requests/second per tenant (0 disables rating).
        burst: default bucket ceiling (defaults to ``2 * rate``).
        max_inflight: default concurrent-requests cap per tenant
            (0 disables).
        overrides: per-tenant ``{"rate": .., "burst": .., "max_inflight": ..}``
            replacing the defaults for that tenant.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: Optional[float] = None,
        max_inflight: int = 0,
        overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_inflight = max_inflight
        self.overrides = dict(overrides or {})
        self._tenants: Dict[str, _TenantState] = {}

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            spec = self.overrides.get(tenant, {})
            rate = float(spec.get("rate", self.rate))
            burst = spec.get("burst", self.burst)
            if burst is None:
                burst = 2 * rate
            max_inflight = int(spec.get("max_inflight", self.max_inflight))
            bucket = TokenBucket(rate, float(burst)) if rate > 0 else None
            state = _TenantState(bucket, max_inflight)
            self._tenants[tenant] = state
        return state

    def admit(self, tenant: str) -> None:
        """Count one request and enforce both limits.

        On success the tenant's in-flight count is incremented; the caller
        must pair every successful ``admit`` with exactly one ``release``.

        Raises:
            Rejected: 429 with a reason of ``rate`` or ``inflight``.
        """
        state = self._state(tenant)
        state.requests += 1
        if state.max_inflight > 0 and state.inflight >= state.max_inflight:
            state.rejected_inflight += 1
            raise Rejected(
                STATUS_REJECTED,
                f"tenant {tenant!r} at in-flight quota "
                f"({state.max_inflight})",
                retry_after=None,
            )
        if state.bucket is not None and not state.bucket.try_take():
            state.rejected_rate += 1
            raise Rejected(
                STATUS_REJECTED,
                f"tenant {tenant!r} rate limited",
                retry_after=state.bucket.seconds_until_token(),
            )
        state.inflight += 1

    def release(self, tenant: str) -> None:
        state = self._tenants.get(tenant)
        if state is not None and state.inflight > 0:
            state.inflight -= 1

    def inflight(self) -> int:
        return sum(state.inflight for state in self._tenants.values())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            tenant: {
                "requests": state.requests,
                "inflight": state.inflight,
                "rejected_rate": state.rejected_rate,
                "rejected_inflight": state.rejected_inflight,
                "rate": state.bucket.rate if state.bucket else 0.0,
                "max_inflight": state.max_inflight,
            }
            for tenant, state in sorted(self._tenants.items())
        }
