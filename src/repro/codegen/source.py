"""Pseudo low-level source emission.

Chimera's real backends emit C-with-intrinsics / CUDA / pragma DSL.  Here
the generated kernel text serves inspection and testing: the emitted source
shows the distributed loop nest, the on-chip buffer declarations (with the
loop-distribution buffer sizes), and the micro-kernel call sites where the
replaceable micro kernel was lowered to the backend implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.movement import MovementModel
from ..core.plan import FusionPlan
from ..microkernel.base import LoweredMicroKernel
from .program import BlockProgram, BodyNode, LoopNode, Node


def emit_source(
    plan: FusionPlan,
    program: BlockProgram,
    micro_kernel: Optional[LoweredMicroKernel] = None,
) -> str:
    """Render a fused kernel as pseudo-C."""
    chain = plan.chain
    lines: List[str] = [
        f"// fused kernel: {chain.name}",
        f"// target: {plan.hardware.name} ({plan.hardware.backend})",
        f"// block order: {'/'.join(program.order)}",
    ]
    tiles = ", ".join(
        f"T_{name}={program.tiles.get(name, 1)}" for name in program.order
    )
    lines.append(f"// tiles: {tiles}")
    if micro_kernel is not None:
        lines.append(
            f"// micro kernel: {micro_kernel.name} "
            f"tile {micro_kernel.tile_m}x{micro_kernel.tile_n}"
            f"x{micro_kernel.tile_k} (AI {micro_kernel.arithmetic_intensity:.2f})"
        )
    lines.append(
        f"void {_identifier(chain.name)}("
        + ", ".join(f"tensor_t {t}" for t in chain.io_tensors())
        + ") {"
    )
    model = MovementModel(chain, program.order)
    extents = chain.loop_extents()
    for tensor in chain.intermediate_tensors():
        full = set(model.buffered_full_loops(tensor))
        producer = chain.producers_of(tensor)[0]
        access = producer.access_of(tensor)
        eff: Dict[str, float] = dict(program.tiles)
        for name in full:
            eff[name] = extents[name]
        elems = int(access.footprint(eff))
        lines.append(
            f"  onchip_t {tensor}_buf[{elems}];  "
            f"// intermediate, stays in {plan.inner.level}"
        )
    _emit_node(program.root, lines, 1, program, micro_kernel)
    lines.append("}")
    return "\n".join(lines)


def _identifier(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() else "_")
    ident = "".join(out)
    if ident and ident[0].isdigit():
        ident = "k_" + ident
    return ident or "kernel"


def _emit_node(
    node: Node,
    lines: List[str],
    depth: int,
    program: BlockProgram,
    micro_kernel: Optional[LoweredMicroKernel],
) -> None:
    pad = "  " * depth
    if isinstance(node, BodyNode):
        op = node.op
        reads = ", ".join(str(a) for a in op.reads)
        writes = ", ".join(str(a) for a in op.writes)
        if op.is_compute_intensive and micro_kernel is not None:
            lines.append(
                f"{pad}{micro_kernel.name}<{op.tag}>({writes} <- {reads});"
            )
        else:
            lines.append(f"{pad}{op.tag}_block({writes} <- {reads});")
    elif isinstance(node, LoopNode):
        lines.append(
            f"{pad}for (int {node.loop}0 = lo_{node.loop}; "
            f"{node.loop}0 < hi_{node.loop}; {node.loop}0 += {node.tile}) {{"
        )
        _emit_node(node.body, lines, depth + 1, program, micro_kernel)
        lines.append(f"{pad}}}")
    else:
        for part in node.parts:
            _emit_node(part, lines, depth, program, micro_kernel)
