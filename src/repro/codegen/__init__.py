"""Code generation: block programs, numerical execution, source emission."""

from .executor import (
    execute_plan,
    execute_program,
    execute_reference,
    random_inputs,
    virtual_shapes,
)
from .kernel import FusedKernel, build_kernel
from .program import BlockProgram, BodyNode, LoopNode, SeqNode, lower_schedule
from .schedule import (
    CompiledSchedule,
    OpBlockTable,
    clear_schedule_memo,
    compile_schedule,
    program_digest,
    schedule_memo_stats,
)
from .source import emit_source

__all__ = [
    "execute_plan",
    "execute_program",
    "execute_reference",
    "random_inputs",
    "virtual_shapes",
    "FusedKernel",
    "build_kernel",
    "BlockProgram",
    "BodyNode",
    "LoopNode",
    "SeqNode",
    "lower_schedule",
    "CompiledSchedule",
    "OpBlockTable",
    "clear_schedule_memo",
    "compile_schedule",
    "program_digest",
    "schedule_memo_stats",
    "emit_source",
]
