"""Code generation: block programs, numerical execution, source emission."""

from .executor import (
    execute_plan,
    execute_program,
    execute_reference,
    random_inputs,
    virtual_shapes,
)
from .kernel import FusedKernel, build_kernel
from .program import BlockProgram, BodyNode, LoopNode, SeqNode, lower_schedule
from .source import emit_source

__all__ = [
    "execute_plan",
    "execute_program",
    "execute_reference",
    "random_inputs",
    "virtual_shapes",
    "FusedKernel",
    "build_kernel",
    "BlockProgram",
    "BodyNode",
    "LoopNode",
    "SeqNode",
    "lower_schedule",
    "emit_source",
]
