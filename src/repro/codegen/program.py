"""Block programs: the loop nest a fusion plan lowers to.

A block execution order is realized by **loop distribution**: operators
share the outer loops they have in common; where they diverge, each
operator's remaining loops become a *sibling sub-nest*, ordered by the
chain's dependencies (producers first).  This construction is what makes
every permutation of the independent loops a valid schedule — a producer's
private reduction always completes before its consumers read the
intermediate.

Multi-level plans lower **hierarchically**: the outermost level's order
traverses its (large) blocks; inside each, the next level's order traverses
sub-blocks clipped to the parent's iteration range, down to the innermost
level.  Bodies therefore receive half-open *iteration ranges* per loop
rather than flat block indices — tile sizes need not divide their parents.

The same :class:`BlockProgram` tree feeds two consumers: the numpy executor
(numerical correctness) and the cache simulators (measured data movement).
Both replay the tree through its flattened :class:`~repro.codegen.schedule.
CompiledSchedule` rather than re-interpreting it per run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from ..ir.chain import OperatorChain
from ..ir.operator import OperatorSpec

Range = Tuple[int, int]
Ranges = Dict[str, Range]


@dataclasses.dataclass(frozen=True)
class BodyNode:
    """Execute one computation block of ``op`` over the current ranges."""

    op: OperatorSpec


@dataclasses.dataclass(frozen=True)
class LoopNode:
    """Iterate sub-blocks of one loop (tile size ``tile``) around a nest."""

    loop: str
    tile: int
    body: "Node"


@dataclasses.dataclass(frozen=True)
class SeqNode:
    """Run sub-nests in order (the loop-distribution point)."""

    parts: Tuple["Node", ...]


Node = Union[BodyNode, LoopNode, SeqNode]


@dataclasses.dataclass(frozen=True)
class LevelSpec:
    """One tiling level of the hierarchy (outermost first in a program)."""

    order: Tuple[str, ...]
    tiles: Mapping[str, int]


@dataclasses.dataclass(frozen=True)
class BlockProgram:
    """A fully lowered (possibly multi-level) block schedule.

    Attributes:
        chain: source chain.
        levels: tiling levels, outermost first.
        root: the distributed, hierarchically nested loop tree.
    """

    chain: OperatorChain
    levels: Tuple[LevelSpec, ...]
    root: Node

    @property
    def order(self) -> Tuple[str, ...]:
        """The innermost level's block order."""
        return self.levels[-1].order

    @property
    def tiles(self) -> Mapping[str, int]:
        """The innermost level's tile sizes."""
        return self.levels[-1].tiles

    def iterate_blocks(self) -> Iterator[Tuple[OperatorSpec, Ranges]]:
        """Yield ``(op, ranges)`` pairs in execution order.

        ``ranges`` maps every loop appearing in any level's order to the
        half-open iteration range of the current innermost block; loops not
        mentioned default to their full extent at interpretation time.

        This traversal (:func:`_walk`) is the single source of truth for
        execution order; the compiled schedule and ``block_count`` both
        derive from it.
        """
        extents = self.chain.loop_extents()
        yield from _walk(self.root, {}, extents)

    def block_count(self) -> int:
        """Total number of body executions.

        Derived from the compiled schedule (memoized), so the count and the
        materialized block tables can never drift apart.
        """
        from .schedule import compile_schedule

        return compile_schedule(self).n_blocks

    def describe(self) -> str:
        lines: List[str] = [
            f"block program for {self.chain.name}: "
            + " | ".join("/".join(level.order) for level in self.levels)
        ]
        _describe(self.root, lines, 1)
        return "\n".join(lines)


def _span(
    loop: str, ranges: Ranges, extents: Mapping[str, int]
) -> Range:
    return ranges.get(loop, (0, extents[loop]))


def _walk(
    node: Node, ranges: Ranges, extents: Mapping[str, int]
) -> Iterator[Tuple[OperatorSpec, Ranges]]:
    if isinstance(node, BodyNode):
        yield node.op, dict(ranges)
    elif isinstance(node, LoopNode):
        start, stop = _span(node.loop, ranges, extents)
        outer = ranges.get(node.loop)
        position = start
        while position < stop:
            ranges[node.loop] = (position, min(position + node.tile, stop))
            yield from _walk(node.body, ranges, extents)
            position += node.tile
        if outer is None:
            del ranges[node.loop]
        else:
            ranges[node.loop] = outer
    else:
        for part in node.parts:
            yield from _walk(part, ranges, extents)


def _describe(node: Node, lines: List[str], depth: int) -> None:
    pad = "  " * depth
    if isinstance(node, BodyNode):
        lines.append(f"{pad}{node.op.name} block")
    elif isinstance(node, LoopNode):
        lines.append(f"{pad}for {node.loop} step {node.tile}:")
        _describe(node.body, lines, depth + 1)
    else:
        for part in node.parts:
            _describe(part, lines, depth)


def _build_level(
    chain: OperatorChain,
    levels: Sequence[LevelSpec],
    level_idx: int,
    ops: Tuple[OperatorSpec, ...],
) -> Node:
    """Distribution tree for one level, recursing into the next inside."""
    level = levels[level_idx]
    op_pos = {op.name: i for i, op in enumerate(chain.ops)}

    def build(active: Tuple[OperatorSpec, ...], remaining: Tuple[str, ...]) -> Node:
        if not active:
            return SeqNode(())
        if not remaining:
            if level_idx + 1 < len(levels):
                return _build_level(chain, levels, level_idx + 1, active)
            return SeqNode(tuple(BodyNode(op) for op in active))
        loop, rest = remaining[0], remaining[1:]
        using = tuple(op for op in active if op.has_loop(loop))
        if not using:
            return build(active, rest)
        first_user = min(op_pos[op.name] for op in using)
        last_user = max(op_pos[op.name] for op in using)
        before = tuple(
            op
            for op in active
            if not op.has_loop(loop) and op_pos[op.name] < first_user
        )
        after = tuple(
            op
            for op in active
            if not op.has_loop(loop) and op_pos[op.name] > first_user
        )
        if any(op_pos[op.name] < last_user for op in after):
            raise ValueError(f"operator interleaving conflict on loop {loop!r}")
        tile = level.tiles.get(loop, 1)
        parts: List[Node] = []
        if before:
            parts.append(build(before, rest))
        parts.append(LoopNode(loop, tile, build(using, rest)))
        if after:
            parts.append(build(after, rest))
        if len(parts) == 1:
            return parts[0]
        return SeqNode(tuple(parts))

    return build(ops, tuple(level.order))


def lower_levels(
    chain: OperatorChain, levels: Sequence[LevelSpec]
) -> BlockProgram:
    """Lower a multi-level tiling (outermost level first) to a block nest.

    Raises:
        ValueError: if any level references unknown loops.
    """
    if not levels:
        raise ValueError("need at least one tiling level")
    extents = chain.loop_extents()
    for level in levels:
        unknown = set(level.order) - set(extents)
        if unknown:
            raise ValueError(f"order references unknown loops {sorted(unknown)}")
    root = _build_level(chain, tuple(levels), 0, chain.ops)
    return BlockProgram(chain=chain, levels=tuple(levels), root=root)


def lower_schedule(
    chain: OperatorChain,
    order: Sequence[str],
    tiles: Mapping[str, int],
) -> BlockProgram:
    """Lower a single-level (chain, order, tiles) triple."""
    return lower_levels(
        chain, [LevelSpec(order=tuple(order), tiles=dict(tiles))]
    )


def lower_plan(plan) -> BlockProgram:
    """Lower a :class:`FusionPlan`'s full memory hierarchy.

    The plan's schedules are innermost-first; the program nests them
    outermost-first, each level's sub-blocks clipped to its parent's range.
    """
    levels = [
        LevelSpec(order=sched.order, tiles=dict(sched.tiles))
        for sched in reversed(plan.levels)
    ]
    return lower_levels(plan.chain, levels)
