"""Numerical execution of block programs.

Two interpreters prove a fusion plan computes the right answer:

* :func:`execute_program` executes one numpy kernel per computation block —
  the faithful analogue of the generated fused kernel, including
  partial-reduction accumulation, sliding-window recomputation (halo'd
  producers run their reductions privately per spatial block, like the
  per-block scratch of a real fused kernel), and the paper's softmax trick
  (the row sum is accumulated on the fly and the division is swapped past
  the second GEMM, Section VI-B);
* :func:`execute_reference` runs the chain operator-by-operator with plain
  whole-tensor numpy calls.

:func:`execute_program` has two engines.  The default ``"compiled"`` engine
replays the program's :class:`~repro.codegen.schedule.CompiledSchedule`:
block slices are precomputed tables, per-block dispatch is a prebuilt
closure per operator, and batch GEMM blocks go through BLAS-backed
``matmul`` instead of ``einsum``.  The ``"legacy"`` engine re-walks the
loop tree and re-derives every region per block; it is kept as the
independent reference the equivalence suite compares against
(``tests/test_compiled_schedule.py``).

Tests assert the engines and the reference agree for every chain family and
for randomly chosen orders/tiles (the dependency-preservation property the
paper claims).

Convention: convolutions use trailing zero padding — the output grid is
``OH = H // stride`` and windows may read up to ``(OH-1)*stride + k - 1``,
past the declared input; arrays are padded with zeros on the high side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..ir.chain import OperatorChain
from ..ir.operator import OperatorSpec
from .program import BlockProgram, Ranges

Arrays = Dict[str, np.ndarray]


def virtual_shapes(chain: OperatorChain) -> Dict[str, Tuple[int, ...]]:
    """Padded working shape per tensor (covers every access, see module doc)."""
    extents = chain.loop_extents()
    shapes: Dict[str, Tuple[int, ...]] = {
        name: tuple(spec.shape) for name, spec in chain.tensors.items()
    }
    for op in chain.ops:
        for access in op.all_accesses():
            current = list(shapes[access.tensor])
            for axis, dim in enumerate(access.dims):
                needed = dim.extent(extents)
                current[axis] = max(current[axis], needed)
            shapes[access.tensor] = tuple(current)
    return shapes


def _allocate(chain: OperatorChain, inputs: Mapping[str, np.ndarray]) -> Arrays:
    shapes = virtual_shapes(chain)
    arrays: Arrays = {}
    for name, spec in chain.tensors.items():
        array = np.zeros(shapes[name], dtype=np.float64)
        if name in inputs:
            given = np.asarray(inputs[name], dtype=np.float64)
            if given.shape != spec.shape:
                raise ValueError(
                    f"input {name!r} has shape {given.shape}, "
                    f"expected {spec.shape}"
                )
            array[tuple(slice(0, s) for s in spec.shape)] = given
        arrays[name] = array
    missing = set(chain.input_tensors()) - set(inputs)
    if missing:
        raise ValueError(f"missing chain inputs: {sorted(missing)}")
    return arrays


def _op_ranges(op: OperatorSpec, block: Ranges) -> Ranges:
    """The block's iteration range for each of the op's loops."""
    ranges: Ranges = {}
    for loop in op.loops:
        ranges[loop.name] = block.get(loop.name, (0, loop.extent))
    return ranges


def _region_slices(
    op: OperatorSpec,
    tensor: str,
    block: Ranges,
    shape: Tuple[int, ...],
) -> Tuple[slice, ...]:
    access = op.access_of(tensor)
    region = access.region_from_ranges(_op_ranges(op, block), shape)
    return tuple(slice(lo, hi) for lo, hi in region)


def _has_halo_output(op: OperatorSpec) -> bool:
    """Whether the op's output regions can overlap across blocks."""
    return any(
        len(dim.terms) > 1 or any(coeff > 1 for _, coeff in dim.terms)
        for dim in op.output.dims
    )


def _gemm_block(
    op: OperatorSpec,
    arrays: Arrays,
    block: Ranges,
    *,
    full_reduction: bool = False,
) -> None:
    lhs_a, rhs_a = op.reads
    out_a = op.output
    if full_reduction:
        reductions = set(op.reduction_loop_names)
        block = {k: v for k, v in block.items() if k not in reductions}
    lhs = arrays[lhs_a.tensor][
        _region_slices(op, lhs_a.tensor, block, arrays[lhs_a.tensor].shape)
    ]
    rhs = arrays[rhs_a.tensor][
        _region_slices(op, rhs_a.tensor, block, arrays[rhs_a.tensor].shape)
    ]
    out_slices = _region_slices(
        op, out_a.tensor, block, arrays[out_a.tensor].shape
    )
    if op.tag == "gemm":
        update = lhs @ rhs
    elif op.attrs.get("transpose_b"):
        update = np.einsum("bmk,bnk->bmn", lhs, rhs)
    else:  # batch_gemm, row-major rhs
        update = np.einsum("bmk,bkn->bmn", lhs, rhs)
    if full_reduction:
        arrays[out_a.tensor][out_slices] = update
    else:
        arrays[out_a.tensor][out_slices] += update


def _conv_block(
    op: OperatorSpec,
    arrays: Arrays,
    block: Ranges,
    *,
    full_reduction: bool = False,
) -> None:
    data_a, weight_a = op.reads
    out_a = op.output
    stride = int(op.attrs["stride"])
    data = arrays[data_a.tensor]
    weight = arrays[weight_a.tensor]
    out = arrays[out_a.tensor]

    out_slices = _region_slices(op, out_a.tensor, block, out.shape)
    n_sl, oc_sl, y_sl, x_sl = out_slices
    # Reduction loop identity: builders declare conv reductions in
    # (ic, rh, rw) order and rewriting preserves declaration order.
    ic_name, rh_name, rw_name = op.reduction_loop_names
    if full_reduction:
        ic0, ic1 = 0, op.loop(ic_name).extent
        rh0, rh1 = 0, op.loop(rh_name).extent
        rw0, rw1 = 0, op.loop(rw_name).extent
    else:
        ranges = _op_ranges(op, block)
        ic0, ic1 = ranges[ic_name]
        rh0, rh1 = ranges[rh_name]
        rw0, rw1 = ranges[rw_name]

    if y_sl.start >= y_sl.stop or x_sl.start >= x_sl.stop:
        return
    acc = np.zeros(
        (
            n_sl.stop - n_sl.start,
            oc_sl.stop - oc_sl.start,
            y_sl.stop - y_sl.start,
            x_sl.stop - x_sl.start,
        ),
        dtype=np.float64,
    )
    for kh in range(rh0, rh1):
        for kw in range(rw0, rw1):
            patch = data[
                n_sl,
                ic0:ic1,
                y_sl.start * stride + kh : (y_sl.stop - 1) * stride + kh + 1 : stride,
                x_sl.start * stride + kw : (x_sl.stop - 1) * stride + kw + 1 : stride,
            ]
            w = weight[oc_sl, ic0:ic1, kh, kw]
            acc += np.einsum("nchw,oc->nohw", patch, w)
    if full_reduction:
        # Halo'd producer: every block recomputes its full region into
        # private scratch; overlapping assignments are idempotent.
        out[n_sl, oc_sl, y_sl, x_sl] = acc
    else:
        out[n_sl, oc_sl, y_sl, x_sl] += acc


def _depthwise_block(
    op: OperatorSpec,
    arrays: Arrays,
    block: Ranges,
    *,
    full_reduction: bool = False,
) -> None:
    data_a, weight_a = op.reads
    out_a = op.output
    stride = int(op.attrs["stride"])
    data = arrays[data_a.tensor]
    weight = arrays[weight_a.tensor]
    out = arrays[out_a.tensor]

    out_slices = _region_slices(op, out_a.tensor, block, out.shape)
    n_sl, c_sl, y_sl, x_sl = out_slices
    rh_name, rw_name = op.reduction_loop_names
    if full_reduction:
        rh0, rh1 = 0, op.loop(rh_name).extent
        rw0, rw1 = 0, op.loop(rw_name).extent
    else:
        ranges = _op_ranges(op, block)
        rh0, rh1 = ranges[rh_name]
        rw0, rw1 = ranges[rw_name]

    if y_sl.start >= y_sl.stop or x_sl.start >= x_sl.stop:
        return
    acc = np.zeros(
        (
            n_sl.stop - n_sl.start,
            c_sl.stop - c_sl.start,
            y_sl.stop - y_sl.start,
            x_sl.stop - x_sl.start,
        ),
        dtype=np.float64,
    )
    for kh in range(rh0, rh1):
        for kw in range(rw0, rw1):
            patch = data[
                n_sl,
                c_sl,
                y_sl.start * stride + kh : (y_sl.stop - 1) * stride + kh + 1 : stride,
                x_sl.start * stride + kw : (x_sl.stop - 1) * stride + kw + 1 : stride,
            ]
            w = weight[c_sl, kh, kw]
            acc += patch * w[None, :, None, None]
    if full_reduction:
        out[n_sl, c_sl, y_sl, x_sl] = acc
    else:
        out[n_sl, c_sl, y_sl, x_sl] += acc


def _elementwise_block(
    op: OperatorSpec,
    arrays: Arrays,
    block: Ranges,
    row_sums: Dict[str, np.ndarray],
) -> None:
    src_a = op.reads[0]
    out_a = op.output
    src_slices = _region_slices(op, src_a.tensor, block, arrays[src_a.tensor].shape)
    out_slices = _region_slices(op, out_a.tensor, block, arrays[out_a.tensor].shape)
    src = arrays[src_a.tensor][src_slices]
    if op.tag == "relu":
        arrays[out_a.tensor][out_slices] = np.maximum(src, 0.0)
    elif op.tag == "bias_add":
        arrays[out_a.tensor][out_slices] = src + 1.0
    elif op.tag == "gelu":
        arrays[out_a.tensor][out_slices] = (
            0.5 * src * (1.0 + np.tanh(0.7978845608 * (src + 0.044715 * src**3)))
        )
    elif op.tag == "softmax":
        # The fused softmax: exponentiate in place, accumulate the row sum,
        # and defer the division (it is swapped past the consumer GEMM).
        exp = np.exp(src)
        arrays[out_a.tensor][out_slices] = exp
        sums = row_sums[op.name]
        sums[out_slices[:-1]] += exp.sum(axis=-1)
    elif op.tag == "layer_norm":
        # The fused layer norm: copy the raw values and accumulate per-row
        # sum and sum of squares; normalization is deferred to kernel end
        # (see _apply_deferred_layer_norm), when every block of the row has
        # been accumulated.
        arrays[out_a.tensor][out_slices] = src
        acc = row_sums[op.name]
        acc[0][out_slices[:-1]] += src.sum(axis=-1)
        acc[1][out_slices[:-1]] += (src * src).sum(axis=-1)
    else:
        raise NotImplementedError(
            f"no block executor for memory-intensive op {op.tag!r}"
        )


def _prepare_state(
    chain: OperatorChain, arrays: Arrays
) -> Tuple[Dict[str, np.ndarray], Dict[str, bool]]:
    """Row-reduction accumulators and halo-output flags (both engines).

    ``row_sums[op]`` holds a per-row ``(rows...)`` exp-sum for softmax
    operators, and a ``(2, rows...)`` sum / sum-of-squares pair for
    layer_norm operators (accumulated across blocks, consumed by the
    deferred normalization at kernel end).
    """
    row_sums: Dict[str, np.ndarray] = {}
    halo_ops: Dict[str, bool] = {}
    for op in chain.ops:
        out_shape = arrays[op.output.tensor].shape
        if op.tag == "softmax":
            row_sums[op.name] = np.zeros(out_shape[:-1], dtype=np.float64)
        elif op.tag == "layer_norm":
            row_sums[op.name] = np.zeros(
                (2,) + out_shape[:-1], dtype=np.float64
            )
        halo_ops[op.name] = _has_halo_output(op)
        if halo_ops[op.name] and op.tag in ("softmax", "layer_norm"):
            raise NotImplementedError(
                f"{op.tag} with overlapping (halo) output regions would "
                "double-count row accumulators"
            )
    return row_sums, halo_ops


def _crop_outputs(chain: OperatorChain, arrays: Arrays) -> Arrays:
    outputs: Arrays = {}
    for name in chain.output_tensors():
        spec = chain.tensors[name]
        outputs[name] = arrays[name][tuple(slice(0, s) for s in spec.shape)]
    return outputs


def execute_program(
    program: BlockProgram,
    inputs: Mapping[str, np.ndarray],
    *,
    engine: str = "compiled",
) -> Arrays:
    """Run a block program numerically.

    Args:
        program: the lowered block schedule.
        inputs: chain input tensors.
        engine: ``"compiled"`` (default — replay the compiled schedule's
            precomputed block tables) or ``"legacy"`` (re-interpret the
            loop tree per block; the equivalence reference).

    Returns:
        the chain's output tensors, cropped to their declared shapes.

    Raises:
        NotImplementedError: for operators without a block executor, or for
            softmax chains whose deferred division cannot be placed (the
            softmax consumer's output must be a chain output).
        ValueError: for an unknown ``engine``.
    """
    if engine == "compiled":
        return _execute_program_compiled(program, inputs)
    if engine == "legacy":
        return _execute_program_legacy(program, inputs)
    raise ValueError(
        f"unknown executor engine {engine!r} (use 'compiled' or 'legacy')"
    )


def _execute_program_legacy(
    program: BlockProgram, inputs: Mapping[str, np.ndarray]
) -> Arrays:
    chain = program.chain
    arrays = _allocate(chain, inputs)
    row_sums, halo_ops = _prepare_state(chain, arrays)

    # Halo'd producers run their reductions privately per spatial block
    # (the per-block scratch of a real fused kernel); re-executions of the
    # same spatial block under split reduction loops are skipped.  The same
    # memoization also absorbs repeat visits at a coarser hierarchy level.
    done_halo_blocks: set = set()
    for op, block in program.iterate_blocks():
        halo = halo_ops[op.name]
        if halo:
            reductions = set(op.reduction_loop_names)
            key = (
                op.name,
                tuple(
                    (name, rng)
                    for name, rng in sorted(block.items())
                    if name not in reductions and op.has_loop(name)
                ),
            )
            if key in done_halo_blocks:
                continue
            done_halo_blocks.add(key)
        if op.tag in ("gemm", "batch_gemm"):
            _gemm_block(op, arrays, block, full_reduction=halo)
        elif op.tag == "conv2d":
            _conv_block(op, arrays, block, full_reduction=halo)
        elif op.tag == "depthwise_conv2d":
            _depthwise_block(op, arrays, block, full_reduction=halo)
        else:
            _elementwise_block(op, arrays, block, row_sums)

    _apply_deferred_softmax_division(chain, arrays, row_sums)
    _apply_deferred_layer_norm(chain, arrays, row_sums)
    return _crop_outputs(chain, arrays)


# ----------------------------------------------------------------------
# compiled engine
# ----------------------------------------------------------------------
def _effective_ranges(table, halo: bool) -> np.ndarray:
    """The table's iteration ranges, reductions widened for halo'd ops.

    A halo'd producer runs its reduction privately per spatial block
    (``full_reduction``), which the legacy engine expressed by dropping the
    reduction loops from the block dict — equivalent to their full extent.
    """
    if not halo:
        return table.ranges
    ranges = table.ranges.copy()
    index = table.loop_index
    for loop in table.op.loops:
        if loop.is_reduction:
            ranges[:, index[loop.name], 0] = 0
            ranges[:, index[loop.name], 1] = loop.extent
    return ranges


def _site_slices(schedule, table, site, ranges: np.ndarray):
    """Per-block slice tuples for one access under the given ranges."""
    from .schedule import compute_regions, slices_from_regions

    if ranges is table.ranges:
        return site.slice_tuples()
    regions = compute_regions(
        site.dims, table.loop_index, ranges, schedule.shapes[site.tensor]
    )
    return slices_from_regions(regions)


def _halo_skip_mask(table) -> List[bool]:
    """True for re-executions of an already-run spatial block."""
    reductions = set(table.op.reduction_loop_names)
    spatial = [
        i for i, name in enumerate(table.loop_names) if name not in reductions
    ]
    keys = table.ranges[:, spatial, :].reshape(table.blocks, -1).tolist()
    seen: set = set()
    skip: List[bool] = []
    for row in keys:
        key = tuple(row)
        skip.append(key in seen)
        seen.add(key)
    return skip


def _build_gemm_runner(schedule, table, arrays: Arrays, halo: bool):
    op = table.op
    ranges = _effective_ranges(table, halo)
    lhs_site, rhs_site = table.read_sites()
    out_site = table.write_sites()[0]
    lhs_sl = _site_slices(schedule, table, lhs_site, ranges)
    rhs_sl = _site_slices(schedule, table, rhs_site, ranges)
    out_sl = _site_slices(schedule, table, out_site, ranges)
    lhs_arr = arrays[lhs_site.tensor]
    rhs_arr = arrays[rhs_site.tensor]
    out_arr = arrays[out_site.tensor]
    # ``matmul`` hits BLAS where ``einsum`` does not; the contraction is
    # identical (bmk,bkn->bmn / bmk,bnk->bmn), so results stay allclose.
    transpose_b = op.tag == "batch_gemm" and bool(op.attrs.get("transpose_b"))

    if halo:
        def run(row: int) -> None:
            rhs = rhs_arr[rhs_sl[row]]
            if transpose_b:
                rhs = rhs.swapaxes(-1, -2)
            out_arr[out_sl[row]] = np.matmul(lhs_arr[lhs_sl[row]], rhs)
    else:
        def run(row: int) -> None:
            rhs = rhs_arr[rhs_sl[row]]
            if transpose_b:
                rhs = rhs.swapaxes(-1, -2)
            out_arr[out_sl[row]] += np.matmul(lhs_arr[lhs_sl[row]], rhs)

    return run


def _build_conv_runner(schedule, table, arrays: Arrays, halo: bool):
    op = table.op
    depthwise = op.tag == "depthwise_conv2d"
    stride = int(op.attrs["stride"])
    ranges = _effective_ranges(table, halo)
    data_site, weight_site = table.read_sites()
    out_site = table.write_sites()[0]
    out_sl = _site_slices(schedule, table, out_site, ranges)
    data = arrays[data_site.tensor]
    weight = arrays[weight_site.tensor]
    out = arrays[out_site.tensor]
    if depthwise:
        rh_name, rw_name = op.reduction_loop_names
        ic_bounds = None
    else:
        ic_name, rh_name, rw_name = op.reduction_loop_names
        ic_bounds = (
            ((0, op.loop(ic_name).extent),) * table.blocks
            if halo
            else list(zip(*table.loop_bounds(ic_name)))
        )
    rh_bounds = (
        ((0, op.loop(rh_name).extent),) * table.blocks
        if halo
        else list(zip(*table.loop_bounds(rh_name)))
    )
    rw_bounds = (
        ((0, op.loop(rw_name).extent),) * table.blocks
        if halo
        else list(zip(*table.loop_bounds(rw_name)))
    )

    def run(row: int) -> None:
        n_sl, c_sl, y_sl, x_sl = out_sl[row]
        if y_sl.start >= y_sl.stop or x_sl.start >= x_sl.stop:
            return
        rh0, rh1 = rh_bounds[row]
        rw0, rw1 = rw_bounds[row]
        acc = np.zeros(
            (
                n_sl.stop - n_sl.start,
                c_sl.stop - c_sl.start,
                y_sl.stop - y_sl.start,
                x_sl.stop - x_sl.start,
            ),
            dtype=np.float64,
        )
        if depthwise:
            for kh in range(rh0, rh1):
                for kw in range(rw0, rw1):
                    patch = data[
                        n_sl,
                        c_sl,
                        y_sl.start * stride + kh
                        : (y_sl.stop - 1) * stride + kh + 1 : stride,
                        x_sl.start * stride + kw
                        : (x_sl.stop - 1) * stride + kw + 1 : stride,
                    ]
                    acc += patch * weight[c_sl, kh, kw][None, :, None, None]
        else:
            ic0, ic1 = ic_bounds[row]
            for kh in range(rh0, rh1):
                for kw in range(rw0, rw1):
                    patch = data[
                        n_sl,
                        ic0:ic1,
                        y_sl.start * stride + kh
                        : (y_sl.stop - 1) * stride + kh + 1 : stride,
                        x_sl.start * stride + kw
                        : (x_sl.stop - 1) * stride + kw + 1 : stride,
                    ]
                    w = weight[c_sl, ic0:ic1, kh, kw]
                    acc += np.einsum("nchw,oc->nohw", patch, w)
        if halo:
            out[n_sl, c_sl, y_sl, x_sl] = acc
        else:
            out[n_sl, c_sl, y_sl, x_sl] += acc

    return run


def _build_elementwise_runner(
    schedule, table, arrays: Arrays, row_sums: Dict[str, np.ndarray]
):
    op = table.op
    src_site = table.read_sites()[0]
    out_site = table.write_sites()[0]
    src_sl = src_site.slice_tuples()
    out_sl = out_site.slice_tuples()
    src_arr = arrays[src_site.tensor]
    out_arr = arrays[out_site.tensor]

    if op.tag == "relu":
        def run(row: int) -> None:
            out_arr[out_sl[row]] = np.maximum(src_arr[src_sl[row]], 0.0)
    elif op.tag == "bias_add":
        def run(row: int) -> None:
            out_arr[out_sl[row]] = src_arr[src_sl[row]] + 1.0
    elif op.tag == "gelu":
        def run(row: int) -> None:
            src = src_arr[src_sl[row]]
            out_arr[out_sl[row]] = (
                0.5
                * src
                * (1.0 + np.tanh(0.7978845608 * (src + 0.044715 * src**3)))
            )
    elif op.tag == "softmax":
        sums = row_sums[op.name]
        sum_sl = [sl[:-1] for sl in out_sl]

        def run(row: int) -> None:
            exp = np.exp(src_arr[src_sl[row]])
            out_arr[out_sl[row]] = exp
            sums[sum_sl[row]] += exp.sum(axis=-1)
    elif op.tag == "layer_norm":
        acc = row_sums[op.name]
        sum_sl = [sl[:-1] for sl in out_sl]

        def run(row: int) -> None:
            src = src_arr[src_sl[row]]
            out_arr[out_sl[row]] = src
            acc[0][sum_sl[row]] += src.sum(axis=-1)
            acc[1][sum_sl[row]] += (src * src).sum(axis=-1)
    else:
        raise NotImplementedError(
            f"no block executor for memory-intensive op {op.tag!r}"
        )
    return run


def _execute_program_compiled(
    program: BlockProgram, inputs: Mapping[str, np.ndarray]
) -> Arrays:
    from .schedule import compile_schedule

    chain = program.chain
    schedule = compile_schedule(program)
    arrays = _allocate(chain, inputs)
    row_sums, halo_ops = _prepare_state(chain, arrays)

    runners = []
    skips: List[Optional[List[bool]]] = []
    for table in schedule.tables:
        op = table.op
        halo = halo_ops[op.name]
        if op.tag in ("gemm", "batch_gemm"):
            runner = _build_gemm_runner(schedule, table, arrays, halo)
        elif op.tag in ("conv2d", "depthwise_conv2d"):
            runner = _build_conv_runner(schedule, table, arrays, halo)
        else:
            runner = _build_elementwise_runner(
                schedule, table, arrays, row_sums
            )
        runners.append(runner)
        skips.append(_halo_skip_mask(table) if halo else None)

    for index, row in zip(
        schedule.block_table.tolist(), schedule.block_row.tolist()
    ):
        skip = skips[index]
        if skip is not None and skip[row]:
            continue
        runners[index](row)

    _apply_deferred_softmax_division(chain, arrays, row_sums)
    _apply_deferred_layer_norm(chain, arrays, row_sums)
    return _crop_outputs(chain, arrays)


def _apply_deferred_softmax_division(
    chain: OperatorChain,
    arrays: Arrays,
    row_sums: Mapping[str, np.ndarray],
) -> None:
    for op in chain.ops:
        if op.tag != "softmax":
            continue
        softmax_out = op.output.tensor
        consumers = chain.consumers_of(softmax_out)
        if not consumers:
            # Standalone softmax: divide its own output.
            arrays[softmax_out] /= np.maximum(
                row_sums[op.name][..., None], 1e-300
            )
            continue
        if len(consumers) != 1:
            raise NotImplementedError(
                "softmax with multiple consumers is not supported"
            )
        consumer = consumers[0]
        target = consumer.output.tensor
        if target not in chain.output_tensors():
            raise NotImplementedError(
                "deferred softmax division needs the consumer's output to "
                "be a chain output"
            )
        if consumer.tag not in ("gemm", "batch_gemm"):
            raise NotImplementedError(
                "deferred softmax division can only swap past a linear "
                f"(gemm/batch_gemm) consumer, not {consumer.tag!r}"
            )
        # Broadcast the row sums onto the consumer output: match loop names
        # of the sum's dims (the softmax output dims minus the reduced one)
        # against the consumer output dims.
        sum_loops = [dim.loops[0] for dim in op.output.dims[:-1]]
        target_dims = consumer.access_of(target).dims
        index = []
        for dim in target_dims:
            loops = dim.loops
            if len(loops) == 1 and loops[0] in sum_loops:
                index.append(slice(None))
            else:
                index.append(None)
        sums = row_sums[op.name]
        arrays[target] /= np.maximum(sums[tuple(index)], 1e-300)


def _apply_deferred_layer_norm(
    chain: OperatorChain,
    arrays: Arrays,
    row_sums: Mapping[str, np.ndarray],
) -> None:
    """Finalize stitched layer_norm ops from their deferred accumulators.

    The block engines wrote the raw source values and accumulated per-row
    sum / sum-of-squares; once every block has run, mean and variance are
    exact and the normalization is applied in one vector pass.  A
    layer_norm stitched mid-chain would hand un-normalized values to its
    consumers, so it must be the chain's last reader of its output.
    """
    for op in chain.ops:
        if op.tag != "layer_norm":
            continue
        out_name = op.output.tensor
        if chain.consumers_of(out_name):
            raise NotImplementedError(
                "deferred layer_norm needs its output to be a chain "
                "output with no in-chain consumers"
            )
        n = chain.tensors[out_name].shape[-1]
        acc = row_sums[op.name]
        mean = acc[0] / n
        var = np.maximum(acc[1] / n - mean * mean, 0.0)
        arrays[out_name] = (arrays[out_name] - mean[..., None]) / np.sqrt(
            var[..., None] + 1e-5
        )


def execute_plan(plan, inputs: Mapping[str, np.ndarray]) -> Arrays:
    """Execute a fusion plan through its full tiling hierarchy."""
    from .program import lower_plan

    program = lower_plan(plan)
    return execute_program(program, inputs)


# ----------------------------------------------------------------------
# whole-operator reference
# ----------------------------------------------------------------------
def execute_reference(
    chain: OperatorChain, inputs: Mapping[str, np.ndarray]
) -> Arrays:
    """Run the chain operator-by-operator with whole-tensor numpy calls."""
    arrays = _allocate(chain, inputs)
    full_block: Ranges = {}
    for op in chain.ops:
        if op.tag in ("gemm", "batch_gemm"):
            _gemm_block(op, arrays, full_block)
        elif op.tag == "conv2d":
            _conv_block(op, arrays, full_block)
        elif op.tag == "depthwise_conv2d":
            _depthwise_block(op, arrays, full_block)
        elif op.tag == "softmax":
            src = arrays[op.reads[0].tensor]
            exp = np.exp(src)
            arrays[op.output.tensor] = exp / exp.sum(axis=-1, keepdims=True)
        elif op.tag == "relu":
            arrays[op.output.tensor] = np.maximum(
                arrays[op.reads[0].tensor], 0.0
            )
        elif op.tag == "bias_add":
            arrays[op.output.tensor] = arrays[op.reads[0].tensor] + 1.0
        elif op.tag == "gelu":
            src = arrays[op.reads[0].tensor]
            arrays[op.output.tensor] = 0.5 * src * (
                1.0 + np.tanh(0.7978845608 * (src + 0.044715 * src**3))
            )
        elif op.tag == "layer_norm":
            src = arrays[op.reads[0].tensor]
            mean = src.mean(axis=-1, keepdims=True)
            var = src.var(axis=-1, keepdims=True)
            arrays[op.output.tensor] = (src - mean) / np.sqrt(var + 1e-5)
        else:
            raise NotImplementedError(f"no reference for {op.tag!r}")
    outputs: Arrays = {}
    for name in chain.output_tensors():
        spec = chain.tensors[name]
        outputs[name] = arrays[name][tuple(slice(0, s) for s in spec.shape)]
    return outputs


def random_inputs(
    chain: OperatorChain, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every chain input tensor."""
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for name in chain.input_tensors():
        spec = chain.tensors[name]
        inputs[name] = rng.standard_normal(spec.shape) * 0.1
    return inputs
