"""Fused kernel artifacts.

A :class:`FusedKernel` is what ``repro.compile_chain`` hands back: a callable
object bundling the fusion plan, the lowered block program, the selected
micro kernel, and the generated source text.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.plan import FusionPlan
from ..microkernel.base import LoweredMicroKernel
from .executor import execute_program
from .program import BlockProgram, lower_plan
from .source import emit_source


@dataclasses.dataclass(frozen=True)
class FusedKernel:
    """An executable fused kernel for one operator chain.

    Attributes:
        plan: the inter-block optimization result.
        program: the lowered block nest (outermost-level schedule).
        micro_kernel: the backend micro kernel implementation, if the
            target's intra-block pass ran.
    """

    plan: FusionPlan
    program: BlockProgram
    micro_kernel: Optional[LoweredMicroKernel] = None

    @property
    def chain(self):
        return self.plan.chain

    @property
    def source(self) -> str:
        """Generated pseudo-C for inspection."""
        return emit_source(self.plan, self.program, self.micro_kernel)

    @property
    def predicted_time(self) -> float:
        return self.plan.predicted_time

    def __call__(
        self, inputs: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Execute numerically; returns the chain's output tensors."""
        return execute_program(self.program, inputs)


def build_kernel(
    plan: FusionPlan,
    micro_kernel: Optional[LoweredMicroKernel] = None,
) -> FusedKernel:
    """Lower a plan's full tiling hierarchy and wrap it as a kernel."""
    program = lower_plan(plan)
    return FusedKernel(plan=plan, program=program, micro_kernel=micro_kernel)
