"""Compiled block schedules: flatten a program once, replay it many times.

Every consumer of a :class:`BlockProgram` — the numpy executor, the region
tracer, the hierarchy simulators — used to re-walk the loop tree and
re-derive each block's iteration ranges and tensor regions in pure Python.
A :class:`CompiledSchedule` does that work exactly once: the tree is
flattened into numpy-backed *per-operator block tables* holding, per block,

* the half-open iteration range of every operator loop,
* the clamped element region of every tensor access (vectorized over all
  blocks of the operator at once from the affine access expressions),
* the region byte count (zero for empty edge regions),

plus the global execution order (``block_table`` / ``block_row``).  Nothing
is approximated: the tables are produced by the same traversal
(:meth:`BlockProgram.iterate_blocks`) and the same clamping rules
(:meth:`TensorAccess.region_from_ranges`) as the interpreted paths, so every
consumer reads identical ranges, regions and byte counts — just without
recomputing them per block, per consumer, per run.

Schedules are memoized two ways: per program *instance* (repeated calls on
one object are free) and per program *content digest* in a process-global
LRU — re-lowering the same plan (``lower_plan`` builds a fresh tree each
call, e.g. once per simulated timing query in ``compile_network``) hits the
digest and replays the already-materialized tables.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.access import AffineExpr
from ..ir.operator import OperatorSpec
from .program import BlockProgram


def compute_regions(
    dims: Sequence[AffineExpr],
    loop_index: Mapping[str, int],
    ranges: np.ndarray,
    shape: Sequence[int],
) -> np.ndarray:
    """Clamped element regions of one access for every block at once.

    Vectorizes :meth:`TensorAccess.region_from_ranges` over a ``(B, L, 2)``
    iteration-range table: for a dimension ``sum coeff * loop + offset`` the
    touched span is ``[offset + sum coeff * start,
    offset + sum coeff * (stop - 1) + 1)``, clamped to the tensor shape.

    Returns:
        int64 array of shape ``(B, ndim, 2)`` of half-open element ranges.
    """
    blocks = ranges.shape[0]
    out = np.empty((blocks, len(dims), 2), dtype=np.int64)
    for axis, (dim, size) in enumerate(zip(dims, shape)):
        lo = np.full(blocks, dim.offset, dtype=np.int64)
        hi = np.full(blocks, dim.offset, dtype=np.int64)
        for name, coeff in dim.terms:
            column = ranges[:, loop_index[name], :]
            lo += coeff * column[:, 0]
            hi += coeff * (column[:, 1] - 1)
        hi += 1
        np.minimum(lo, size, out=out[:, axis, 0])
        np.minimum(hi, size, out=out[:, axis, 1])
    return out


@dataclasses.dataclass
class AccessSite:
    """Per-block data for one (operator, tensor access) pair.

    Attributes:
        tensor: accessed tensor name.
        write: True for the operator's output access.
        dims: the access's affine index expressions (one per tensor dim).
        regions: ``(B, ndim, 2)`` clamped element ranges, one row per block.
        nbytes: ``(B,)`` region sizes in bytes (0 for empty edge regions).
    """

    tensor: str
    write: bool
    dims: Tuple[AffineExpr, ...]
    regions: np.ndarray
    nbytes: np.ndarray
    _region_tuples: Optional[List[Tuple[Tuple[int, int], ...]]] = None
    _slices: Optional[List[Tuple[slice, ...]]] = None

    def region_tuples(self) -> List[Tuple[Tuple[int, int], ...]]:
        """Per-block region keys as nested tuples (cached)."""
        if self._region_tuples is None:
            self._region_tuples = [
                tuple((lo, hi) for lo, hi in row)
                for row in self.regions.tolist()
            ]
        return self._region_tuples

    def slice_tuples(self) -> List[Tuple[slice, ...]]:
        """Per-block numpy basic-index tuples (cached)."""
        if self._slices is None:
            self._slices = slices_from_regions(self.regions)
        return self._slices


def slices_from_regions(regions: np.ndarray) -> List[Tuple[slice, ...]]:
    """Turn a ``(B, ndim, 2)`` region table into per-block slice tuples."""
    return [
        tuple(slice(lo, hi) for lo, hi in row) for row in regions.tolist()
    ]


@dataclasses.dataclass
class OpBlockTable:
    """All blocks of one operator, in that operator's execution order.

    Attributes:
        op: the operator.
        loop_names: ``op.loop_names`` — the column order of ``ranges``.
        ranges: ``(B, len(loop_names), 2)`` half-open iteration ranges.
            Loops the block nest never split carry their full extent, the
            same default the interpreted paths applied per block.
        sites: one :class:`AccessSite` per access, reads first then writes.
        positions: ``(B,)`` global execution positions of this op's blocks.
    """

    op: OperatorSpec
    loop_names: Tuple[str, ...]
    ranges: np.ndarray
    sites: Tuple[AccessSite, ...]
    positions: np.ndarray

    @property
    def blocks(self) -> int:
        return int(self.ranges.shape[0])

    @property
    def loop_index(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.loop_names)}

    def loop_bounds(self, name: str) -> Tuple[List[int], List[int]]:
        """Per-block (start, stop) lists of one loop (for scalar consumers)."""
        column = self.ranges[:, self.loop_index[name], :]
        return column[:, 0].tolist(), column[:, 1].tolist()

    def read_sites(self) -> Tuple[AccessSite, ...]:
        return tuple(s for s in self.sites if not s.write)

    def write_sites(self) -> Tuple[AccessSite, ...]:
        return tuple(s for s in self.sites if s.write)


class CompiledSchedule:
    """A flattened block program: numpy tables plus the execution order.

    Attributes:
        program: the source block program.
        chain: the program's chain.
        shapes: virtual (padded) shape per tensor — the clamp bounds.
        tables: one :class:`OpBlockTable` per operator, in chain order.
        block_table: ``(n_blocks,)`` table index of each global block.
        block_row: ``(n_blocks,)`` row within that table.
        digest: content hash of (chain, levels) — the memoization key.
        cache: scratch space for derived artifacts (materialized traces,
            line streams); dropped with the schedule itself on LRU eviction.
    """

    def __init__(
        self,
        program: BlockProgram,
        shapes: Dict[str, Tuple[int, ...]],
        tables: Tuple[OpBlockTable, ...],
        block_table: np.ndarray,
        block_row: np.ndarray,
        digest: str,
    ) -> None:
        self.program = program
        self.chain = program.chain
        self.shapes = shapes
        self.tables = tables
        self.block_table = block_table
        self.block_row = block_row
        self.digest = digest
        self.cache: Dict = {}

    @property
    def n_blocks(self) -> int:
        return int(self.block_table.shape[0])

    def table_for(self, op_name: str) -> OpBlockTable:
        for table in self.tables:
            if table.op.name == op_name:
                return table
        raise KeyError(f"schedule has no blocks for operator {op_name!r}")

    def describe(self) -> str:
        lines = [
            f"compiled schedule for {self.chain.name}: "
            f"{self.n_blocks} blocks, {len(self.tables)} op tables"
        ]
        for table in self.tables:
            lines.append(
                f"  {table.op.name}: {table.blocks} blocks, "
                f"{len(table.sites)} access sites"
            )
        return "\n".join(lines)


def program_digest(program: BlockProgram) -> str:
    """Stable content hash of a block program (chain IR + tiling levels).

    Two independently lowered programs of the same (chain, levels) share a
    digest, which is what lets the schedule memo collapse repeated
    ``lower_plan`` calls.
    """
    cached = program.__dict__.get("_digest")
    if cached is not None:
        return cached
    # Imported lazily: repro.runtime packages import repro.codegen at
    # module load; a top-level import here would cycle.
    from ..runtime.serialization import chain_to_dict

    payload = json.dumps(
        {
            "chain": chain_to_dict(program.chain),
            "levels": [
                {
                    "order": list(level.order),
                    "tiles": {k: level.tiles[k] for k in sorted(level.tiles)},
                }
                for level in program.levels
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    object.__setattr__(program, "_digest", digest)
    return digest


#: Process-global digest-keyed schedule memo (LRU).
_MEMO: "OrderedDict[str, CompiledSchedule]" = OrderedDict()
_MEMO_LOCK = threading.Lock()
_MEMO_MAX = 32
_MEMO_HITS = 0
_MEMO_MISSES = 0


def schedule_memo_stats() -> Dict[str, int]:
    """Hit/miss counters of the digest memo (observability for benches)."""
    with _MEMO_LOCK:
        return {
            "entries": len(_MEMO),
            "hits": _MEMO_HITS,
            "misses": _MEMO_MISSES,
        }


def clear_schedule_memo() -> None:
    """Drop all memoized schedules (cold-start benchmarking)."""
    global _MEMO_HITS, _MEMO_MISSES
    with _MEMO_LOCK:
        _MEMO.clear()
        _MEMO_HITS = 0
        _MEMO_MISSES = 0


def compile_schedule(program: BlockProgram) -> CompiledSchedule:
    """Flatten a block program into its compiled schedule (memoized).

    The instance cache makes repeated calls on the same program object
    free; the digest memo makes re-lowering the same (chain, levels) pair
    nearly free.
    """
    global _MEMO_HITS, _MEMO_MISSES
    cached = program.__dict__.get("_compiled_schedule")
    if cached is not None:
        return cached
    digest = program_digest(program)
    with _MEMO_LOCK:
        schedule = _MEMO.get(digest)
        if schedule is not None:
            _MEMO.move_to_end(digest)
            _MEMO_HITS += 1
    if schedule is None:
        schedule = _build_schedule(program, digest)
        with _MEMO_LOCK:
            _MEMO_MISSES += 1
            _MEMO[digest] = schedule
            while len(_MEMO) > _MEMO_MAX:
                _MEMO.popitem(last=False)
    object.__setattr__(program, "_compiled_schedule", schedule)
    return schedule


def _build_schedule(program: BlockProgram, digest: str) -> CompiledSchedule:
    from .executor import virtual_shapes

    chain = program.chain
    shapes = virtual_shapes(chain)
    extents = chain.loop_extents()

    op_order = [op.name for op in chain.ops]
    op_slot = {name: i for i, name in enumerate(op_order)}
    rows: List[List[Tuple[Tuple[int, int], ...]]] = [[] for _ in op_order]
    positions: List[List[int]] = [[] for _ in op_order]
    stream: List[Tuple[int, int]] = []
    loop_lists = {
        op.name: tuple((l.name, (0, l.extent)) for l in op.loops)
        for op in chain.ops
    }
    # The one traversal: everything below derives from iterate_blocks.
    for position, (op, block) in enumerate(program.iterate_blocks()):
        slot = op_slot[op.name]
        get = block.get
        rows[slot].append(
            tuple(get(name, full) for name, full in loop_lists[op.name])
        )
        stream.append((slot, len(positions[slot])))
        positions[slot].append(position)

    tables: List[OpBlockTable] = []
    table_of_slot: Dict[int, int] = {}
    for slot, op in enumerate(chain.ops):
        if not rows[slot]:
            continue
        ranges = np.asarray(rows[slot], dtype=np.int64)
        loop_names = op.loop_names
        loop_index = {name: i for i, name in enumerate(loop_names)}
        sites: List[AccessSite] = []
        for access, is_write in [(a, False) for a in op.reads] + [
            (a, True) for a in op.writes
        ]:
            shape = shapes[access.tensor]
            regions = compute_regions(access.dims, loop_index, ranges, shape)
            widths = regions[:, :, 1] - regions[:, :, 0]
            elem_bytes = chain.tensors[access.tensor].dtype.nbytes
            nonempty = (widths > 0).all(axis=1)
            nbytes = np.where(
                nonempty,
                np.prod(np.maximum(widths, 1), axis=1) * elem_bytes,
                0,
            ).astype(np.int64)
            sites.append(
                AccessSite(
                    tensor=access.tensor,
                    write=is_write,
                    dims=access.dims,
                    regions=regions,
                    nbytes=nbytes,
                )
            )
        table_of_slot[slot] = len(tables)
        tables.append(
            OpBlockTable(
                op=op,
                loop_names=loop_names,
                ranges=ranges,
                sites=tuple(sites),
                positions=np.asarray(positions[slot], dtype=np.int64),
            )
        )

    block_table = np.asarray(
        [table_of_slot[slot] for slot, _ in stream], dtype=np.int32
    )
    block_row = np.asarray([row for _, row in stream], dtype=np.int32)
    return CompiledSchedule(
        program=program,
        shapes=shapes,
        tables=tuple(tables),
        block_table=block_table,
        block_row=block_row,
        digest=digest,
    )
