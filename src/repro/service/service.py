"""The compilation service: cached, coalesced, failure-tolerant compiles.

:class:`CompileService` wraps :func:`repro.compile_chain` in the serving
layer a deployment needs:

* **cache** — results are stored under a content hash of the request
  (:func:`repro.service.cache_key`) in a two-tier :class:`PlanCache`; a hit
  skips the analytical optimizer entirely and replays only the cheap,
  deterministic kernel lowering;
* **coalescing** — concurrent requests for the same key share one
  compilation: the first caller becomes the leader, later callers block on
  its result instead of burning duplicate optimizer runs;
* **degradation** — an optimizer error is retried once, then degraded to
  the per-operator *unfused* plan (each operator planned as its own
  kernel), so a single pathological chain yields a slower-but-correct
  result instead of an exception;
* **warm starting** — a miss whose *shape* is new but whose chain
  structure matches a cached plan (see :class:`repro.service.ShapeIndex`)
  seeds the optimizer with the neighbor's winning loop order and tile
  sizes; the search still proves optimality, so the plan is byte-identical
  to a cold compile, just found faster.  Replies label the path taken via
  ``warm_start`` (``"exact"``/``"near"``/``"cold"``);
* **metrics** — hits, misses, evictions, coalesced requests, failures and
  compile-latency percentiles, via :meth:`CompileService.stats`.

Fallback results are deliberately **not** cached: the failure may be
transient, and caching the degraded plan would pin the slow path forever.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.fusion import FusionDecision, plan_unfused
from ..core.optimizer import ChimeraConfig
from ..core.search import search_stats_snapshot
from ..core.warmstart import ChainHints, hints_from_entry
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..runtime import pipeline
from ..runtime.pipeline import CompileResult, kernels_for_decision
from ..runtime.serialization import (
    FORMAT_VERSION,
    PlanFormatError,
    plan_from_dict,
    plan_to_dict,
)
from .cache import PathLike, PlanCache, ShardedPlanCache, open_cache
from .keys import cache_key, extent_vector, structure_key
from .metrics import ServiceMetrics
from .shapes import INDEX_FILENAME, ShapeIndex

#: ``ServedCompile.source`` values, in the order a request tries them.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_COALESCED = "coalesced"
SOURCE_COMPILED = "compiled"
SOURCE_FALLBACK = "fallback"

#: ``warm_start`` labels: how much cached knowledge served the request.
WARM_EXACT = "exact"  # cache hit — the plan itself was reused
WARM_NEAR = "near"  # fresh compile warm-started from a shape neighbor
WARM_COLD = "cold"  # fresh compile with no usable neighbor

#: Environment knob: set to ``0``/``false``/``off`` to disable near-miss
#: warm starting (the shape index is still *recorded*, so re-enabling the
#: knob picks up history).  Compiled plans are byte-identical either way —
#: this exists for A/B latency measurement and as a belt-and-suspenders
#: escape hatch.
ENV_WARM_START = "REPRO_WARM_START"

#: Nearest neighbors probed per miss; past the first few, entries are
#: either evicted (skipped anyway) or too far to seed a useful start.
NEIGHBOR_PROBES = 4


def warm_start_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the warm-start knob (explicit override beats environment)."""
    if override is not None:
        return override
    raw = os.environ.get(ENV_WARM_START)
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


class CompilationFailure(RuntimeError):
    """Compilation failed even after retry and the unfused fallback."""


def decode_plan_entry(
    entry: Dict[str, Any], hardware: HardwareSpec
) -> CompileResult:
    """Rebuild a :class:`CompileResult` from a cache entry — no optimizer.

    Replays only the cheap, deterministic back half of the pipeline
    (plan reconstruction + micro-kernel attachment + codegen).  Shared by
    the in-process warm path and remote clients decoding wire entries.

    Raises:
        PlanFormatError: when the entry's plans fail to decode.
    """
    fused_data = entry["fused_plan"]
    decision = FusionDecision(
        fused_plan=(
            None if fused_data is None else plan_from_dict(fused_data)
        ),
        unfused_plans=tuple(
            plan_from_dict(data) for data in entry["unfused_plans"]
        ),
        use_fusion=entry["use_fusion"],
    )
    return CompileResult(
        kernels=kernels_for_decision(decision, hardware),
        decision=decision,
    )


@dataclasses.dataclass(frozen=True)
class CompileRequest:
    """One (chain, hardware) compilation unit submitted to the service."""

    chain: OperatorChain
    hardware: HardwareSpec
    config: Optional[ChimeraConfig] = None
    force_fusion: Optional[bool] = None

    @property
    def key(self) -> str:
        return cache_key(
            self.chain, self.hardware, self.config, self.force_fusion
        )

    def describe(self) -> str:
        return f"{self.chain.name} on {self.hardware.name}"


@dataclasses.dataclass(frozen=True)
class ServedCompile:
    """Outcome of one request through the service (never an exception).

    Attributes:
        request: the originating request.
        key: its content-addressed cache key.
        result: the compile result, or ``None`` when even the fallback
            failed.
        source: where the result came from — ``"memory"``/``"disk"`` cache
            tiers, ``"coalesced"`` (shared an in-flight compile),
            ``"compiled"`` (fresh optimizer run), or ``"fallback"``
            (degraded unfused plan after optimizer errors).
        seconds: wall-clock service time for this request.
        error: the final error message when ``result`` is ``None``.
        warm_start: ``"exact"`` for cache hits, ``"near"`` for a fresh
            compile warm-started from a shape neighbor, ``"cold"``
            otherwise.  Coalesced requests inherit the leader's label.
    """

    request: CompileRequest
    key: str
    result: Optional[CompileResult]
    source: str
    seconds: float
    error: Optional[str] = None
    warm_start: str = WARM_COLD

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def from_cache(self) -> bool:
        return self.source in (SOURCE_MEMORY, SOURCE_DISK)


@dataclasses.dataclass(frozen=True)
class RawServed:
    """Outcome of one request through :meth:`CompileService.serve_raw`.

    Carries the JSON-ready cache *entry* instead of a decoded
    :class:`CompileResult` — the remote-serving hot path, where the entry
    goes straight back onto the wire and kernel lowering happens (if at
    all) on the client.
    """

    key: str
    entry: Optional[Dict[str, Any]]
    source: str
    seconds: float
    error: Optional[str] = None
    warm_start: str = WARM_COLD

    @property
    def ok(self) -> bool:
        return self.entry is not None

    @property
    def from_cache(self) -> bool:
        return self.source in (SOURCE_MEMORY, SOURCE_DISK)


class _InFlight:
    """Rendezvous slot for requests coalesced onto one leader compile."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        # Label of the leader's compile; followers report the same one,
        # since they share the result it produced.
        self.warm_start: str = WARM_COLD


RequestLike = Union[CompileRequest, Tuple[OperatorChain, HardwareSpec]]


def as_request(request: RequestLike) -> CompileRequest:
    """Accept ``CompileRequest`` or a bare ``(chain, hardware)`` pair."""
    if isinstance(request, CompileRequest):
        return request
    chain, hardware = request
    return CompileRequest(chain=chain, hardware=hardware)


class CompileService:
    """A long-lived, thread-safe compilation front end.

    Args:
        cache_dir: directory for the persistent tier (``None`` keeps the
            cache memory-only).
        memory_capacity: LRU front-tier size, in entries.
        retries: extra optimizer attempts after the first failure.
        fallback: degrade to the unfused per-operator plan once retries are
            exhausted (otherwise the error is reported).
        shards: number of independent cache shards (>1 builds a
            :class:`ShardedPlanCache`; lookups on different shards never
            contend on a lock).
        max_memory_bytes: optional byte-accounted bound on the memory tier
            (total across shards); whichever of the entry and byte bounds
            trips first evicts.
        metrics_window: sliding-window size for latency percentiles (see
            :class:`ServiceMetrics`).
        cache: a prebuilt :class:`PlanCache`/:class:`ShardedPlanCache` to
            serve from; overrides every cache-shaping argument above, and
            the service adopts the cache's metrics registry so counters
            land in one place.
        warm_start: enable near-miss warm starting (``None`` defers to the
            ``REPRO_WARM_START`` environment knob, default on).  The shape
            index is recorded either way; the flag only gates lookups.
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        memory_capacity: int = 128,
        retries: int = 1,
        fallback: bool = True,
        *,
        shards: int = 1,
        max_memory_bytes: Optional[int] = None,
        metrics_window: int = 2048,
        cache: Optional[Union[PlanCache, ShardedPlanCache]] = None,
        warm_start: Optional[bool] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if cache is not None:
            self.cache = cache
            self.metrics = cache.metrics
        else:
            self.metrics = ServiceMetrics(window=metrics_window)
            self.cache = open_cache(
                cache_dir,
                shards=shards,
                capacity=memory_capacity,
                metrics=self.metrics,
                max_memory_bytes=max_memory_bytes,
            )
        self.retries = retries
        self.fallback = fallback
        self.warm_start = warm_start_enabled(warm_start)
        # The index lives at the cache root (above the shard directories)
        # and persists with the disk tier; a memory-only cache gets a
        # memory-only index with the same lifetime.
        index_root = getattr(self.cache, "cache_dir", None)
        self.shape_index = ShapeIndex(
            path=index_root / INDEX_FILENAME if index_root else None
        )
        self._inflight: Dict[str, _InFlight] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compile(
        self,
        chain: OperatorChain,
        hardware: HardwareSpec,
        config: Optional[ChimeraConfig] = None,
        *,
        force_fusion: Optional[bool] = None,
    ) -> CompileResult:
        """Drop-in, cache-aware :func:`repro.compile_chain`.

        Raises:
            CompilationFailure: when compilation fails beyond recovery.
        """
        served = self.serve(
            CompileRequest(chain, hardware, config, force_fusion)
        )
        if served.result is None:
            raise CompilationFailure(
                f"compiling {served.request.describe()} failed: {served.error}"
            )
        return served.result

    def serve(self, request: RequestLike) -> ServedCompile:
        """Serve one request; errors are reported, never raised."""
        request = as_request(request)
        started = time.perf_counter()
        key = request.key
        self.metrics.count("requests")
        return self._serve_keyed(request, key, started)

    def _serve_keyed(
        self, request: CompileRequest, key: str, started: float
    ) -> ServedCompile:
        """Lookup/coalesce/compile for an already-counted request.

        Split from :meth:`serve` so internal retries (e.g. after evicting a
        corrupt cache entry) re-enter the lookup without inflating the
        ``requests`` counter — keeping the accounting invariant
        ``requests == hits + misses + coalesced``.
        """
        leader = False
        with self._lock:
            entry, tier = self.cache.get_with_tier(key)
            if entry is not None:
                self.metrics.count(f"hits_{tier}")
            else:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True

        if entry is not None:
            return self._serve_entry(
                request, key, entry, tier, started, warm=WARM_EXACT
            )

        if not leader:
            self.metrics.count("coalesced")
            flight.done.wait()
            if flight.entry is None:
                return ServedCompile(
                    request=request,
                    key=key,
                    result=None,
                    source=SOURCE_COALESCED,
                    seconds=time.perf_counter() - started,
                    error=flight.error,
                    warm_start=flight.warm_start,
                )
            return self._serve_entry(
                request,
                key,
                flight.entry,
                SOURCE_COALESCED,
                started,
                warm=flight.warm_start,
            )

        return self._lead_compile(request, key, flight, started)

    def serve_raw(
        self, request: RequestLike, *, key: Optional[str] = None
    ) -> RawServed:
        """Serve one request as a raw cache entry — no kernel lowering.

        The remote-serving hot path: a warm hit returns the JSON-ready
        entry straight from the cache, skipping :meth:`_decode_entry`
        (micro-kernel attachment + codegen), so its latency is dominated
        by lookup and serialization.  Cache, coalescing, metrics and
        fallback behaviour are identical to :meth:`serve` — the two paths
        share one in-flight table, so a ``serve`` and a ``serve_raw`` for
        the same key coalesce onto one compile.

        Args:
            request: the compilation unit.
            key: precomputed cache key (skips re-hashing when the caller
                already derived it from the canonical request payload).
        """
        request = as_request(request)
        started = time.perf_counter()
        if key is None:
            key = request.key
        self.metrics.count("requests")

        leader = False
        with self._lock:
            entry, tier = self.cache.get_with_tier(key)
            if entry is not None:
                self.metrics.count(f"hits_{tier}")
            else:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True

        if entry is not None:
            return RawServed(
                key=key,
                entry=entry,
                source=tier,
                seconds=time.perf_counter() - started,
                warm_start=WARM_EXACT,
            )

        if not leader:
            self.metrics.count("coalesced")
            flight.done.wait()
            return RawServed(
                key=key,
                entry=flight.entry,
                source=SOURCE_COALESCED,
                seconds=time.perf_counter() - started,
                error=flight.error,
                warm_start=flight.warm_start,
            )

        self.metrics.count("misses")
        entry = None
        source = SOURCE_COMPILED
        error: Optional[str] = None
        warm = WARM_COLD
        try:
            entry, source, error, warm = self._compile_with_recovery(
                request, key
            )
            if entry is not None and source == SOURCE_COMPILED:
                self.cache.put(key, entry)
                self._record_shape(request, key)
        finally:
            flight.entry = entry
            flight.error = error
            flight.warm_start = warm
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
        return RawServed(
            key=key,
            entry=entry,
            source=source,
            seconds=time.perf_counter() - started,
            error=error,
            warm_start=warm,
        )

    def compile_batch(self, requests, **kwargs):
        """Fan requests across a worker pool; see :func:`compile_batch`."""
        from .batch import compile_batch

        return compile_batch(self, requests, **kwargs)

    def stats(self) -> Dict[str, Any]:
        """Metrics snapshot plus cache occupancy and order-search counters."""
        snap = self.metrics.snapshot()
        snap["search"] = search_stats_snapshot()
        snap["cache"] = self.cache.stats()
        index_stats = self.shape_index.stats()
        index_stats["enabled"] = self.warm_start
        snap["shape_index"] = index_stats
        return snap

    def clear_cache(self, memory_only: bool = False) -> int:
        if memory_only:
            self.cache.clear_memory()
            return 0
        # A full clear deletes every entry the index points at, so the
        # index must go too — stale records would only produce misses in
        # :meth:`_near_hints` (correct, but wasted lookups).
        self.shape_index.clear()
        return self.cache.clear()

    # ------------------------------------------------------------------
    # leader path: compile, publish, cache
    # ------------------------------------------------------------------
    def _lead_compile(
        self,
        request: CompileRequest,
        key: str,
        flight: _InFlight,
        started: float,
    ) -> ServedCompile:
        self.metrics.count("misses")
        entry: Optional[Dict[str, Any]] = None
        source = SOURCE_COMPILED
        error: Optional[str] = None
        warm = WARM_COLD
        try:
            entry, source, error, warm = self._compile_with_recovery(
                request, key
            )
            if entry is not None and source == SOURCE_COMPILED:
                self.cache.put(key, entry)
                self._record_shape(request, key)
        finally:
            flight.entry = entry
            flight.error = error
            flight.warm_start = warm
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

        if entry is None:
            return ServedCompile(
                request=request,
                key=key,
                result=None,
                source=source,
                seconds=time.perf_counter() - started,
                error=error,
                warm_start=warm,
            )
        result = self._decode_entry(entry, request.hardware)
        return ServedCompile(
            request=request,
            key=key,
            result=result,
            source=source,
            seconds=time.perf_counter() - started,
            warm_start=warm,
        )

    # ------------------------------------------------------------------
    # warm-start path: shape index maintenance and neighbor hints
    # ------------------------------------------------------------------
    def _structure_of(
        self, request: CompileRequest
    ) -> Tuple[Optional[str], Optional[List[int]]]:
        """(structure key, extent vector) for the request, or ``(None, None)``.

        Warm starting is a latency optimization: a request whose IR trips
        up the structure hash must compile cold, never fail.
        """
        try:
            return (
                structure_key(
                    request.chain,
                    request.hardware,
                    request.config,
                    request.force_fusion,
                ),
                extent_vector(request.chain),
            )
        except Exception:  # noqa: BLE001 - degrade to a cold compile
            return None, None

    def _record_shape(self, request: CompileRequest, key: str) -> None:
        """Index a freshly cached plan under its shape bucket.

        Recorded even when ``warm_start`` is disabled, so flipping the
        knob on later starts with full history rather than an empty index.
        """
        structure, extents = self._structure_of(request)
        if structure is not None and extents is not None:
            self.shape_index.record(structure, key, extents)

    def _near_hints(
        self, request: CompileRequest, key: str
    ) -> Optional[ChainHints]:
        """Warm-start hints from the nearest same-structure cached plan.

        Probes the closest few neighbors (their entries may have been
        evicted since they were indexed) and returns hints from the first
        one whose entry still decodes into something usable.
        """
        if not self.warm_start:
            return None
        structure, extents = self._structure_of(request)
        if structure is None or extents is None:
            return None
        neighbors = self.shape_index.neighbors(
            structure, extents, limit=NEIGHBOR_PROBES, exclude=key
        )
        for neighbor in neighbors:
            entry = self.cache.get(neighbor.key)
            if entry is None:
                # Evicted from both tiers since it was recorded.
                self.shape_index.forget(neighbor.key)
                continue
            hints = hints_from_entry(entry)
            if hints is not None:
                return hints
        return None

    def _compile_with_recovery(
        self, request: CompileRequest, key: str
    ) -> Tuple[Optional[Dict[str, Any]], str, Optional[str], str]:
        """Optimizer run with retry, then the unfused fallback.

        Returns ``(entry, source, error, warm_start)``; ``entry`` is
        ``None`` only when every recovery path failed.  Neighbor hints are
        passed to the first attempt only: if the warm-started attempt
        fails, retries run cold so a pathological hint cannot wedge the
        request (the hint path is designed to be invariant, but recovery
        must not depend on that).
        """
        hints = self._near_hints(request, key)
        if hints is not None:
            self.metrics.count("warm_near")
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            attempt_hints = hints if attempt == 0 else None
            try:
                compile_started = time.perf_counter()
                result = pipeline.compile_chain(
                    request.chain,
                    request.hardware,
                    request.config,
                    force_fusion=request.force_fusion,
                    hints=attempt_hints,
                )
                elapsed = time.perf_counter() - compile_started
                self.metrics.count("compiles")
                self.metrics.observe_compile(elapsed)
                return (
                    self._encode_result(request, key, result, elapsed),
                    SOURCE_COMPILED,
                    None,
                    WARM_NEAR if attempt_hints is not None else WARM_COLD,
                )
            except Exception as exc:  # noqa: BLE001 - isolate optimizer bugs
                last_error = exc
                self.metrics.count("failures")
                if attempt < self.retries:
                    self.metrics.count("retries")

        if self.fallback:
            try:
                entry = self._fallback_entry(request, key)
                self.metrics.count("fallbacks")
                return entry, SOURCE_FALLBACK, None, WARM_COLD
            except Exception as exc:  # noqa: BLE001
                last_error = exc
                self.metrics.count("failures")
        return (
            None,
            SOURCE_FALLBACK,
            f"{type(last_error).__name__}: {last_error}",
            WARM_COLD,
        )

    def _fallback_entry(
        self, request: CompileRequest, key: str
    ) -> Dict[str, Any]:
        """Plan every operator as its own kernel — no whole-chain search.

        The degraded decision carries ``fused_plan=None`` (there is no
        trustworthy fused plan to report) and is never persisted.
        """
        cfg = pipeline.chimera_config(
            request.chain, request.hardware, request.config
        )
        unfused = plan_unfused(request.chain, request.hardware, cfg)
        entry = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "chain": request.chain.name,
            "hardware": request.hardware.name,
            "use_fusion": False,
            "force_fusion": request.force_fusion,
            "fused_plan": None,
            "unfused_plans": [plan_to_dict(plan) for plan in unfused],
            "compile_seconds": None,
            "created_at": time.time(),
        }
        return entry

    # ------------------------------------------------------------------
    # entry encode/decode
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_result(
        request: CompileRequest,
        key: str,
        result: CompileResult,
        compile_seconds: float,
    ) -> Dict[str, Any]:
        decision = result.decision
        return {
            "format_version": FORMAT_VERSION,
            "key": key,
            "chain": request.chain.name,
            "hardware": request.hardware.name,
            "use_fusion": decision.use_fusion,
            "force_fusion": request.force_fusion,
            "fused_plan": plan_to_dict(decision.fused_plan),
            "unfused_plans": [
                plan_to_dict(plan) for plan in decision.unfused_plans
            ],
            "compile_seconds": compile_seconds,
            "created_at": time.time(),
        }

    @staticmethod
    def _decode_entry(
        entry: Dict[str, Any], hardware: HardwareSpec
    ) -> CompileResult:
        return decode_plan_entry(entry, hardware)

    def _serve_entry(
        self,
        request: CompileRequest,
        key: str,
        entry: Dict[str, Any],
        source: str,
        started: float,
        warm: str = WARM_EXACT,
    ) -> ServedCompile:
        try:
            result = self._decode_entry(entry, request.hardware)
        except PlanFormatError as exc:
            # A cached-but-undecodable entry: evict and recompile once.
            self.metrics.count("corrupt_entries")
            self.cache.delete(key)
            self.shape_index.forget(key)
            if source in (SOURCE_MEMORY, SOURCE_DISK):
                # The hit never produced a result: retract it, then re-enter
                # the lookup without re-counting the request, so the
                # recompile registers as the miss it really is instead of a
                # phantom hit plus a double-counted request.
                self.metrics.count(f"hits_{source}", -1)
                return self._serve_keyed(request, key, started)
            return ServedCompile(
                request=request,
                key=key,
                result=None,
                source=source,
                seconds=time.perf_counter() - started,
                error=str(exc),
                warm_start=warm,
            )
        return ServedCompile(
            request=request,
            key=key,
            result=result,
            source=source,
            seconds=time.perf_counter() - started,
            warm_start=warm,
        )
