"""Parallel batch compilation over a ``concurrent.futures`` worker pool.

Offline deployments compile a model's whole set of fusion chains at once;
:func:`compile_batch` fans the requests across a thread pool (the optimizer
spends its time in NumPy/SciPy, which release the GIL during the heavy
linear algebra) and aggregates per-request outcomes into a
:class:`BatchReport`.

Per-request isolation is the contract: one request failing, degrading to
the unfused fallback, or exceeding its timeout never affects its batch
mates.  Duplicate requests inside one batch coalesce through the service's
in-flight table, so a batch with repeated chains costs one compile per
distinct key.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import time
from typing import Optional, Sequence, Tuple

from .service import (
    SOURCE_FALLBACK,
    CompileService,
    RequestLike,
    ServedCompile,
    as_request,
)

#: ``BatchItem.status`` values.
STATUS_OK = "ok"
STATUS_FALLBACK = "fallback"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """Outcome of one request in a batch."""

    index: int
    chain: str
    hardware: str
    key: str
    status: str
    source: str
    seconds: float
    served: Optional[ServedCompile]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_FALLBACK)

    @property
    def predicted_time(self) -> Optional[float]:
        if self.served is None or self.served.result is None:
            return None
        return self.served.result.predicted_time


@dataclasses.dataclass(frozen=True)
class BatchReport:
    """All per-request outcomes plus batch-level wall clock."""

    items: Tuple[BatchItem, ...]
    wall_seconds: float

    @property
    def ok(self) -> int:
        return sum(1 for item in self.items if item.status == STATUS_OK)

    @property
    def fallbacks(self) -> int:
        return sum(1 for item in self.items if item.status == STATUS_FALLBACK)

    @property
    def failed(self) -> int:
        return sum(
            1
            for item in self.items
            if item.status in (STATUS_FAILED, STATUS_TIMEOUT)
        )

    @property
    def succeeded(self) -> bool:
        """True when every request produced an executable result."""
        return self.failed == 0

    def table(self) -> str:
        from ..analysis import render_table

        rows = []
        for item in self.items:
            predicted = item.predicted_time
            rows.append(
                [
                    str(item.index),
                    item.chain,
                    item.hardware,
                    item.key[:12],
                    item.status,
                    item.source or "-",
                    f"{item.seconds * 1e3:.1f} ms",
                    "-" if predicted is None else f"{predicted * 1e6:.1f} us",
                ]
            )
        header = [
            "#", "chain", "hardware", "key", "status", "source",
            "service time", "predicted",
        ]
        summary = (
            f"{len(self.items)} requests in {self.wall_seconds:.2f}s: "
            f"{self.ok} ok, {self.fallbacks} fallback, {self.failed} failed"
        )
        return render_table(header, rows) + "\n" + summary


def _default_workers(n_requests: int) -> int:
    return max(1, min(n_requests, os.cpu_count() or 1))


def compile_batch(
    service: CompileService,
    requests: Sequence[RequestLike],
    *,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> BatchReport:
    """Compile every request, in parallel, with per-request isolation.

    Args:
        service: the cache/coalescing front end each worker goes through.
        requests: ``CompileRequest`` objects or ``(chain, hardware)`` pairs.
        max_workers: pool size (default: ``min(len(requests), cpu_count)``).
        timeout: per-request wall-clock budget in seconds, measured from
            batch start.  A request that misses it is reported as
            ``"timeout"``; its worker keeps running in the background and
            may still populate the cache for the next batch.

    Returns:
        a :class:`BatchReport`; this function never raises for per-request
        failures.
    """
    normalized = [as_request(request) for request in requests]
    if not normalized:
        return BatchReport(items=(), wall_seconds=0.0)
    workers = (
        _default_workers(len(normalized)) if max_workers is None else max_workers
    )
    started = time.perf_counter()
    items = []
    executor = concurrent.futures.ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-compile"
    )
    try:
        futures = [
            executor.submit(service.serve, request) for request in normalized
        ]
        for index, (request, future) in enumerate(zip(normalized, futures)):
            remaining = None
            if timeout is not None:
                remaining = max(0.0, timeout - (time.perf_counter() - started))
            try:
                served = future.result(timeout=remaining)
            except concurrent.futures.TimeoutError:
                service.metrics.count("timeouts")
                items.append(
                    BatchItem(
                        index=index,
                        chain=request.chain.name,
                        hardware=request.hardware.name,
                        key=request.key,
                        status=STATUS_TIMEOUT,
                        source="",
                        seconds=time.perf_counter() - started,
                        served=None,
                        error=f"timed out after {timeout}s",
                    )
                )
                continue
            except Exception as exc:  # noqa: BLE001 - isolate worker crashes
                items.append(
                    BatchItem(
                        index=index,
                        chain=request.chain.name,
                        hardware=request.hardware.name,
                        key=request.key,
                        status=STATUS_FAILED,
                        source="",
                        seconds=time.perf_counter() - started,
                        served=None,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            if served.result is None:
                status = STATUS_FAILED
            elif served.source == SOURCE_FALLBACK:
                status = STATUS_FALLBACK
            else:
                status = STATUS_OK
            items.append(
                BatchItem(
                    index=index,
                    chain=request.chain.name,
                    hardware=request.hardware.name,
                    key=served.key,
                    status=status,
                    source=served.source,
                    seconds=served.seconds,
                    served=served,
                    error=served.error,
                )
            )
    finally:
        # Don't block the report on timed-out stragglers.
        executor.shutdown(wait=timeout is None)
    return BatchReport(
        items=tuple(items), wall_seconds=time.perf_counter() - started
    )
