"""Thread-safe counters and latency percentiles for the compile service.

One :class:`ServiceMetrics` instance is shared by the cache, the coalescer
and the batch compiler; every mutation takes the registry lock, so the
numbers stay consistent under the worker pool.  Latencies are kept in a
bounded reservoir (most recent ``window`` samples) — enough for stable
p50/p90/p99 without unbounded growth in a long-lived service.
"""

from __future__ import annotations

import collections
import math
import threading
from typing import Any, Deque, Dict, List

#: Counter names the registry pre-seeds so ``snapshot()`` always reports a
#: complete set, even before the first request.
COUNTERS = (
    "requests",
    "hits_memory",
    "hits_disk",
    "misses",
    "coalesced",
    "compiles",
    "evictions",
    "failures",
    "retries",
    "fallbacks",
    "timeouts",
    "corrupt_entries",
)


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of unsorted samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Mutable, lock-protected metrics registry."""

    def __init__(self, window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._compile_seconds: Deque[float] = collections.deque(maxlen=window)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (created on first use if not pre-seeded)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe_compile(self, seconds: float) -> None:
        """Record one cold-compile latency sample."""
        with self._lock:
            self._compile_seconds.append(seconds)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A consistent point-in-time copy of all counters and latencies."""
        with self._lock:
            counters = dict(self._counters)
            samples = list(self._compile_seconds)
        hits = counters["hits_memory"] + counters["hits_disk"]
        lookups = hits + counters["misses"]
        return {
            **counters,
            "hits": hits,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "compile_latency": {
                "count": len(samples),
                "mean": (sum(samples) / len(samples)) if samples else 0.0,
                "p50": percentile(samples, 50),
                "p90": percentile(samples, 90),
                "p99": percentile(samples, 99),
                "max": max(samples) if samples else 0.0,
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters = {name: 0 for name in COUNTERS}
            self._compile_seconds.clear()
