"""Thread-safe counters and latency percentiles for the compile service.

One :class:`ServiceMetrics` instance is shared by the cache, the coalescer,
the batch compiler and the serving front end; every mutation takes the
registry lock, so the numbers stay consistent under the worker pool.

Latencies are kept in *bounded reservoirs*: each named series (plus the
built-in cold-compile series) retains only its most recent ``window``
samples.  The semantics are deliberately simple and worth spelling out:

* the reservoir is a sliding window, **not** a uniform sample of the whole
  run — percentiles describe the last ``window`` observations, so a
  long-lived server reports *recent* tail behaviour, which is what an
  operator watching ``/stats`` wants;
* ``window`` is configurable per registry (default 2048).  Larger windows
  smooth percentiles over longer horizons at ~8 bytes/sample; a window of
  2048 is stable for p99 (≈20 samples above the cut) while still tracking
  load shifts within a few thousand requests;
* counters are monotonic for the life of the registry (or until
  ``reset()``) and are never windowed.

``restore()`` reloads counter values from a checkpoint (the serving layer
persists a snapshot on graceful drain), so a hot-restarted server resumes
its cumulative counters instead of starting from zero.  Latency reservoirs
are intentionally *not* restored: stale samples would misrepresent the
post-restart tail.
"""

from __future__ import annotations

import collections
import math
import threading
from typing import Any, Deque, Dict, List, Mapping

#: Counter names the registry pre-seeds so ``snapshot()`` always reports a
#: complete set, even before the first request.
COUNTERS = (
    "requests",
    "hits_memory",
    "hits_disk",
    "misses",
    "coalesced",
    "compiles",
    "evictions",
    "failures",
    "retries",
    "fallbacks",
    "timeouts",
    "corrupt_entries",
)

#: Percentiles every latency summary reports.
PERCENTILES = (50, 90, 95, 99)


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of unsorted samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(samples: List[float]) -> Dict[str, float]:
    """Count/mean/p50/p90/p95/p99/max summary of a latency sample list."""
    ordered = sorted(samples)
    summary: Dict[str, float] = {
        "count": len(ordered),
        "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "max": ordered[-1] if ordered else 0.0,
    }
    for q in PERCENTILES:
        if ordered:
            rank = max(1, math.ceil(q / 100.0 * len(ordered)))
            summary[f"p{q}"] = ordered[rank - 1]
        else:
            summary[f"p{q}"] = 0.0
    return summary


class ServiceMetrics:
    """Mutable, lock-protected metrics registry.

    Args:
        window: sliding-window size, in samples, for every latency
            reservoir (see the module docstring for the exact semantics).
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._compile_seconds: Deque[float] = collections.deque(maxlen=window)
        self._latencies: Dict[str, Deque[float]] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (created on first use if not pre-seeded)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe_compile(self, seconds: float) -> None:
        """Record one cold-compile latency sample."""
        with self._lock:
            self._compile_seconds.append(seconds)

    def observe(self, name: str, seconds: float) -> None:
        """Record one sample in the named latency reservoir.

        The serving layer uses ``"serve_warm"`` / ``"serve_cold"`` for
        end-to-end request latencies (queueing included); any other name
        creates a new windowed series reported under
        ``snapshot()["latencies"]``.
        """
        with self._lock:
            series = self._latencies.get(name)
            if series is None:
                series = collections.deque(maxlen=self.window)
                self._latencies[name] = series
            series.append(seconds)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A consistent point-in-time copy of all counters and latencies."""
        with self._lock:
            counters = dict(self._counters)
            samples = list(self._compile_seconds)
            latencies = {
                name: list(series) for name, series in self._latencies.items()
            }
        hits = counters["hits_memory"] + counters["hits_disk"]
        lookups = hits + counters["misses"]
        return {
            **counters,
            "hits": hits,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "latency_window": self.window,
            "compile_latency": summarize(samples),
            "latencies": {
                name: summarize(series)
                for name, series in sorted(latencies.items())
            },
        }

    def restore(self, counters: Mapping[str, Any]) -> None:
        """Reload counter values from a checkpointed snapshot.

        Only integer-valued counter entries are applied; derived snapshot
        fields (``hits``, ``hit_rate``, latency summaries) are ignored, as
        are unknown non-integer values, so feeding a full ``snapshot()``
        payload back in is safe.  Latency reservoirs are left empty — see
        the module docstring.
        """
        derived = ("hits", "latency_window")
        with self._lock:
            for name, value in counters.items():
                if name in derived or isinstance(value, bool):
                    continue
                if isinstance(value, int):
                    self._counters[name] = value

    def reset(self) -> None:
        with self._lock:
            self._counters = {name: 0 for name in COUNTERS}
            self._compile_seconds.clear()
            self._latencies.clear()
