"""Compilation-as-a-service layer over the Chimera pipeline.

The optimizer's analytical search costs seconds per chain; a serving
deployment compiles each distinct (chain, hardware, config) exactly once.
This package provides that layer:

* :func:`cache_key` / :func:`canonical_request` — content-addressed request
  hashing (:mod:`repro.service.keys`);
* :class:`PlanCache` — in-memory LRU over an atomic, corruption-tolerant
  on-disk JSON store (:mod:`repro.service.cache`);
* :class:`ShapeIndex` — shape-bucketed nearest-plan index that turns
  near-miss requests into warm-started (but byte-identical) compiles
  (:mod:`repro.service.shapes`);
* :class:`CompileService` — cached + coalesced + warm-starting +
  failure-degrading ``compile`` / ``serve`` front end
  (:mod:`repro.service.service`);
* :func:`compile_batch` — parallel fan-out with per-request isolation
  (:mod:`repro.service.batch`);
* :class:`ServiceMetrics` — thread-safe counters and latency percentiles
  (:mod:`repro.service.metrics`).

Quickstart::

    from repro.service import CompileService

    service = CompileService(cache_dir="~/.cache/repro-plans")
    result = service.compile(chain, hw)      # cold: runs the optimizer
    result = service.compile(chain, hw)      # warm: decoded from cache
    report = service.compile_batch([(c, hw) for c in chains])
    print(report.table())
    print(service.stats())
"""

from .batch import (
    STATUS_FAILED,
    STATUS_FALLBACK,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchItem,
    BatchReport,
    compile_batch,
)
from .cache import (
    PlanCache,
    ShardedPlanCache,
    detect_shards,
    entry_bytes,
    open_cache,
    shard_index,
    validate_entry,
)
from .keys import (
    cache_key,
    canonical_request,
    extent_vector,
    structure_key,
    structure_request,
)
from .metrics import ServiceMetrics, percentile, summarize
from .service import (
    ENV_WARM_START,
    SOURCE_COALESCED,
    SOURCE_COMPILED,
    SOURCE_DISK,
    SOURCE_FALLBACK,
    SOURCE_MEMORY,
    WARM_COLD,
    WARM_EXACT,
    WARM_NEAR,
    CompilationFailure,
    CompileRequest,
    CompileService,
    RawServed,
    ServedCompile,
    as_request,
    decode_plan_entry,
    warm_start_enabled,
)
from .shapes import ShapeIndex, ShapeNeighbor, log_extent_distance

__all__ = [
    "BatchItem",
    "BatchReport",
    "compile_batch",
    "STATUS_OK",
    "STATUS_FALLBACK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "PlanCache",
    "ShardedPlanCache",
    "detect_shards",
    "entry_bytes",
    "open_cache",
    "shard_index",
    "validate_entry",
    "cache_key",
    "canonical_request",
    "structure_key",
    "structure_request",
    "extent_vector",
    "ShapeIndex",
    "ShapeNeighbor",
    "log_extent_distance",
    "ServiceMetrics",
    "percentile",
    "summarize",
    "CompilationFailure",
    "CompileRequest",
    "CompileService",
    "RawServed",
    "ServedCompile",
    "as_request",
    "decode_plan_entry",
    "SOURCE_MEMORY",
    "SOURCE_DISK",
    "SOURCE_COALESCED",
    "SOURCE_COMPILED",
    "SOURCE_FALLBACK",
    "WARM_EXACT",
    "WARM_NEAR",
    "WARM_COLD",
    "ENV_WARM_START",
    "warm_start_enabled",
]
