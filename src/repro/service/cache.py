"""Two-tier content-addressed store for compiled plan entries.

Front tier: an in-memory LRU keyed by :func:`repro.service.cache_key`, sized
by ``capacity`` (entries, not bytes — plan entries are a few KB each).  Back
tier: an optional on-disk directory of ``<key>.plan.json`` files shared
between processes and service restarts.

Durability rules:

* writes go to a temp file in the cache directory and are published with
  ``os.replace`` — readers never observe a half-written entry, even if the
  writer dies mid-``write``;
* loads are corruption-tolerant: an unreadable, truncated, structurally
  invalid or version-mismatched file is treated as a miss, counted in
  ``corrupt_entries``, and deleted so the next compile rewrites it;
* a disk hit is promoted into the memory tier (LRU insert).

The cache stores plain JSON-ready dict *entries* (produced by the service),
not live plan objects — decoding back into kernels is the service's job.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from ..runtime.serialization import FORMAT_VERSION
from .metrics import ServiceMetrics

PathLike = Union[str, pathlib.Path]

#: Fields every cache entry must carry to be considered decodable.
REQUIRED_ENTRY_FIELDS = (
    "format_version",
    "key",
    "use_fusion",
    "fused_plan",
    "unfused_plans",
)

ENTRY_SUFFIX = ".plan.json"

#: ``cache.get`` tier labels (also used as result sources by the service).
TIER_MEMORY = "memory"
TIER_DISK = "disk"


def validate_entry(entry: Any) -> bool:
    """Structural check applied to every entry read back from disk."""
    if not isinstance(entry, dict):
        return False
    if any(field not in entry for field in REQUIRED_ENTRY_FIELDS):
        return False
    return entry["format_version"] == FORMAT_VERSION


class PlanCache:
    """LRU memory tier over an optional persistent JSON directory."""

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        capacity: int = 128,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache_dir: Optional[pathlib.Path] = None
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry, _ = self.get_with_tier(key)
        return entry

    def get_with_tier(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Look the key up; returns ``(entry, tier)`` or ``(None, None)``."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                return entry, TIER_MEMORY
            entry = self._load_disk(key)
            if entry is not None:
                self._insert_memory(key, entry)
                return entry, TIER_DISK
        return None, None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            path = self._path(key)
            return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """All cached keys, memory and disk combined."""
        with self._lock:
            known = list(self._memory)
            seen = set(known)
            for key in self.disk_keys():
                if key not in seen:
                    known.append(key)
            return known

    def disk_keys(self) -> List[str]:
        if self.cache_dir is None:
            return []
        return sorted(
            path.name[: -len(ENTRY_SUFFIX)]
            for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}")
        )

    def disk_size_bytes(self) -> int:
        if self.cache_dir is None:
            return 0
        return sum(
            path.stat().st_size
            for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}")
            if path.exists()
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Insert into the memory tier and persist to disk atomically."""
        if not validate_entry(entry):
            raise ValueError(
                "refusing to cache a structurally invalid entry "
                f"(required fields: {', '.join(REQUIRED_ENTRY_FIELDS)})"
            )
        with self._lock:
            self._insert_memory(key, entry)
            self._write_disk(key, entry)

    def delete(self, key: str) -> None:
        with self._lock:
            self._memory.pop(key, None)
            path = self._path(key)
            if path is not None and path.exists():
                path.unlink()

    def clear(self) -> int:
        """Drop both tiers; returns the number of entries removed."""
        with self._lock:
            removed = set(self._memory)
            self._memory.clear()
            if self.cache_dir is not None:
                for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}"):
                    removed.add(path.name[: -len(ENTRY_SUFFIX)])
                    path.unlink()
            return len(removed)

    def clear_memory(self) -> None:
        """Drop the LRU tier only (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def memory_len(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert_memory(self, key: str, entry: Dict[str, Any]) -> None:
        if self.capacity == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.metrics.count("evictions")

    def _path(self, key: str) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}{ENTRY_SUFFIX}"

    def _write_disk(self, key: str, entry: Dict[str, Any]) -> None:
        path = self._path(key)
        if path is None:
            return
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=str(self.cache_dir)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _load_disk(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            entry = None
        if entry is None or not validate_entry(entry):
            # Corrupt, truncated, or written by an incompatible build: treat
            # as a miss and evict the file so the next compile replaces it.
            self.metrics.count("corrupt_entries")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return entry
