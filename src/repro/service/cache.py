"""Content-addressed stores for compiled plan entries.

Two classes share one interface (every consumer — :class:`CompileService`,
the CLI, the serving tier — accepts either):

* :class:`PlanCache` — a single two-tier store.  Front tier: an in-memory
  LRU keyed by :func:`repro.service.cache_key`, bounded by ``capacity``
  (entries) **and** optionally ``max_memory_bytes`` (byte-accounted — the
  serialized size of each entry is tracked, so a few huge plans can't
  silently blow past an entry-count budget).  Back tier: an optional
  on-disk directory of ``<key>.plan.json`` files shared between processes
  and service restarts.
* :class:`ShardedPlanCache` — N independent :class:`PlanCache` shards
  selected by a prefix of the request digest.  Each shard has its own lock
  and its own ``shard-XX/`` subdirectory, so concurrent lookups on
  different shards never contend and compaction can walk one shard at a
  time.

Durability rules (per shard):

* writes go to a temp file in the cache directory and are published with
  ``os.replace`` — readers never observe a half-written entry, even if the
  writer dies mid-``write``;
* loads are corruption-tolerant: an unreadable, truncated, structurally
  invalid or version-mismatched file is treated as a miss, counted in
  ``corrupt_entries``, and deleted so the next compile rewrites it;
* a disk hit is promoted into the memory tier (LRU insert).

Long-lived servers additionally get:

* :meth:`PlanCache.warm_memory` — hot-restart support: refill the memory
  tier from disk, most recently written entries first;
* :meth:`PlanCache.compact` — background maintenance off the hot path:
  evict corrupt and stale files, optionally enforce a disk byte budget
  (oldest entries evicted first).

The cache stores plain JSON-ready dict *entries* (produced by the service),
not live plan objects — decoding back into kernels is the service's job.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..runtime.serialization import FORMAT_VERSION
from .metrics import ServiceMetrics

PathLike = Union[str, pathlib.Path]

#: Fields every cache entry must carry to be considered decodable.
REQUIRED_ENTRY_FIELDS = (
    "format_version",
    "key",
    "use_fusion",
    "fused_plan",
    "unfused_plans",
)

ENTRY_SUFFIX = ".plan.json"

#: ``cache.get`` tier labels (also used as result sources by the service).
TIER_MEMORY = "memory"
TIER_DISK = "disk"

#: Subdirectory pattern used by :class:`ShardedPlanCache`.
SHARD_DIR_FORMAT = "shard-{:02d}"
SHARD_DIR_GLOB = "shard-[0-9][0-9]"


def validate_entry(entry: Any) -> bool:
    """Structural check applied to every entry read back from disk."""
    if not isinstance(entry, dict):
        return False
    if any(field not in entry for field in REQUIRED_ENTRY_FIELDS):
        return False
    return entry["format_version"] == FORMAT_VERSION


def entry_bytes(entry: Dict[str, Any]) -> int:
    """Serialized size of an entry — the unit the byte budget accounts in."""
    return len(json.dumps(entry))


class PlanCache:
    """LRU memory tier over an optional persistent JSON directory.

    Args:
        cache_dir: directory for the persistent tier (``None`` keeps the
            cache memory-only).
        capacity: memory-tier bound in *entries* (0 disables the tier).
        metrics: shared registry for eviction/corruption counters.
        max_memory_bytes: optional memory-tier bound in *bytes* of
            serialized entry payload; whichever bound trips first evicts.
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        capacity: int = 128,
        metrics: Optional[ServiceMetrics] = None,
        max_memory_bytes: Optional[int] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if max_memory_bytes is not None and max_memory_bytes < 0:
            raise ValueError(
                f"max_memory_bytes must be >= 0, got {max_memory_bytes}"
            )
        self.capacity = capacity
        self.max_memory_bytes = max_memory_bytes
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache_dir: Optional[pathlib.Path] = None
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        # key -> (entry, serialized size in bytes), LRU order.
        self._memory: "OrderedDict[str, Tuple[Dict[str, Any], int]]" = (
            OrderedDict()
        )
        self._memory_bytes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry, _ = self.get_with_tier(key)
        return entry

    def get_with_tier(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Look the key up; returns ``(entry, tier)`` or ``(None, None)``."""
        with self._lock:
            slot = self._memory.get(key)
            if slot is not None:
                self._memory.move_to_end(key)
                return slot[0], TIER_MEMORY
            loaded = self._load_disk(key)
            if loaded is not None:
                entry, nbytes = loaded
                self._insert_memory(key, entry, nbytes)
                return entry, TIER_DISK
        return None, None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            path = self._path(key)
            return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """All cached keys, memory and disk combined."""
        with self._lock:
            known = list(self._memory)
            seen = set(known)
            for key in self.disk_keys():
                if key not in seen:
                    known.append(key)
            return known

    def disk_keys(self) -> List[str]:
        if self.cache_dir is None:
            return []
        return sorted(
            path.name[: -len(ENTRY_SUFFIX)]
            for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}")
        )

    def disk_size_bytes(self) -> int:
        if self.cache_dir is None:
            return 0
        total = 0
        for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:
                continue  # racing eviction/compaction
        return total

    def memory_len(self) -> int:
        with self._lock:
            return len(self._memory)

    def memory_bytes(self) -> int:
        """Byte-accounted size of the memory tier (serialized entry sizes)."""
        with self._lock:
            return self._memory_bytes

    def stats(self) -> Dict[str, Any]:
        """Occupancy of both tiers, entry counts *and* bytes."""
        with self._lock:
            memory_entries = len(self._memory)
            memory_bytes = self._memory_bytes
        return {
            "shards": 1,
            "memory_entries": memory_entries,
            "memory_bytes": memory_bytes,
            "memory_capacity": self.capacity,
            "max_memory_bytes": self.max_memory_bytes,
            "disk_entries": len(self.disk_keys()),
            "disk_bytes": self.disk_size_bytes(),
            "cache_dir": (
                str(self.cache_dir) if self.cache_dir is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Insert into the memory tier and persist to disk atomically."""
        if not validate_entry(entry):
            raise ValueError(
                "refusing to cache a structurally invalid entry "
                f"(required fields: {', '.join(REQUIRED_ENTRY_FIELDS)})"
            )
        text = json.dumps(entry)
        with self._lock:
            self._insert_memory(key, entry, len(text))
            self._write_disk(key, text)

    def delete(self, key: str) -> None:
        with self._lock:
            self._pop_memory(key)
            path = self._path(key)
            if path is not None and path.exists():
                path.unlink()

    def clear(self) -> int:
        """Drop both tiers; returns the number of entries removed."""
        with self._lock:
            removed = set(self._memory)
            self._memory.clear()
            self._memory_bytes = 0
            if self.cache_dir is not None:
                for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}"):
                    removed.add(path.name[: -len(ENTRY_SUFFIX)])
                    path.unlink()
            return len(removed)

    def clear_memory(self) -> None:
        """Drop the LRU tier only (disk entries survive)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0

    # ------------------------------------------------------------------
    # maintenance (hot restart + background compaction)
    # ------------------------------------------------------------------
    def dated_disk_entries(self) -> List[Tuple[float, str]]:
        """``(mtime, key)`` for every disk entry, newest first.

        Ties in mtime (coarse filesystem clocks stamp whole batches with
        one timestamp) break on the key, so the order — and therefore
        which entries a bounded warm-up loads — is deterministic.
        """
        if self.cache_dir is None:
            return []
        dated: List[Tuple[float, str]] = []
        for path in self.cache_dir.glob(f"*{ENTRY_SUFFIX}"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # racing eviction/compaction
            dated.append((mtime, path.name[: -len(ENTRY_SUFFIX)]))
        dated.sort(key=lambda pair: (-pair[0], pair[1]))
        return dated

    def warm_keys(
        self, keys: Iterable[str], max_loads: Optional[int] = None
    ) -> int:
        """Load the given disk keys into the memory tier, in order.

        Stops **before** loading once ``max_loads`` (clamped to the entry
        capacity) or the byte budget is reached — inserting past the
        budget would evict from the LRU front, i.e. throw away the very
        entries just warmed.  Keys already resident, missing from disk or
        corrupt are skipped without consuming budget.  Returns the number
        of entries loaded.
        """
        if self.cache_dir is None or self.capacity == 0:
            return 0
        budget = (
            self.capacity
            if max_loads is None
            else min(max_loads, self.capacity)
        )
        loaded = 0
        with self._lock:
            for key in keys:
                if loaded >= budget:
                    break
                if (
                    self.max_memory_bytes is not None
                    and self._memory_bytes >= self.max_memory_bytes
                    and loaded > 0
                ):
                    break
                if key in self._memory:
                    continue
                slot = self._load_disk(key)
                if slot is None:
                    continue
                self._insert_memory(key, slot[0], slot[1])
                loaded += 1
        return loaded

    def warm_memory(self, limit: Optional[int] = None) -> int:
        """Refill the memory tier from disk, newest entries first.

        Called on server start so a hot restart answers from memory
        immediately instead of paying a disk read per first hit.  Loads at
        most ``limit`` entries (default: the memory-tier entry capacity)
        and stops early once the byte budget is full.  Corrupt files hit
        on the way are evicted as usual.  Returns the number of entries
        loaded.
        """
        if self.cache_dir is None or self.capacity == 0:
            return 0
        return self.warm_keys(
            (key for _, key in self.dated_disk_entries()), max_loads=limit
        )

    def compact(
        self,
        max_age_seconds: Optional[float] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        """Walk the disk tier and evict what no longer earns its bytes.

        Designed to run from a background task, off the request path:

        * corrupt / truncated / version-mismatched files are deleted
          (counted in ``corrupt_entries`` as usual);
        * files older than ``max_age_seconds`` (by mtime) are deleted;
        * if ``max_disk_bytes`` is set and the surviving entries still
          exceed it, the oldest entries are deleted until under budget.

        Entries evicted from disk are also dropped from the memory tier so
        the two tiers never disagree about what exists.  Returns counters:
        ``scanned``/``removed_corrupt``/``removed_stale``/``removed_budget``
        /``kept``/``kept_bytes``.
        """
        result = {
            "scanned": 0,
            "removed_corrupt": 0,
            "removed_stale": 0,
            "removed_budget": 0,
            "kept": 0,
            "kept_bytes": 0,
        }
        if self.cache_dir is None:
            return result
        now = time.time()
        survivors: List[Tuple[float, int, pathlib.Path]] = []
        for path in sorted(self.cache_dir.glob(f"*{ENTRY_SUFFIX}")):
            result["scanned"] += 1
            key = path.name[: -len(ENTRY_SUFFIX)]
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with an eviction
            if (
                max_age_seconds is not None
                and now - stat.st_mtime > max_age_seconds
            ):
                self._evict_file(key, path)
                result["removed_stale"] += 1
                continue
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
            if entry is None or not validate_entry(entry):
                self.metrics.count("corrupt_entries")
                self._evict_file(key, path)
                result["removed_corrupt"] += 1
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in survivors)
        if max_disk_bytes is not None:
            survivors.sort(key=lambda item: item[0])  # oldest first
            index = 0
            while total > max_disk_bytes and index < len(survivors):
                _, size, path = survivors[index]
                self._evict_file(path.name[: -len(ENTRY_SUFFIX)], path)
                result["removed_budget"] += 1
                total -= size
                index += 1
            survivors = survivors[index:]
        result["kept"] = len(survivors)
        result["kept_bytes"] = total
        return result

    def _evict_file(self, key: str, path: pathlib.Path) -> None:
        with self._lock:
            self._pop_memory(key)
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pop_memory(self, key: str) -> None:
        slot = self._memory.pop(key, None)
        if slot is not None:
            self._memory_bytes -= slot[1]

    def _insert_memory(
        self, key: str, entry: Dict[str, Any], nbytes: int
    ) -> None:
        if self.capacity == 0:
            return
        self._pop_memory(key)
        self._memory[key] = (entry, nbytes)
        self._memory_bytes += nbytes
        over_bytes = (
            lambda: self.max_memory_bytes is not None
            and self._memory_bytes > self.max_memory_bytes
        )
        while len(self._memory) > 1 and (
            len(self._memory) > self.capacity or over_bytes()
        ):
            _, (_, dropped) = self._memory.popitem(last=False)
            self._memory_bytes -= dropped
            self.metrics.count("evictions")

    def _path(self, key: str) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}{ENTRY_SUFFIX}"

    def _write_disk(self, key: str, text: str) -> None:
        path = self._path(key)
        if path is None:
            return
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=str(self.cache_dir)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _load_disk(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], int]]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            text = path.read_text()
            entry = json.loads(text)
        except (OSError, json.JSONDecodeError):
            entry = None
        if entry is None or not validate_entry(entry):
            # Corrupt, truncated, or written by an incompatible build: treat
            # as a miss and evict the file so the next compile replaces it.
            self.metrics.count("corrupt_entries")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return entry, len(text)


class ShardedPlanCache:
    """N independent :class:`PlanCache` shards behind one facade.

    The shard for a key is chosen from the leading hex digits of the
    request digest (keys are SHA-256 hashes, so the spread is uniform) —
    the same key always lands on the same shard, across processes and
    restarts.  ``capacity`` and ``max_memory_bytes`` are *totals*, divided
    evenly across shards.  On disk each shard owns a ``shard-XX/``
    subdirectory of ``cache_dir``.
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        shards: int = 4,
        capacity: int = 128,
        metrics: Optional[ServiceMetrics] = None,
        max_memory_bytes: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else None
        )
        per_capacity = max(1, -(-capacity // shards)) if capacity else 0
        per_bytes = (
            max(1, -(-max_memory_bytes // shards))
            if max_memory_bytes is not None
            else None
        )
        self.capacity = per_capacity * shards if capacity else 0
        self.max_memory_bytes = (
            per_bytes * shards if per_bytes is not None else None
        )
        self._shards = tuple(
            PlanCache(
                cache_dir=(
                    self.cache_dir / SHARD_DIR_FORMAT.format(index)
                    if self.cache_dir is not None
                    else None
                ),
                capacity=per_capacity,
                metrics=self.metrics,
                max_memory_bytes=per_bytes,
            )
            for index in range(shards)
        )

    @property
    def shards(self) -> Tuple[PlanCache, ...]:
        return self._shards

    def shard_for(self, key: str) -> PlanCache:
        return self._shards[shard_index(key, len(self._shards))]

    # -- delegation ----------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.shard_for(key).get(key)

    def get_with_tier(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        return self.shard_for(key).get_with_tier(key)

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        self.shard_for(key).put(key, entry)

    def delete(self, key: str) -> None:
        self.shard_for(key).delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def keys(self) -> List[str]:
        keys: List[str] = []
        for shard in self._shards:
            keys.extend(shard.keys())
        return keys

    def disk_keys(self) -> List[str]:
        keys: List[str] = []
        for shard in self._shards:
            keys.extend(shard.disk_keys())
        return sorted(keys)

    def disk_size_bytes(self) -> int:
        return sum(shard.disk_size_bytes() for shard in self._shards)

    def memory_len(self) -> int:
        return sum(shard.memory_len() for shard in self._shards)

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self._shards)

    def clear(self) -> int:
        return sum(shard.clear() for shard in self._shards)

    def clear_memory(self) -> None:
        for shard in self._shards:
            shard.clear_memory()

    def warm_memory(self, limit: Optional[int] = None) -> int:
        """Refill the memory tiers with the globally newest disk entries.

        ``limit`` bounds the *total* across shards.  The per-shard entry
        listings are merged and sorted by ``(-mtime, key)`` before the
        budget is applied — dividing the limit evenly per shard would load
        ``limit / shards`` entries from *every* shard, resurrecting stale
        entries on cold shards while dropping fresh ones on hot shards.
        """
        budget = self.capacity if limit is None else min(limit, self.capacity)
        if budget <= 0:
            return 0
        merged: List[Tuple[float, str, int]] = []
        for index, shard in enumerate(self._shards):
            for mtime, key in shard.dated_disk_entries():
                merged.append((-mtime, key, index))
        merged.sort()
        per_shard_keys: List[List[str]] = [[] for _ in self._shards]
        for _, key, index in merged[:budget]:
            per_shard_keys[index].append(key)
        return sum(
            shard.warm_keys(keys)
            for shard, keys in zip(self._shards, per_shard_keys)
            if keys
        )

    def compact(
        self,
        max_age_seconds: Optional[float] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        per_budget = (
            max(1, -(-max_disk_bytes // len(self._shards)))
            if max_disk_bytes is not None
            else None
        )
        totals: Dict[str, int] = {}
        for shard in self._shards:
            for name, value in shard.compact(max_age_seconds, per_budget).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def stats(self) -> Dict[str, Any]:
        """Aggregate occupancy plus the per-shard breakdown."""
        per_shard = []
        for index, shard in enumerate(self._shards):
            shard_stats = shard.stats()
            per_shard.append(
                {
                    "shard": index,
                    "memory_entries": shard_stats["memory_entries"],
                    "memory_bytes": shard_stats["memory_bytes"],
                    "disk_entries": shard_stats["disk_entries"],
                    "disk_bytes": shard_stats["disk_bytes"],
                }
            )
        return {
            "shards": len(self._shards),
            "memory_entries": sum(s["memory_entries"] for s in per_shard),
            "memory_bytes": sum(s["memory_bytes"] for s in per_shard),
            "memory_capacity": self.capacity,
            "max_memory_bytes": self.max_memory_bytes,
            "disk_entries": sum(s["disk_entries"] for s in per_shard),
            "disk_bytes": sum(s["disk_bytes"] for s in per_shard),
            "cache_dir": (
                str(self.cache_dir) if self.cache_dir is not None else None
            ),
            "per_shard": per_shard,
        }


def shard_index(key: str, shards: int) -> int:
    """Deterministic shard routing from the digest's leading hex digits."""
    try:
        return int(key[:8], 16) % shards
    except ValueError:
        # Non-hex key (tests, ad-hoc tools): fall back to a stable hash.
        return sum(key.encode("utf-8", "replace")) % shards


def detect_shards(cache_dir: PathLike) -> int:
    """Number of ``shard-XX/`` subdirectories under an existing cache dir."""
    root = pathlib.Path(cache_dir)
    if not root.is_dir():
        return 0
    return sum(1 for path in root.glob(SHARD_DIR_GLOB) if path.is_dir())


def open_cache(
    cache_dir: Optional[PathLike],
    shards: Optional[int] = None,
    capacity: int = 128,
    metrics: Optional[ServiceMetrics] = None,
    max_memory_bytes: Optional[int] = None,
) -> Union[PlanCache, ShardedPlanCache]:
    """Open a plan cache, auto-detecting an existing shard layout.

    ``shards=None`` inspects ``cache_dir`` for ``shard-XX/`` subdirectories
    (so CLI tools pointed at a server's cache just work); ``shards<=1``
    forces a flat :class:`PlanCache`, larger values a
    :class:`ShardedPlanCache`.
    """
    if shards is None:
        shards = detect_shards(cache_dir) if cache_dir is not None else 0
    if shards and shards > 1:
        return ShardedPlanCache(
            cache_dir=cache_dir,
            shards=shards,
            capacity=capacity,
            metrics=metrics,
            max_memory_bytes=max_memory_bytes,
        )
    return PlanCache(
        cache_dir=cache_dir,
        capacity=capacity,
        metrics=metrics,
        max_memory_bytes=max_memory_bytes,
    )
