"""Content-addressed cache keys for compilation requests.

A compiled plan is fully determined by the chain IR, the machine model, the
optimizer configuration, and the plan format the result is serialized in.
The cache key is therefore the SHA-256 of a *canonical* JSON encoding of
exactly those inputs: dict keys sorted, no whitespace, mappings inside the
optimizer config ordered.  Two structurally identical requests — even built
by different code paths or in different processes — hash to the same key,
which is what makes the on-disk store shareable across services and runs.

``config=None`` canonicalizes to the *default* config's encoding: passing
``None`` and passing ``ChimeraConfig()`` describe the same compilation, so
they must hash to the same key (``None`` used to be encoded verbatim, which
split structurally identical requests across two keys).

Alongside the exact key this module derives the *bucketed* key the
shape-generalizing cache indexes on:

* :func:`structure_key` hashes the canonical request with every loop
  extent, tensor shape, flop count, and the (shape-derived) chain name
  nulled out — two requests share a structure key exactly when they are
  the same chain family on the same hardware under the same config, and
  differ only in their loop extents;
* :func:`extent_vector` extracts those extents in a canonical order, so a
  near-miss lookup can rank same-structure entries by distance in
  log-extent space.

``FORMAT_VERSION`` is folded into both hashes so that a format bump
silently invalidates every stale entry instead of failing to decode it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional

from ..core.optimizer import ChimeraConfig
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..runtime.serialization import (
    FORMAT_VERSION,
    chain_to_dict,
    hardware_to_dict,
)


def config_to_dict(config: Optional[ChimeraConfig]) -> Dict[str, Any]:
    """Encode an optimizer config canonically (mapping fields sorted).

    ``None`` means "use the defaults", so it encodes as the default
    config's dict — structurally identical requests must collide.
    """
    data = dataclasses.asdict(config if config is not None else ChimeraConfig())
    for field in ("min_tiles", "quanta"):
        if data.get(field) is not None:
            data[field] = {name: data[field][name] for name in sorted(data[field])}
    return data


def canonical_request(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> Dict[str, Any]:
    """The JSON-ready payload a cache key is hashed from.

    Useful for debugging key mismatches: diff the canonical payloads of two
    requests that were expected to collide.
    """
    return {
        "format_version": FORMAT_VERSION,
        "chain": chain_to_dict(chain),
        "hardware": hardware_to_dict(hardware),
        "config": config_to_dict(config),
        "force_fusion": force_fusion,
    }


def _hash_payload(payload: Dict[str, Any]) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cache_key(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> str:
    """Stable content hash identifying one compilation request."""
    return _hash_payload(canonical_request(chain, hardware, config, force_fusion))


def structure_request(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> Dict[str, Any]:
    """The canonical request with everything shape-derived nulled out.

    Loop extents, tensor shapes, per-op flop counts and the chain name
    (which commonly embeds the shape, e.g. ``bmm_chain_b1_m128_...``) are
    replaced by ``None``; operator names, access patterns, dtypes, the
    hardware model and the config stay.  Two requests with equal structure
    payloads differ only in their loop extents — exactly the pairs whose
    plans can warm-start each other.
    """
    request = canonical_request(chain, hardware, config, force_fusion)
    chain_data = request["chain"]
    chain_data["name"] = None
    for op in chain_data["ops"]:
        op["loops"] = [[name, None, kind] for name, _, kind in op["loops"]]
        op["flops"] = None
    chain_data["tensors"] = {
        name: {"shape": None, "dtype": spec["dtype"]}
        for name, spec in chain_data["tensors"].items()
    }
    return request


def structure_key(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> str:
    """Bucketed key: hash of the extent-free canonical request."""
    return _hash_payload(structure_request(chain, hardware, config, force_fusion))


def extent_vector(chain: OperatorChain) -> List[int]:
    """Loop extents in canonical (op order, loop order) sequence.

    Same-structure chains produce equal-length vectors whose positions
    line up, so the shape index can measure their distance in log-extent
    space without re-deriving the IR.
    """
    return [int(loop.extent) for op in chain.ops for loop in op.loops]
