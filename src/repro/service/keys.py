"""Content-addressed cache keys for compilation requests.

A compiled plan is fully determined by the chain IR, the machine model, the
optimizer configuration, and the plan format the result is serialized in.
The cache key is therefore the SHA-256 of a *canonical* JSON encoding of
exactly those inputs: dict keys sorted, no whitespace, mappings inside the
optimizer config ordered.  Two structurally identical requests — even built
by different code paths or in different processes — hash to the same key,
which is what makes the on-disk store shareable across services and runs.

``FORMAT_VERSION`` is folded into the hash so that a format bump silently
invalidates every stale entry instead of failing to decode it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional

from ..core.optimizer import ChimeraConfig
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..runtime.serialization import (
    FORMAT_VERSION,
    chain_to_dict,
    hardware_to_dict,
)


def config_to_dict(config: Optional[ChimeraConfig]) -> Optional[Dict[str, Any]]:
    """Encode an optimizer config canonically (mapping fields sorted)."""
    if config is None:
        return None
    data = dataclasses.asdict(config)
    for field in ("min_tiles", "quanta"):
        if data.get(field) is not None:
            data[field] = {name: data[field][name] for name in sorted(data[field])}
    return data


def canonical_request(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> Dict[str, Any]:
    """The JSON-ready payload a cache key is hashed from.

    Useful for debugging key mismatches: diff the canonical payloads of two
    requests that were expected to collide.
    """
    return {
        "format_version": FORMAT_VERSION,
        "chain": chain_to_dict(chain),
        "hardware": hardware_to_dict(hardware),
        "config": config_to_dict(config),
        "force_fusion": force_fusion,
    }


def cache_key(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    force_fusion: Optional[bool] = None,
) -> str:
    """Stable content hash identifying one compilation request."""
    payload = json.dumps(
        canonical_request(chain, hardware, config, force_fusion),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
