"""Shape-generalizing plan index: nearest cached plan for a new shape.

A compile-service cache keyed on the full canonical request only ever hits
when the *exact* shape recurs.  Production workloads rarely oblige —
dynamic batch sizes and sequence lengths produce endless near-duplicates
of a handful of chain structures.  :class:`ShapeIndex` closes that gap:

* every compiled entry is recorded under its **structure key**
  (:func:`repro.service.keys.structure_key` — the canonical request with
  loop extents, tensor shapes, flops and the shape-mangled chain name
  nulled out) together with its **extent vector**
  (:func:`repro.service.keys.extent_vector`);
* a cache miss looks up its own structure key and receives the cached
  plans nearest in **log-extent space** — the natural metric for tile
  solves, whose bounds and optima move with the logarithm of the loop
  extents.

The index never affects what a compile returns, only how fast it runs:
the neighbor's plan seeds warm starts (:mod:`repro.core.warmstart`) whose
results are byte-identical to a cold compile.  Losing or corrupting the
index therefore costs latency, never correctness — which is why a
crash-truncated tail line is simply skipped on load.

Persistence is a single append-only JSONL file (``shape-index.jsonl``)
next to the cache shards, one record per ``put``; reloading replays the
file with last-write-wins per (structure, key).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

PathLike = Union[str, "os.PathLike[str]"]

#: File name of the persisted index, placed at the cache-directory root
#: (next to the ``shard-XX/`` subdirectories, never inside one — the index
#: spans every shard).
INDEX_FILENAME = "shape-index.jsonl"

#: Most-recent entries remembered per structure.  Shapes drift; bounding
#: the per-structure ring keeps lookups O(small) and the memory footprint
#: independent of service uptime.
DEFAULT_PER_STRUCTURE = 64


@dataclasses.dataclass(frozen=True)
class ShapeNeighbor:
    """One nearest-plan candidate for a missed shape.

    Attributes:
        key: the neighbor's full cache key (look the entry up there).
        extents: the neighbor's extent vector.
        distance: Euclidean distance in log-extent space.
    """

    key: str
    extents: List[int]
    distance: float


def log_extent_distance(
    a: Sequence[int], b: Sequence[int]
) -> Optional[float]:
    """Euclidean distance between two extent vectors in log space.

    ``None`` when the vectors disagree in length or contain non-positive
    extents — such records cannot belong to the same chain structure and
    are never offered as neighbors.
    """
    if len(a) != len(b):
        return None
    total = 0.0
    for x, y in zip(a, b):
        if x <= 0 or y <= 0:
            return None
        d = math.log(x) - math.log(y)
        total += d * d
    return math.sqrt(total)


class ShapeIndex:
    """Maps (structure key, extent vector) records to nearest cached plans.

    Thread-safe; all mutation happens under one lock.  With ``path=None``
    the index is memory-only (mirrors a memory-only plan cache).

    Args:
        path: JSONL file backing the index (created on first record).
        per_structure: most-recent entries kept per structure key.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        per_structure: int = DEFAULT_PER_STRUCTURE,
    ) -> None:
        if per_structure < 1:
            raise ValueError(
                f"per_structure must be >= 1, got {per_structure}"
            )
        self.path = pathlib.Path(path) if path is not None else None
        self.per_structure = per_structure
        # structure key -> (cache key -> extent vector), insertion-ordered
        # so the oldest record per structure is evicted first.
        self._structures: Dict[str, "OrderedDict[str, List[int]]"] = {}
        self._lock = threading.Lock()
        self._dropped_records = 0
        if self.path is not None:
            self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Replay the JSONL file; unparsable lines (a crash-truncated tail,
        an interleaved partial write) are counted and skipped."""
        assert self.path is not None
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self._dropped_records += 1
                continue
            if not self._valid_record(record):
                self._dropped_records += 1
                continue
            self._remember(
                record["structure"],
                record["key"],
                [int(v) for v in record["extents"]],
            )

    @staticmethod
    def _valid_record(record: Any) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("structure"), str)
            and isinstance(record.get("key"), str)
            and isinstance(record.get("extents"), list)
            and all(
                isinstance(v, int) and v > 0 for v in record["extents"]
            )
        )

    def _append_line(self, record: Dict[str, Any]) -> None:
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # O_APPEND writes of one short line are atomic on POSIX, so
        # concurrent services sharing a cache directory interleave whole
        # records; a torn line from a crash is skipped on load.
        with open(self.path, "a") as handle:
            handle.write(line + "\n")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _remember(
        self, structure: str, key: str, extents: List[int]
    ) -> None:
        ring = self._structures.get(structure)
        if ring is None:
            ring = OrderedDict()
            self._structures[structure] = ring
        ring.pop(key, None)
        ring[key] = extents
        while len(ring) > self.per_structure:
            ring.popitem(last=False)

    def record(
        self, structure: str, key: str, extents: Sequence[int]
    ) -> None:
        """Register a freshly cached plan under its structure key."""
        extents = [int(v) for v in extents]
        with self._lock:
            self._remember(structure, key, extents)
            if self.path is not None:
                try:
                    self._append_line(
                        {
                            "structure": structure,
                            "key": key,
                            "extents": extents,
                        }
                    )
                except OSError:
                    # The index is a latency optimization: failing to
                    # persist a record must never fail the compile.
                    pass

    def forget(self, key: str) -> None:
        """Drop every record pointing at ``key`` (entry deleted/corrupt)."""
        with self._lock:
            for ring in self._structures.values():
                ring.pop(key, None)

    def clear(self) -> None:
        """Drop all records and truncate the backing file."""
        with self._lock:
            self._structures.clear()
            self._dropped_records = 0
            if self.path is not None:
                try:
                    self.path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def neighbors(
        self,
        structure: str,
        extents: Sequence[int],
        limit: int = 4,
        exclude: Optional[str] = None,
    ) -> List[ShapeNeighbor]:
        """Nearest recorded plans for a missed shape, closest first.

        Ties in distance break on the cache key, so the ordering — and
        therefore which neighbor seeds the warm start — is deterministic
        across processes and dict orders.  ``exclude`` drops the missed
        request's own key (a stale self-record after an eviction).
        """
        probe = [int(v) for v in extents]
        with self._lock:
            ring = self._structures.get(structure)
            if not ring:
                return []
            candidates = list(ring.items())
        scored: List[ShapeNeighbor] = []
        for key, recorded in candidates:
            if exclude is not None and key == exclude:
                continue
            distance = log_extent_distance(probe, recorded)
            if distance is None:
                continue
            scored.append(
                ShapeNeighbor(key=key, extents=recorded, distance=distance)
            )
        scored.sort(key=lambda n: (n.distance, n.key))
        return scored[: max(0, limit)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(ring) for ring in self._structures.values())

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "structures": len(self._structures),
                "entries": sum(
                    len(ring) for ring in self._structures.values()
                ),
                "per_structure": self.per_structure,
                "dropped_records": self._dropped_records,
                "path": str(self.path) if self.path is not None else None,
            }
