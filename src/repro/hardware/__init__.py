"""Hardware machine models (the substrate standing in for real devices)."""

from .presets import (
    a100,
    a100_nvlinked_sms,
    all_presets,
    ascend_910,
    ascend_910_cluster,
    mesh_npu_16,
    multicore_presets,
    preset,
    xeon_gold_6240,
)
from .spec import (
    HardwareSpec,
    InterCoreLink,
    MatrixUnit,
    MemoryLevel,
    VectorUnit,
)

__all__ = [
    "HardwareSpec",
    "InterCoreLink",
    "MatrixUnit",
    "MemoryLevel",
    "VectorUnit",
    "a100",
    "a100_nvlinked_sms",
    "all_presets",
    "ascend_910",
    "ascend_910_cluster",
    "mesh_npu_16",
    "multicore_presets",
    "preset",
    "xeon_gold_6240",
]
