"""Hardware machine models (the substrate standing in for real devices)."""

from .presets import a100, all_presets, ascend_910, preset, xeon_gold_6240
from .spec import HardwareSpec, MatrixUnit, MemoryLevel, VectorUnit

__all__ = [
    "HardwareSpec",
    "MatrixUnit",
    "MemoryLevel",
    "VectorUnit",
    "a100",
    "all_presets",
    "ascend_910",
    "preset",
    "xeon_gold_6240",
]
