"""Hardware descriptions.

Chimera is hardware-parametric: the inter-block optimizer needs each memory
level's capacity and bandwidth (Eq. 2/3 of the paper), and the intra-block
micro-kernel generators need the register file / matrix-unit geometry.  A
:class:`HardwareSpec` bundles both, and doubles as the configuration of the
memory-hierarchy simulator that stands in for the paper's real devices.

Conventions:

* ``levels`` are ordered from the level closest to the compute units (L1 /
  shared memory / L0) outwards to DRAM.  DRAM is always the last level and
  has unlimited capacity.
* ``bandwidth`` of level ``d`` is the bandwidth of moving data *into* level
  ``d`` from level ``d+1`` (bytes/second), matching ``bw_d`` in Eq. 2.
* capacities of shared levels (e.g. an L3 cache shared by all cores) are
  divided by the number of concurrently resident blocks when used as a
  per-block tiling constraint.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Tuple

from ..ir.dtypes import DType

#: Topologies an :class:`InterCoreLink` may declare.
LINK_TOPOLOGIES = ("ring", "mesh", "all_to_all")


@dataclasses.dataclass(frozen=True)
class MemoryLevel:
    """One level of the on-chip memory hierarchy (or DRAM).

    Attributes:
        name: e.g. ``"L2"`` or ``"shared_memory"``.
        capacity: bytes; ``None`` means unbounded (DRAM).
        bandwidth: bytes/second this level can *deliver inward* — i.e. the
            boundary between this level and the next one in.  DRAM's value
            is therefore the device's DRAM bandwidth (Table I); the
            innermost level's value describes its register feed and is not
            used by the movement cost model.
        shared: whether all cores share this level (per-block capacity is
            then ``capacity / concurrent_blocks``).
        software_managed: True for scratchpads the kernel addresses
            explicitly (GPU shared memory, NPU L0/L1 buffers).  Plans may
            pin large intermediate buffers in software-managed levels
            (persistent-kernel style); hardware LRU caches cannot guarantee
            such residency, so the optimizer keeps intermediates at plain
            tile footprints there.
    """

    name: str
    capacity: Optional[int]
    bandwidth: float
    shared: bool = False
    software_managed: bool = False

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError(f"level {self.name!r}: capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError(f"level {self.name!r}: bandwidth must be positive")

    @property
    def is_unbounded(self) -> bool:
        return self.capacity is None


@dataclasses.dataclass(frozen=True)
class VectorUnit:
    """SIMD register file description (CPU backends).

    Attributes:
        num_registers: architectural vector registers (e.g. 32 ZMM).
        register_bits: width of one register.
        fma_pipeline_depth: concurrent FMAs needed to keep the pipeline busy
            (the paper sets 24 for Cascade Lake: 2 ports x 4-cycle latency
            x ... rounded to MI*NI = 24).
    """

    num_registers: int
    register_bits: int
    fma_pipeline_depth: int

    def lanes(self, dtype: DType) -> int:
        """Elements of ``dtype`` per register."""
        return self.register_bits // (8 * dtype.nbytes)


@dataclasses.dataclass(frozen=True)
class MatrixUnit:
    """Dedicated matrix engine (GPU tensor cores / NPU cube units).

    Attributes:
        m, n, k: the native tile multiplied per instruction
            (16x16x16 for WMMA and for the Ascend cube unit).
        name: e.g. ``"tensor_core"``.
    """

    name: str
    m: int
    n: int
    k: int


@dataclasses.dataclass(frozen=True)
class InterCoreLink:
    """The on-chip network connecting cores (FlashFuser-style scale-out).

    Declaring a link on a :class:`HardwareSpec` opens the block-to-core
    partitioning axis in the optimizer: a fused chain may be sharded over
    ``p`` cores, with replicated inputs, gathered intermediates and halo
    regions priced against this link.  Specs without a link keep the
    single-core aggregate model byte-for-byte.

    Attributes:
        bandwidth: aggregate link bytes/second (all cores combined).
        latency: seconds per exchange step (software + wire).
        topology: ``"ring"``, ``"mesh"`` or ``"all_to_all"`` — sets how many
            exchange steps a broadcast/gather collective needs.
        per_hop_cost: optional extra seconds per exchange step on top of
            ``latency`` (switch traversal, protocol overhead).
    """

    bandwidth: float
    latency: float
    topology: str = "ring"
    per_hop_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("inter-core link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("inter-core link latency must be non-negative")
        if self.topology not in LINK_TOPOLOGIES:
            raise ValueError(
                f"unknown link topology {self.topology!r}; "
                f"known: {list(LINK_TOPOLOGIES)}"
            )
        if self.per_hop_cost < 0:
            raise ValueError("per-hop cost must be non-negative")

    def collective_steps(self, cores: int) -> int:
        """Latency-bearing exchange steps to broadcast/gather over ``cores``.

        Ring: a pipelined collective crosses ``cores - 1`` neighbor links.
        Mesh: two sweeps of a ``sqrt(cores)`` grid (row then column).
        All-to-all: one step, every pair directly connected.
        """
        if cores <= 1:
            return 0
        if self.topology == "ring":
            return cores - 1
        if self.topology == "mesh":
            side = 1
            while side * side < cores:
                side += 1
            return 2 * (side - 1)
        return 1

    def step_time(self) -> float:
        """Seconds of fixed cost per exchange step."""
        return self.latency + self.per_hop_cost


@dataclasses.dataclass(frozen=True)
class HardwareSpec:
    """A complete machine model.

    Attributes:
        name: preset name.
        backend: ``"cpu"``, ``"gpu"`` or ``"npu"`` — selects the micro-kernel
            family during code generation.
        peak_flops: peak FP16 throughput of the dedicated units, flop/s.
        num_cores: processing cores (CPU cores / SMs / NPU cube cores); used
            to split shared-level capacity and to bound block parallelism.
        levels: memory hierarchy, innermost first, DRAM last.
        kernel_launch_overhead: seconds of fixed cost per kernel launch.
        vector_unit: present on CPU backends.
        matrix_unit: present on GPU/NPU backends.
        unified_buffer: extra staging buffer for intermediate tiles (Ascend's
            Unified Buffer); ``None`` elsewhere.  Constrains the intermediate
            tile footprint on NPU (Section VI-B, NPU discussion).
        unified_buffer_bandwidth: bytes/second the Unified Buffer sustains
            when staging fused intermediates; the paper identifies this as
            the NPU's fusion bottleneck for large GEMMs.
        link: inter-core network, or ``None`` for the single-core aggregate
            model.  Declaring a link enables block-to-core partitioning.
    """

    name: str
    backend: str
    peak_flops: float
    num_cores: int
    levels: Tuple[MemoryLevel, ...]
    kernel_launch_overhead: float = 5e-6
    vector_unit: Optional[VectorUnit] = None
    matrix_unit: Optional[MatrixUnit] = None
    unified_buffer: Optional[int] = None
    unified_buffer_bandwidth: float = 400e9
    link: Optional[InterCoreLink] = None

    def __post_init__(self) -> None:
        if self.backend not in ("cpu", "gpu", "npu"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if len(self.levels) < 2:
            raise ValueError("need at least one on-chip level plus DRAM")
        if not self.levels[-1].is_unbounded:
            raise ValueError("outermost level (DRAM) must be unbounded")
        for level in self.levels[:-1]:
            if level.is_unbounded:
                raise ValueError(f"on-chip level {level.name!r} must be bounded")

    # ------------------------------------------------------------------
    # hierarchy queries
    # ------------------------------------------------------------------
    @property
    def dram(self) -> MemoryLevel:
        return self.levels[-1]

    @property
    def on_chip_levels(self) -> Tuple[MemoryLevel, ...]:
        return self.levels[:-1]

    @property
    def innermost(self) -> MemoryLevel:
        return self.levels[0]

    def level(self, name: str) -> MemoryLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"{self.name} has no memory level {name!r}")

    def level_index(self, name: str) -> int:
        for index, level in enumerate(self.levels):
            if level.name == name:
                return index
        raise KeyError(f"{self.name} has no memory level {name!r}")

    def per_block_capacity(
        self, level: MemoryLevel, partitions: Optional[int] = None
    ) -> Optional[int]:
        """Capacity one computation block may assume at ``level``.

        Private levels give a block their full capacity; shared levels are
        split across the blocks resident at once — one per core by default,
        or ``partitions`` blocks when a chain is explicitly sharded over
        that many cores (fewer resident blocks ⇒ each gets a larger share).

        A degenerate share (the integer split rounds to zero bytes) is
        floored to 1 byte and reported via ``UserWarning`` — a constraint
        that tight makes every tile infeasible and points at a
        misconfigured level, not a plannable machine.
        """
        if level.capacity is None:
            return None
        if not level.shared:
            return level.capacity
        divisor = self.num_cores if partitions is None else partitions
        if divisor < 1:
            raise ValueError(f"partitions must be >= 1, got {divisor}")
        share = level.capacity // divisor
        if share == 0:
            warnings.warn(
                f"{self.name}: shared level {level.name!r} "
                f"({level.capacity} B) split {divisor} ways leaves no "
                "meaningful per-block share; flooring to 1 byte",
                UserWarning,
                stacklevel=2,
            )
            return 1
        return share

    # ------------------------------------------------------------------
    # roofline quantities
    # ------------------------------------------------------------------
    @property
    def dram_bandwidth(self) -> float:
        return self.dram.bandwidth

    @property
    def machine_balance(self) -> float:
        """Peak flop per DRAM byte (the "Peak Perf/BW" row of Table I)."""
        return self.peak_flops / self.dram_bandwidth

    def compute_time(self, flops: float, efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` at ``efficiency`` x peak."""
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return flops / (self.peak_flops * efficiency)

    def memory_time(self, bytes_moved: float, level_name: str) -> float:
        """Seconds to move ``bytes_moved`` into ``level_name``."""
        return bytes_moved / self.level(level_name).bandwidth

    def describe(self) -> str:
        lines = [
            f"{self.name} ({self.backend}): "
            f"{self.peak_flops / 1e12:.1f} TFLOP/s, "
            f"{self.num_cores} cores, "
            f"balance {self.machine_balance:.0f} flop/byte"
        ]
        for level in self.levels:
            cap = "inf" if level.is_unbounded else f"{level.capacity / 1024:.0f}KB"
            share = " shared" if level.shared else ""
            lines.append(
                f"  {level.name}: {cap}, {level.bandwidth / 1e9:.0f} GB/s{share}"
            )
        if self.vector_unit is not None:
            vu = self.vector_unit
            lines.append(
                f"  vector unit: {vu.num_registers} x {vu.register_bits}-bit "
                f"registers, pipeline depth {vu.fma_pipeline_depth}"
            )
        if self.matrix_unit is not None:
            mu = self.matrix_unit
            lines.append(
                f"  matrix unit: {mu.name} {mu.m}x{mu.n}x{mu.k}"
            )
        if self.unified_buffer is not None:
            lines.append(
                f"  unified buffer: {self.unified_buffer / 1024:.0f}KB, "
                f"{self.unified_buffer_bandwidth / 1e9:.0f} GB/s"
            )
        if self.link is not None:
            lines.append(
                f"  inter-core link: {self.link.topology}, "
                f"{self.link.bandwidth / 1e9:.0f} GB/s, "
                f"{self.link.latency * 1e6:.2f} us/step"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"HardwareSpec({self.name})"
