"""Machine-model presets mirroring the paper's Table I devices.

Peak FP16 throughput and DRAM bandwidth are taken directly from Table I of
the paper.  Cache capacities follow the paper's Section VI-A listing.
On-chip bandwidths are not published in the paper; the values here are
public microbenchmark estimates for the respective parts and are the knobs
the simulator exposes — the reproduction's conclusions depend on the *ratio*
between compute throughput and per-level bandwidth, which these preserve.
"""

from __future__ import annotations

import dataclasses

from .spec import (
    HardwareSpec,
    InterCoreLink,
    MatrixUnit,
    MemoryLevel,
    VectorUnit,
)

KB = 1024
MB = 1024 * KB
GB_S = 1e9
TFLOPS = 1e12


def xeon_gold_6240() -> HardwareSpec:
    """Intel Xeon Gold 6240 (Cascade Lake, AVX-512), 18 cores.

    Table I: 12 TFLOP/s FP16, 131 GB/s DRAM.  Section VI-A: 1.125MB L1
    (18 x 64KB), 18MB L2 (18 x 1MB), 24.75MB shared L3.
    """
    return HardwareSpec(
        name="xeon-gold-6240",
        backend="cpu",
        peak_flops=12 * TFLOPS,
        num_cores=18,
        levels=(
            MemoryLevel("L1", 64 * KB, 2000 * GB_S),
            MemoryLevel("L2", 1 * MB, 1000 * GB_S),
            MemoryLevel("L3", int(24.75 * MB), 400 * GB_S, shared=True),
            MemoryLevel("DRAM", None, 131 * GB_S),
        ),
        kernel_launch_overhead=2e-6,
        vector_unit=VectorUnit(
            num_registers=32, register_bits=512, fma_pipeline_depth=24
        ),
    )


def a100() -> HardwareSpec:
    """NVIDIA A100-40GB (Ampere), 108 SMs with tensor cores.

    Table I: 312 TFLOP/s FP16, 1555 GB/s HBM.  Section VI-A: up to 164KB
    shared memory per SM, 40.96MB L2.
    """
    return HardwareSpec(
        name="a100",
        backend="gpu",
        peak_flops=312 * TFLOPS,
        num_cores=108,
        levels=(
            MemoryLevel("SMEM", 164 * KB, 19400 * GB_S, software_managed=True),
            MemoryLevel("L2", int(40.96 * MB), 7000 * GB_S, shared=True),
            MemoryLevel("DRAM", None, 1555 * GB_S),
        ),
        kernel_launch_overhead=5e-6,
        matrix_unit=MatrixUnit("tensor_core", 16, 16, 16),
    )


def ascend_910() -> HardwareSpec:
    """Huawei Ascend 910 (DaVinci), 32 cube cores.

    Table I: 320 TFLOP/s FP16, 1200 GB/s HBM.  Section VI-A: 64KB L0A/L0B,
    256KB L0C, 1MB L1 buffer, 256KB Unified Buffer per core.  The Unified
    Buffer stages intermediate tiles between fused operators, which the paper
    identifies as the NPU's fusion bottleneck for large GEMMs.
    """
    return HardwareSpec(
        name="ascend-910",
        backend="npu",
        peak_flops=320 * TFLOPS,
        num_cores=32,
        levels=(
            MemoryLevel("L0", 384 * KB, 12000 * GB_S, software_managed=True),
            MemoryLevel("L1", 1 * MB, 4000 * GB_S, software_managed=True),
            MemoryLevel("DRAM", None, 1200 * GB_S),
        ),
        kernel_launch_overhead=2.5e-6,
        matrix_unit=MatrixUnit("cube", 16, 16, 16),
        unified_buffer=256 * KB,
        unified_buffer_bandwidth=400 * GB_S,
    )


def a100_nvlinked_sms() -> HardwareSpec:
    """A100 with the SM-to-SM path through the L2 crossbar modeled.

    Same Table I device as :func:`a100`, plus an all-to-all inter-core
    link: any SM reaches any other through the unified L2/crossbar, so a
    broadcast or gather collective completes in one exchange step.  The
    aggregate cross-SM bandwidth is bounded by the L2 fabric, well below
    the 7 TB/s L2 fill rate a single block sees.
    """
    return dataclasses.replace(
        a100(),
        name="a100-nvlinked-sms",
        link=InterCoreLink(
            bandwidth=4500 * GB_S,
            latency=0.3e-6,
            topology="all_to_all",
        ),
    )


def ascend_910_cluster() -> HardwareSpec:
    """Ascend 910 with the on-chip core ring bus modeled.

    Same Table I device as :func:`ascend_910`, plus the ring connecting
    the 32 cube cores: collectives pipeline around the ring, paying a
    step per neighbor hop.
    """
    return dataclasses.replace(
        ascend_910(),
        name="ascend-910-cluster",
        link=InterCoreLink(
            bandwidth=720 * GB_S,
            latency=1.0e-6,
            topology="ring",
        ),
    )


def mesh_npu_16() -> HardwareSpec:
    """Synthetic 16-core NPU on a 4x4 mesh NoC.

    Not a Table I device — a scale-out scenario the paper never reached:
    modest per-core compute, a *shared* on-chip SRAM whose per-block
    share grows as a chain is partitioned over fewer cores, and a mesh
    interconnect whose collectives sweep rows then columns.
    """
    return HardwareSpec(
        name="mesh-npu-16",
        backend="npu",
        peak_flops=128 * TFLOPS,
        num_cores=16,
        levels=(
            MemoryLevel("L0", 256 * KB, 8000 * GB_S, software_managed=True),
            MemoryLevel("SRAM", 16 * MB, 2000 * GB_S, shared=True),
            MemoryLevel("DRAM", None, 800 * GB_S),
        ),
        kernel_launch_overhead=2.5e-6,
        matrix_unit=MatrixUnit("cube", 16, 16, 16),
        link=InterCoreLink(
            bandwidth=400 * GB_S,
            latency=1.5e-6,
            topology="mesh",
            per_hop_cost=0.5e-6,
        ),
    )


_PRESETS = {
    "xeon-gold-6240": xeon_gold_6240,
    "a100": a100,
    "ascend-910": ascend_910,
    "a100-nvlinked-sms": a100_nvlinked_sms,
    "ascend-910-cluster": ascend_910_cluster,
    "mesh-npu-16": mesh_npu_16,
}

_MULTICORE = ("a100-nvlinked-sms", "ascend-910-cluster", "mesh-npu-16")


def preset(name: str) -> HardwareSpec:
    """Look up a preset by name.

    Raises:
        KeyError: for unknown names (message lists the valid ones).
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown hardware preset {name!r}; known: {sorted(_PRESETS)}"
        ) from None
    return factory()


def all_presets() -> tuple:
    """The single-core specs, one per Table I device.

    Deliberately excludes the link-bearing variants so gate baselines
    calibrated on the paper's devices stay put; use
    :func:`multicore_presets` (or both) for the scale-out family.
    """
    return tuple(
        factory()
        for name, factory in _PRESETS.items()
        if name not in _MULTICORE
    )


def multicore_presets() -> tuple:
    """The link-bearing specs opening the block-to-core partitioning axis."""
    return tuple(_PRESETS[name]() for name in _MULTICORE)
