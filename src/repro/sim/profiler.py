"""Profiling fusion plans on the simulated memory hierarchy.

This is the reproduction's stand-in for the paper's hardware profiling
(VTune / nvprof / NPU profilers): it executes a plan's block schedule
against :class:`MemoryHierarchySim` and reports measured per-boundary
traffic, cache hit rates and roofline time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Sequence

from ..codegen.program import BlockProgram, lower_plan
from ..core.movement import executed_flops
from ..core.plan import FusionPlan
from ..hardware.spec import HardwareSpec
from .cache import CacheStats
from .hierarchy import MemoryHierarchySim, SimConfig
from .timing import movement_times, roofline_time


@dataclasses.dataclass(frozen=True)
class SimReport:
    """Measured execution profile of one kernel (or kernel sequence).

    Attributes:
        name: workload name.
        hardware: machine model simulated.
        boundary_traffic: bytes crossing each on-chip level's outer
            boundary (the outermost entry is DRAM traffic).
        level_stats: per-level hit/miss counters.
        flops: floating point operations executed (includes recomputation).
        efficiency: sustained compute efficiency used for timing.
        launches: kernel launches in the sequence.
        blocks: computation blocks executed.
        launch_overhead_factor: per-system multiplier on the hardware's
            launch overhead (framework dispatch costs, graph runtimes).
        extra_stage_time: additional pipeline-stage time that bounds the
            kernel (the NPU Unified Buffer staging fused intermediates).
    """

    name: str
    hardware: HardwareSpec
    boundary_traffic: Mapping[str, float]
    level_stats: Mapping[str, CacheStats]
    flops: float
    efficiency: float
    launches: int
    blocks: int
    launch_overhead_factor: float = 1.0
    extra_stage_time: float = 0.0

    @property
    def dram_traffic(self) -> float:
        outer = self.hardware.on_chip_levels[-1].name
        return self.boundary_traffic[outer]

    def traffic(self, level_name: str) -> float:
        return self.boundary_traffic[level_name]

    def hit_rate(self, level_name: str) -> float:
        return self.level_stats[level_name].hit_rate

    @property
    def movement_times(self) -> Dict[str, float]:
        return movement_times(self.hardware, self.boundary_traffic)

    @property
    def compute_time(self) -> float:
        return self.hardware.compute_time(self.flops, self.efficiency)

    @property
    def time(self) -> float:
        base = roofline_time(
            self.hardware,
            self.flops,
            self.efficiency,
            self.boundary_traffic,
            launches=0,
        )
        overhead = (
            self.launches
            * self.hardware.kernel_launch_overhead
            * self.launch_overhead_factor
        )
        return max(base, self.extra_stage_time) + overhead

    def describe(self) -> str:
        lines = [
            f"sim report {self.name} on {self.hardware.name}: "
            f"{self.time * 1e6:.1f}us "
            f"({self.launches} launches, {self.blocks} blocks)"
        ]
        lines.append(
            f"  compute: {self.compute_time * 1e6:.1f}us "
            f"({self.flops / 1e9:.2f} GFLOP @ eff {self.efficiency:.2f})"
        )
        for level, traffic in self.boundary_traffic.items():
            t = self.movement_times[level]
            hit = self.hit_rate(level)
            lines.append(
                f"  {level}: traffic {traffic / 1e6:.2f}MB "
                f"({t * 1e6:.1f}us), hit rate {hit:.3f}"
            )
        if self.extra_stage_time > 0:
            lines.append(
                f"  unified buffer stage: {self.extra_stage_time * 1e6:.1f}us"
            )
        return "\n".join(lines)


def _run_trace(
    sim: MemoryHierarchySim, program: BlockProgram
) -> int:
    from .trace import materialize_trace

    read = sim.read
    write = sim.write
    # The materialized trace is cached on the program's compiled schedule,
    # so replaying the same program (per level, per boundary, per simulated
    # timing query) regenerates nothing.
    for access in materialize_trace(program):
        if access.write:
            write(access.key, access.nbytes)
        else:
            read(access.key, access.nbytes)
    return program.block_count()


def simulate_program(
    program: BlockProgram,
    hardware: HardwareSpec,
    *,
    efficiency: float = 1.0,
    launches: int = 1,
    name: Optional[str] = None,
    config: Optional[SimConfig] = None,
) -> SimReport:
    """Measure one block program on a fresh hierarchy.

    Dirty regions of the program's intermediate tensors are dead at kernel
    end (their consumers already ran inside the fused kernel) and are
    discarded rather than written back.
    """
    sim = MemoryHierarchySim(hardware, config)
    blocks = _run_trace(sim, program)
    sim.flush(frozenset(program.chain.intermediate_tensors()))
    flops = executed_flops(program.chain, program.order, program.tiles)
    return SimReport(
        name=name or program.chain.name,
        hardware=hardware,
        boundary_traffic=sim.boundary_traffic(),
        level_stats=sim.stats(),
        flops=flops,
        efficiency=efficiency,
        launches=launches,
        blocks=blocks,
    )


def simulate_plan(
    plan: FusionPlan,
    *,
    config: Optional[SimConfig] = None,
    name: Optional[str] = None,
) -> SimReport:
    """Measure a fusion plan through its full tiling hierarchy."""
    program = lower_plan(plan)
    launches = 1 if plan.fused else len(plan.chain.ops)
    report = simulate_program(
        program,
        plan.hardware,
        efficiency=plan.compute_efficiency,
        launches=launches,
        name=name or plan.chain.name,
        config=config,
    )
    return dataclasses.replace(
        report, extra_stage_time=plan.unified_buffer_cost
    )


def simulate_sequence(
    plans: Sequence[FusionPlan],
    *,
    name: str,
    config: Optional[SimConfig] = None,
    launch_overhead_factor: float = 1.0,
) -> SimReport:
    """Measure a sequence of kernels sharing one (warm) cache hierarchy.

    This models a library/compiler baseline running the chain as separate
    kernel launches: intermediates may still be resident in outer caches
    when the next kernel starts, but every kernel pays its launch overhead
    and its own inner-level traffic.
    """
    if not plans:
        raise ValueError("simulate_sequence needs at least one plan")
    hardware = plans[0].hardware
    sim = MemoryHierarchySim(hardware, config)
    blocks = 0
    flops = 0.0
    worst_efficiency = 1.0
    dead: set = set()
    for plan in plans:
        program = lower_plan(plan)
        blocks += _run_trace(sim, program)
        inner = plan.inner
        flops += executed_flops(plan.chain, inner.order, inner.tiles)
        worst_efficiency = min(worst_efficiency, plan.compute_efficiency)
        # Intermediates *within* one kernel are dead once it retires;
        # tensors passed between kernels of the sequence are not.
        dead.update(plan.chain.intermediate_tensors())
    sim.flush(frozenset(dead))
    return SimReport(
        name=name,
        hardware=hardware,
        boundary_traffic=sim.boundary_traffic(),
        level_stats=sim.stats(),
        flops=flops,
        efficiency=worst_efficiency,
        launches=len(plans),
        blocks=blocks,
        launch_overhead_factor=launch_overhead_factor,
        extra_stage_time=max(
            (plan.unified_buffer_cost for plan in plans), default=0.0
        ),
    )
