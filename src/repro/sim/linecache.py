"""Line-granularity set-associative cache simulation.

The primary measurement substrate (:mod:`repro.sim.cache`) tracks *tile
regions* — fast, and faithful to how block schedules move data.  This
module provides the ground-truth cross-check: a classic set-associative
LRU cache over 64-byte lines, with tensors laid out row-major in a flat
address space, exactly what the paper's hardware profilers measured.

Two engines produce **identical counters**:

* ``"scalar"`` — the original model: every element row of every region
  becomes per-line :meth:`SetAssociativeCache.access` calls through
  :class:`LineHierarchySim`.  Kept as the independent reference.
* ``"fast"`` (default) — the compiled path: the program's line-access
  stream is generated once with numpy (span arrays per region row,
  expanded and run-length coalesced) and memoized on the compiled
  schedule, then replayed through a batched LRU update.  Three exact
  equivalences make this lossless:

  - consecutive accesses to the same line with the same read/write kind
    are, after the first, guaranteed MRU hits in the innermost level and
    touch nothing else — so a run of length ``n`` contributes ``n - 1``
    straight to that level's hit counter;
  - reads walk inward-out, demand writes land in the innermost level,
    and a dirty victim evicted from level ``k`` installs into level
    ``k+1`` (the write-back path) — so level ``k+1``'s input stream is
    exactly level ``k``'s read misses interleaved with its dirty
    write-backs, and levels can still be simulated one at a time;
  - a boundary query therefore needs only the levels up to the requested
    one (lazy simulation), because a level's counters depend only on its
    own input stream.

The write-back installation is what makes fusion visible at line
granularity: a produced-then-consumed intermediate that outgrows the
innermost level migrates outward through the hierarchy instead of
falling off the chip, so its later reads hit in an outer level.
Stitched chains (:mod:`repro.ir.stitch`) lean on exactly this — the
bridge tensor between a CI block and its folded memory-intensive op
stays somewhere on chip, contributing zero DRAM-boundary *fills*
(:func:`boundary_fill_traffic` attributes them per tensor), whereas the
unstitched per-op programs write it back and re-read it cold.

The equivalence suite (``tests/test_compiled_schedule.py``) asserts
field-by-field equal :class:`CacheStats` between the engines.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen.executor import virtual_shapes
from ..codegen.program import BlockProgram
from ..codegen.schedule import compile_schedule
from ..hardware.spec import HardwareSpec
from .cache import CacheStats
from .trace import materialize_trace


def _geometry(capacity: int, line_bytes: int, ways: int) -> Tuple[int, int]:
    """Effective (ways, num_sets) of one level — shared by both engines.

    Capacities below one full set degrade associativity rather than
    rounding the cache away.
    """
    if capacity < line_bytes * ways:
        ways = max(1, capacity // line_bytes)
    num_sets = max(1, capacity // (line_bytes * ways))
    return ways, num_sets


class SetAssociativeCache:
    """An N-way set-associative LRU cache over fixed-size lines."""

    def __init__(
        self,
        name: str,
        capacity: int,
        line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        self.name = name
        self.line_bytes = line_bytes
        self.ways, self.num_sets = _geometry(capacity, line_bytes, ways)
        self.stats = CacheStats()
        # Per set: list of (tag, dirty), most recently used last.
        self._sets: List[List[Tuple[int, bool]]] = [
            [] for _ in range(self.num_sets)
        ]

    def access(self, line: int, *, write: bool = False) -> bool:
        """Touch one line number; returns True on hit.

        Misses fill the line (counted in ``fill_bytes`` for reads) and may
        evict the set's LRU way (dirty evictions count as write-backs).
        """
        hit, _ = self.demand(line, write=write)
        return hit

    def demand(
        self, line: int, *, write: bool = False
    ) -> Tuple[bool, Optional[int]]:
        """Demand access returning (hit, evicted dirty victim line).

        The victim (None when the eviction was clean or absent) lets a
        hierarchy install it into the next level outward — the write-back
        path that keeps produced-then-consumed intermediates on chip.
        """
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        for position, (resident, dirty) in enumerate(ways):
            if resident == tag:
                ways.pop(position)
                ways.append((tag, dirty or write))
                if write:
                    self.stats.write_hits += 1
                else:
                    self.stats.read_hits += 1
                return True, None
        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
            self.stats.fill_bytes += self.line_bytes
        ways.append((tag, write))
        if len(ways) > self.ways:
            victim_tag, dirty = ways.pop(0)
            if dirty:
                self.stats.writeback_bytes += self.line_bytes
                return False, victim_tag * self.num_sets + index
        return False, None

    def install(self, line: int) -> Optional[int]:
        """Install a dirty line written back from the level inward.

        Installs are not demand traffic: no hit/miss/fill counters move.
        The line lands dirty at MRU; an evicted dirty victim is counted
        as this level's write-back and returned for further cascading.
        """
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        for position, (resident, _) in enumerate(ways):
            if resident == tag:
                ways.pop(position)
                ways.append((tag, True))
                return None
        ways.append((tag, True))
        if len(ways) > self.ways:
            victim_tag, dirty = ways.pop(0)
            if dirty:
                self.stats.writeback_bytes += self.line_bytes
                return victim_tag * self.num_sets + index
        return None

    def flush(self) -> None:
        """Write back all dirty lines."""
        self.drain()

    def drain(self) -> List[int]:
        """Flush, returning the dirty lines in eviction order.

        A hierarchy installs them into the next level outward so the
        final level's write-back counter is the true DRAM write traffic.
        """
        dirty_lines: List[int] = []
        for index, ways in enumerate(self._sets):
            for tag, dirty in ways:
                if dirty:
                    self.stats.writeback_bytes += self.line_bytes
                    dirty_lines.append(tag * self.num_sets + index)
            ways.clear()
        return dirty_lines

    @property
    def traffic(self) -> float:
        return float(self.stats.fill_bytes + self.stats.writeback_bytes)


@dataclasses.dataclass(frozen=True)
class TensorLayout:
    """Row-major placement of one tensor in the flat address space."""

    base: int
    shape: Tuple[int, ...]
    strides: Tuple[int, ...]  # in elements
    elem_bytes: int


def build_layouts(chain) -> Dict[str, TensorLayout]:
    """Assign every tensor a line-aligned row-major address range."""
    layouts: Dict[str, TensorLayout] = {}
    cursor = 0
    shapes = virtual_shapes(chain)
    for name, spec in chain.tensors.items():
        shape = shapes[name]
        strides = [1] * len(shape)
        for axis in range(len(shape) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * shape[axis + 1]
        layouts[name] = TensorLayout(
            base=cursor,
            shape=tuple(shape),
            strides=tuple(strides),
            elem_bytes=spec.dtype.nbytes,
        )
        nbytes = strides[0] * shape[0] * spec.dtype.nbytes
        cursor += (nbytes + 4095) // 4096 * 4096  # page-align tensors
    return layouts


def region_lines(
    layout: TensorLayout,
    region: Tuple[Tuple[int, int], ...],
    line_bytes: int = 64,
) -> Iterator[Tuple[int, int]]:
    """Yield (first_line, last_line) spans covering a rectangular region.

    One span per contiguous row of the region (the innermost dimension is
    contiguous in row-major layout).
    """
    lo_last, hi_last = region[-1]
    if hi_last <= lo_last:
        return
    outer_ranges = region[:-1]

    def recurse(axis: int, offset: int) -> Iterator[Tuple[int, int]]:
        if axis == len(outer_ranges):
            start = (offset + lo_last * layout.strides[-1]) * layout.elem_bytes
            stop = (offset + (hi_last - 1) * layout.strides[-1] + 1) * layout.elem_bytes
            yield (
                (layout.base * layout.elem_bytes + start) // line_bytes,
                (layout.base * layout.elem_bytes + stop - 1) // line_bytes,
            )
            return
        lo, hi = outer_ranges[axis]
        for index in range(lo, hi):
            yield from recurse(axis + 1, offset + index * layout.strides[axis])

    yield from recurse(0, 0)


class LineHierarchySim:
    """Stacked set-associative line caches (the ground-truth model)."""

    def __init__(
        self,
        hardware: HardwareSpec,
        *,
        line_bytes: int = 64,
        ways: int = 8,
        shared_capacity_per_core: bool = True,
    ) -> None:
        self.hardware = hardware
        self.line_bytes = line_bytes
        self.caches: List[SetAssociativeCache] = [
            SetAssociativeCache(name, capacity, line_bytes, ways)
            for name, capacity in _level_capacities(
                hardware, shared_capacity_per_core
            )
        ]

    def _install(self, level: int, line: Optional[int]) -> None:
        """Cascade a written-back line outward from ``level``."""
        while line is not None and level < len(self.caches):
            line = self.caches[level].install(line)
            level += 1

    def _demand_read(self, level: int, line: int) -> None:
        """Read walking outward; victims install after the read passes.

        The ordering (read miss propagates to the next level before the
        victim of this level's fill installs there) mirrors the fast
        engine's event stream exactly, keeping the engines bit-identical.
        """
        if level >= len(self.caches):
            return
        hit, victim = self.caches[level].demand(line)
        if not hit:
            self._demand_read(level + 1, line)
        if victim is not None:
            self._install(level + 1, victim)

    def access_line(self, line: int, *, write: bool = False) -> None:
        if write:
            _, victim = self.caches[0].demand(line, write=True)
            if victim is not None:
                self._install(1, victim)
            return
        self._demand_read(0, line)

    def access_span(self, first: int, last: int, *, write: bool = False) -> None:
        for line in range(first, last + 1):
            self.access_line(line, write=write)

    def flush(self) -> None:
        """Drain inner levels outward: dead data still pays every hop."""
        for index, cache in enumerate(self.caches):
            for line in cache.drain():
                self._install(index + 1, line)

    def boundary_traffic(self) -> Dict[str, float]:
        """Bytes crossing each level's outer boundary (fills + write-backs)."""
        return {cache.name: cache.traffic for cache in self.caches}


def _level_capacities(
    hardware: HardwareSpec, shared_capacity_per_core: bool
) -> List[Tuple[str, int]]:
    levels: List[Tuple[str, int]] = []
    for level in hardware.on_chip_levels:
        capacity = level.capacity
        if level.shared and shared_capacity_per_core:
            capacity = hardware.per_block_capacity(level)
        levels.append((level.name, int(capacity)))
    return levels


# ----------------------------------------------------------------------
# fast engine: vectorized stream generation + batched LRU replay
# ----------------------------------------------------------------------
def _ragged_ramp(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0), [0..l1), ...`` concatenated, for int64 ``lengths``."""
    total = int(lengths.sum())
    return np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )


def _site_lines(
    layout: TensorLayout,
    site,
    line_bytes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """All line numbers one access site touches, for every block at once.

    The vectorized equivalent of :func:`region_lines` plus per-span
    expansion, batched over the site's ``(B, ndim, 2)`` region table:
    ragged outer-dimension offsets (repeat + ramp per dimension), then
    first/last line per contiguous row and one final expansion.  Blocks
    with empty regions (``nbytes == 0``) contribute nothing, matching the
    materialized trace.

    Returns:
        ``(lines, counts)`` — the concatenated int64 line numbers in
        block-major, row-major order, and the number of lines each block
        contributed (one entry per block, zeros for empty regions).
    """
    regions = site.regions
    blocks, ndim = regions.shape[0], regions.shape[1]
    lo = regions[..., 0]
    hi = regions[..., 1]
    blk = np.flatnonzero(site.nbytes > 0)
    offsets = np.zeros(blk.shape[0], dtype=np.int64)
    for axis in range(ndim - 1):
        stride = layout.strides[axis]
        widths = hi[blk, axis] - lo[blk, axis]
        ramp = _ragged_ramp(widths)
        offsets = np.repeat(offsets + lo[blk, axis] * stride, widths)
        offsets += ramp * stride
        blk = np.repeat(blk, widths)
    elem_bytes = layout.elem_bytes
    base_bytes = layout.base * elem_bytes
    stride_last = layout.strides[-1]
    first = (
        base_bytes + (offsets + lo[blk, -1] * stride_last) * elem_bytes
    ) // line_bytes
    last = (
        base_bytes
        + ((offsets + (hi[blk, -1] - 1) * stride_last + 1) * elem_bytes)
        - 1
    ) // line_bytes
    lengths = last - first + 1
    lines = np.repeat(first, lengths) + _ragged_ramp(lengths)
    counts = np.bincount(
        np.repeat(blk, lengths), minlength=blocks
    ).astype(np.int64)
    return lines, counts


@dataclasses.dataclass
class _LineStream:
    """A program's coalesced line-access stream (memoized per schedule).

    ``lines``/``writes`` are run-length coalesced over consecutive
    accesses with equal (line, kind); ``repeat_read_hits`` /
    ``repeat_write_hits`` hold the folded repeats — a run's second and
    later accesses are guaranteed MRU hits in the innermost level, so
    they land straight in its hit counters without touching LRU state.
    """

    lines: List[int]
    writes: List[bool]
    repeat_read_hits: int
    repeat_write_hits: int
    #: per-geometry set indices (keyed by num_sets).  Plain int lists on
    #: purpose: ints are not GC-tracked, so the replay loop — which pairs
    #: them with ``lines``/``writes`` through a lazy ``zip`` — allocates
    #: no collector-visible objects.  (Materializing ``list(zip(...))``
    #: here costs ~80 gen-0 collections per replay.)
    set_indices: Dict[int, List[int]] = dataclasses.field(default_factory=dict)

    def sets_for(self, num_sets: int) -> List[int]:
        cached = self.set_indices.get(num_sets)
        if cached is None:
            cached = (
                np.asarray(self.lines, dtype=np.int64) % num_sets
            ).tolist()
            self.set_indices[num_sets] = cached
        return cached


def _line_stream(program: BlockProgram, line_bytes: int) -> _LineStream:
    """Build (or fetch) the memoized line stream of a program.

    Each access site expands to its lines for *all* blocks in one numpy
    pass (:func:`_site_lines`); the per-(block, site) chunks are then
    scattered into global execution order — blocks by their traversal
    position, sites of one block reads-then-writes, exactly the
    materialized trace's order.  Cached in the compiled schedule's
    scratch space keyed by ``line_bytes`` — the layouts derive from the
    chain alone, so the schedule digest subsumes them.
    """
    schedule = compile_schedule(program)
    key = ("line_stream", line_bytes)
    cached = schedule.cache.get(key)
    if cached is not None:
        return cached

    layouts = build_layouts(schedule.chain)
    site_stride = max(
        (len(table.sites) for table in schedule.tables), default=1
    )
    chunk_keys: List[np.ndarray] = []
    chunk_lens: List[np.ndarray] = []
    chunk_writes: List[np.ndarray] = []
    site_chunks: List[np.ndarray] = []
    for table in schedule.tables:
        for ordinal, site in enumerate(table.sites):
            lines, counts = _site_lines(
                layouts[site.tensor], site, line_bytes
            )
            if not lines.shape[0]:
                continue
            valid = np.flatnonzero(counts)
            site_chunks.append(lines)
            chunk_keys.append(table.positions[valid] * site_stride + ordinal)
            chunk_lens.append(counts[valid])
            chunk_writes.append(
                np.full(valid.shape[0], site.write, dtype=bool)
            )
    if not site_chunks:
        stream = _LineStream([], [], 0, 0)
        schedule.cache[key] = stream
        return stream

    keys = np.concatenate(chunk_keys)
    lens = np.concatenate(chunk_lens)
    flags = np.concatenate(chunk_writes)
    unordered = np.concatenate(site_chunks)
    # Scatter chunks to their stream positions: sorting the (few hundred)
    # chunk keys sidesteps a full sort of the line array itself.
    order = np.argsort(keys, kind="stable")
    sorted_lens = lens[order]
    starts = np.empty(order.shape[0], dtype=np.int64)
    starts[order] = np.cumsum(sorted_lens) - sorted_lens
    dest = np.repeat(starts, lens) + _ragged_ramp(lens)
    lines = np.empty(unordered.shape[0], dtype=np.int64)
    lines[dest] = unordered
    writes = np.empty(unordered.shape[0], dtype=bool)
    writes[dest] = np.repeat(flags, lens)
    keep = np.empty(lines.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = (lines[1:] != lines[:-1]) | (writes[1:] != writes[:-1])
    starts = np.flatnonzero(keep)
    repeats = np.diff(np.append(starts, lines.shape[0])) - 1
    run_writes = writes[starts]
    stream = _LineStream(
        lines=lines[starts].tolist(),
        writes=run_writes.tolist(),
        repeat_read_hits=int(repeats[~run_writes].sum()),
        repeat_write_hits=int(repeats[run_writes].sum()),
    )
    schedule.cache[key] = stream
    return stream


def _replay_innermost(
    stream: _LineStream,
    ways: int,
    num_sets: int,
    line_bytes: int,
    collect_misses: bool,
) -> Tuple[CacheStats, List[int]]:
    """Replay the full read/write stream through the innermost level.

    Per set a plain dict keyed by line (insertion order = LRU order,
    pop + reinsert = move-to-MRU) holds the dirty bit.  Returns the
    level's post-flush stats and (optionally) its output event stream —
    the next level's input: read misses interleaved, in order, with the
    dirty victims this level writes back (``line << 1 | kind``, kind 1
    for a write-back install).
    """
    sets: List[Dict[int, bool]] = [dict() for _ in range(num_sets)]
    read_hits = read_misses = write_hits = write_misses = 0
    writeback_lines = 0
    events: List[int] = []
    emit = events.append
    sentinel = -1  # dirty bits are bools; -1 marks "absent"

    for line, set_index, write in zip(
        stream.lines, stream.sets_for(num_sets), stream.writes
    ):
        entries = sets[set_index]
        dirty = entries.pop(line, sentinel)
        if dirty is sentinel:
            if write:
                write_misses += 1
            else:
                read_misses += 1
                if collect_misses:
                    emit(line << 1)
            entries[line] = write
            if len(entries) > ways:
                victim = next(iter(entries))
                if entries.pop(victim):
                    writeback_lines += 1
                    if collect_misses:
                        emit((victim << 1) | 1)
        else:
            entries[line] = dirty or write
            if write:
                write_hits += 1
            else:
                read_hits += 1

    # Flush: every still-resident dirty line writes back (installing
    # into the next level outward, exactly like mid-stream victims).
    for entries in sets:
        for line, dirty in entries.items():
            if dirty:
                writeback_lines += 1
                if collect_misses:
                    emit((line << 1) | 1)

    stats = CacheStats(
        read_hits=read_hits + stream.repeat_read_hits,
        read_misses=read_misses,
        write_hits=write_hits + stream.repeat_write_hits,
        write_misses=write_misses,
        fill_bytes=read_misses * line_bytes,
        writeback_bytes=writeback_lines * line_bytes,
    )
    return stats, events


def _replay_events(
    events: Sequence[int],
    ways: int,
    num_sets: int,
    line_bytes: int,
    collect_misses: bool,
) -> Tuple[CacheStats, List[int]]:
    """Replay one outer level's input event stream.

    Events are the inner level's read misses (demand reads here) and its
    dirty write-backs (installs here).  Installs are not demand traffic:
    they land dirty at MRU without touching hit/miss/fill counters, and
    they never fetch from the next level on absence — data arrives from
    inside the chip.  The level's own output stream has the same shape,
    so levels still factor and a boundary query stays lazy.
    """
    sets: List[Dict[int, bool]] = [dict() for _ in range(num_sets)]
    read_hits = read_misses = 0
    writeback_lines = 0
    out: List[int] = []
    emit = out.append
    sentinel = -1
    for event in events:
        line = event >> 1
        entries = sets[line % num_sets]
        dirty = entries.pop(line, sentinel)
        if event & 1:  # write-back install from the level inward
            entries[line] = True
            if dirty is sentinel and len(entries) > ways:
                victim = next(iter(entries))
                if entries.pop(victim):
                    writeback_lines += 1
                    if collect_misses:
                        emit((victim << 1) | 1)
        elif dirty is sentinel:  # demand read miss
            read_misses += 1
            if collect_misses:
                emit(line << 1)
            entries[line] = False
            if len(entries) > ways:
                victim = next(iter(entries))
                if entries.pop(victim):
                    writeback_lines += 1
                    if collect_misses:
                        emit((victim << 1) | 1)
        else:  # demand read hit (dirty bit survives)
            entries[line] = dirty
            read_hits += 1

    for entries in sets:
        for line, dirty in entries.items():
            if dirty:
                writeback_lines += 1
                if collect_misses:
                    emit((line << 1) | 1)

    stats = CacheStats(
        read_hits=read_hits,
        read_misses=read_misses,
        fill_bytes=read_misses * line_bytes,
        writeback_bytes=writeback_lines * line_bytes,
    )
    return stats, out


def simulate_movement_lines(
    chain,
    hardware: HardwareSpec,
    program: BlockProgram,
    *,
    line_bytes: int = 64,
    ways: int = 8,
    shared_capacity_per_core: bool = True,
    upto_level: Optional[str] = None,
    engine: str = "fast",
) -> Dict[str, CacheStats]:
    """Per-level line-cache counters for a schedule (post-flush).

    Args:
        upto_level: stop after this level (fast engine only) — exact,
            because a level's counters depend only on its own input
            stream.  ``None`` simulates the whole hierarchy.
        engine: ``"fast"`` (vectorized stream + batched LRU) or
            ``"scalar"`` (per-line :class:`LineHierarchySim` reference).

    Returns:
        ``{level name: CacheStats}`` for every simulated level.
    """
    levels = _level_capacities(hardware, shared_capacity_per_core)
    if engine == "scalar":
        layouts = build_layouts(chain)
        sim = LineHierarchySim(
            hardware,
            line_bytes=line_bytes,
            ways=ways,
            shared_capacity_per_core=shared_capacity_per_core,
        )
        for access in materialize_trace(program):
            layout = layouts[access.tensor]
            for first, last in region_lines(layout, access.region, line_bytes):
                sim.access_span(first, last, write=access.write)
        sim.flush()
        stats = {cache.name: cache.stats for cache in sim.caches}
        if upto_level is not None:
            names = [name for name, _ in levels]
            cutoff = names.index(upto_level) + 1
            stats = {name: stats[name] for name in names[:cutoff]}
        return stats
    if engine != "fast":
        raise ValueError(
            f"unknown line-sim engine {engine!r} (use 'fast' or 'scalar')"
        )

    stream = _line_stream(program, line_bytes)
    last = len(levels) - 1
    if upto_level is not None:
        last = [name for name, _ in levels].index(upto_level)

    results: Dict[str, CacheStats] = {}
    events: List[int] = []
    for index in range(last + 1):
        name, capacity = levels[index]
        eff_ways, num_sets = _geometry(capacity, line_bytes, ways)
        if index == 0:
            stats, events = _replay_innermost(
                stream, eff_ways, num_sets, line_bytes,
                collect_misses=index < last,
            )
        else:
            # This level's input: the previous level's read misses plus
            # its dirty write-backs, interleaved in eviction order.
            stats, events = _replay_events(
                events, eff_ways, num_sets, line_bytes,
                collect_misses=index < last,
            )
        results[name] = stats
    return results


def measure_movement_lines(
    chain,
    hardware: HardwareSpec,
    program: BlockProgram,
    level: Optional[str] = None,
    *,
    line_bytes: int = 64,
    ways: int = 8,
    engine: str = "fast",
) -> float:
    """Line-granularity measured traffic at one boundary for a schedule.

    The default ``"fast"`` engine replays the memoized vectorized line
    stream and simulates only the levels up to the requested boundary;
    ``"scalar"`` is the original per-line reference.  Both produce the
    same number.
    """
    if level is None:
        level = hardware.innermost.name
    stats = simulate_movement_lines(
        chain,
        hardware,
        program,
        line_bytes=line_bytes,
        ways=ways,
        upto_level=level,
        engine=engine,
    )
    level_stats = stats[level]
    return float(level_stats.fill_bytes + level_stats.writeback_bytes)


def boundary_fill_traffic(
    chain,
    hardware: HardwareSpec,
    program: BlockProgram,
    level: Optional[str] = None,
    *,
    line_bytes: int = 64,
    ways: int = 8,
    shared_capacity_per_core: bool = True,
) -> Dict[str, int]:
    """Per-tensor fill bytes a level fetches from the next level outward.

    With ``level`` left at the outermost on-chip level this is the read
    traffic crossing the DRAM boundary, attributed to tensors by address
    span (tensor placements are page-aligned, so no line is shared).
    Tensors that never miss at the level — e.g. a stitched bridge tensor
    written on chip and re-read before eviction from the hierarchy — get
    a zero entry, which is how the stitching suite proves an
    intermediate's round trip disappeared rather than just shrank.

    Only fills are attributed: write-backs of dead intermediates at the
    final flush are unavoidable for any cache (it cannot know the data
    is dead), so the read side is where stitching's saving shows.
    """
    levels = _level_capacities(hardware, shared_capacity_per_core)
    names = [name for name, _ in levels]
    if level is None:
        level = names[-1]
    stream = _line_stream(program, line_bytes)
    events: Sequence[int] = []
    for index in range(names.index(level) + 1):
        _, capacity = levels[index]
        eff_ways, num_sets = _geometry(capacity, line_bytes, ways)
        if index == 0:
            _, events = _replay_innermost(
                stream, eff_ways, num_sets, line_bytes, collect_misses=True
            )
        else:
            _, events = _replay_events(
                events, eff_ways, num_sets, line_bytes, collect_misses=True
            )

    layouts = build_layouts(chain)
    starts, ends, order = [], [], []
    for name, layout in sorted(
        layouts.items(), key=lambda item: item[1].base
    ):
        start = layout.base * layout.elem_bytes // line_bytes
        nbytes = layout.strides[0] * layout.shape[0] * layout.elem_bytes
        starts.append(start)
        ends.append(start + (nbytes + line_bytes - 1) // line_bytes)
        order.append(name)

    counts = {name: 0 for name in layouts}
    if events:
        raw = np.asarray(events, dtype=np.int64)
        lines = raw[(raw & 1) == 0] >> 1  # demand-read fills only
        slots = np.searchsorted(np.asarray(starts), lines, side="right") - 1
        for slot, count in zip(*np.unique(slots, return_counts=True)):
            if 0 <= slot < len(order) and lines[slots == slot].max() < ends[slot]:
                counts[order[slot]] += int(count) * line_bytes
    return counts
