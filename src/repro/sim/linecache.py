"""Line-granularity set-associative cache simulation.

The primary measurement substrate (:mod:`repro.sim.cache`) tracks *tile
regions* — fast, and faithful to how block schedules move data.  This
module provides the ground-truth cross-check: a classic set-associative
LRU cache over 64-byte lines, with tensors laid out row-major in a flat
address space, exactly what the paper's hardware profilers measured.

It is orders of magnitude slower (every element row becomes line touches),
so it is used on scaled-down problems to validate that the region
simulator and Algorithm 1 agree with real-cache behaviour
(``tests/test_linecache.py``, Figure 8's credibility check).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from ..codegen.executor import virtual_shapes
from ..codegen.program import BlockProgram
from ..hardware.spec import HardwareSpec
from .cache import CacheStats
from .trace import trace_program


class SetAssociativeCache:
    """An N-way set-associative LRU cache over fixed-size lines."""

    def __init__(
        self,
        name: str,
        capacity: int,
        line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        if capacity < line_bytes * ways:
            ways = max(1, capacity // line_bytes)
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, capacity // (line_bytes * ways))
        self.stats = CacheStats()
        # Per set: list of (tag, dirty), most recently used last.
        self._sets: List[List[Tuple[int, bool]]] = [
            [] for _ in range(self.num_sets)
        ]

    def access(self, line: int, *, write: bool = False) -> bool:
        """Touch one line number; returns True on hit.

        Misses fill the line (counted in ``fill_bytes`` for reads) and may
        evict the set's LRU way (dirty evictions count as write-backs).
        """
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        for position, (resident, dirty) in enumerate(ways):
            if resident == tag:
                ways.pop(position)
                ways.append((tag, dirty or write))
                if write:
                    self.stats.write_hits += 1
                else:
                    self.stats.read_hits += 1
                return True
        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
            self.stats.fill_bytes += self.line_bytes
        ways.append((tag, write))
        if len(ways) > self.ways:
            _, dirty = ways.pop(0)
            if dirty:
                self.stats.writeback_bytes += self.line_bytes
        return False

    def flush(self) -> None:
        """Write back all dirty lines."""
        for ways in self._sets:
            for _, dirty in ways:
                if dirty:
                    self.stats.writeback_bytes += self.line_bytes
            ways.clear()

    @property
    def traffic(self) -> float:
        return float(self.stats.fill_bytes + self.stats.writeback_bytes)


@dataclasses.dataclass(frozen=True)
class TensorLayout:
    """Row-major placement of one tensor in the flat address space."""

    base: int
    shape: Tuple[int, ...]
    strides: Tuple[int, ...]  # in elements
    elem_bytes: int


def build_layouts(chain) -> Dict[str, TensorLayout]:
    """Assign every tensor a line-aligned row-major address range."""
    layouts: Dict[str, TensorLayout] = {}
    cursor = 0
    shapes = virtual_shapes(chain)
    for name, spec in chain.tensors.items():
        shape = shapes[name]
        strides = [1] * len(shape)
        for axis in range(len(shape) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * shape[axis + 1]
        layouts[name] = TensorLayout(
            base=cursor,
            shape=tuple(shape),
            strides=tuple(strides),
            elem_bytes=spec.dtype.nbytes,
        )
        nbytes = strides[0] * shape[0] * spec.dtype.nbytes
        cursor += (nbytes + 4095) // 4096 * 4096  # page-align tensors
    return layouts


def region_lines(
    layout: TensorLayout,
    region: Tuple[Tuple[int, int], ...],
    line_bytes: int = 64,
) -> Iterator[Tuple[int, int]]:
    """Yield (first_line, last_line) spans covering a rectangular region.

    One span per contiguous row of the region (the innermost dimension is
    contiguous in row-major layout).
    """
    lo_last, hi_last = region[-1]
    if hi_last <= lo_last:
        return
    outer_ranges = region[:-1]

    def recurse(axis: int, offset: int) -> Iterator[Tuple[int, int]]:
        if axis == len(outer_ranges):
            start = (offset + lo_last * layout.strides[-1]) * layout.elem_bytes
            stop = (offset + (hi_last - 1) * layout.strides[-1] + 1) * layout.elem_bytes
            yield (
                (layout.base * layout.elem_bytes + start) // line_bytes,
                (layout.base * layout.elem_bytes + stop - 1) // line_bytes,
            )
            return
        lo, hi = outer_ranges[axis]
        for index in range(lo, hi):
            yield from recurse(axis + 1, offset + index * layout.strides[axis])

    yield from recurse(0, 0)


class LineHierarchySim:
    """Stacked set-associative line caches (the ground-truth model)."""

    def __init__(
        self,
        hardware: HardwareSpec,
        *,
        line_bytes: int = 64,
        ways: int = 8,
        shared_capacity_per_core: bool = True,
    ) -> None:
        self.hardware = hardware
        self.line_bytes = line_bytes
        self.caches: List[SetAssociativeCache] = []
        for level in hardware.on_chip_levels:
            capacity = level.capacity
            if level.shared and shared_capacity_per_core:
                capacity = hardware.per_block_capacity(level)
            self.caches.append(
                SetAssociativeCache(level.name, int(capacity), line_bytes, ways)
            )

    def access_line(self, line: int, *, write: bool = False) -> None:
        if write:
            self.caches[0].access(line, write=True)
            return
        for cache in self.caches:
            if cache.access(line):
                return

    def access_span(self, first: int, last: int, *, write: bool = False) -> None:
        for line in range(first, last + 1):
            self.access_line(line, write=write)

    def flush(self) -> None:
        for cache in self.caches:
            cache.flush()

    def boundary_traffic(self) -> Dict[str, float]:
        """Bytes crossing each level's outer boundary (fills + write-backs)."""
        return {cache.name: cache.traffic for cache in self.caches}


def measure_movement_lines(
    chain,
    hardware: HardwareSpec,
    program: BlockProgram,
    level: Optional[str] = None,
    *,
    line_bytes: int = 64,
    ways: int = 8,
) -> float:
    """Line-granularity measured traffic at one boundary for a schedule.

    Slow (element-row expansion); intended for small validation problems.
    """
    if level is None:
        level = hardware.innermost.name
    layouts = build_layouts(chain)
    sim = LineHierarchySim(hardware, line_bytes=line_bytes, ways=ways)
    for access in trace_program(program):
        layout = layouts[access.tensor]
        for first, last in region_lines(layout, access.region, line_bytes):
            sim.access_span(first, last, write=access.write)
    sim.flush()
    return sim.boundary_traffic()[level]
