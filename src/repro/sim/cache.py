"""Region-granularity LRU cache.

The simulator tracks *tile regions* (the unit the block schedule moves) as
cache entries rather than individual lines: schedules access regions on a
regular block grid, so reuse shows up as repeated region keys, and halo
overlap between neighbouring regions is charged as movement — matching how
the analytical model accounts for it (footprint x trips counts overlap
bytes too).

Write policy is write-back / write-allocate-without-fetch: a write miss
allocates the region dirty without inbound traffic, and dirty evictions
produce write-back traffic toward the next level out.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

EvictionCallback = Callable[[Hashable, int, bool], None]
"""Called with (key, nbytes, dirty) when an entry leaves the cache."""


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    fill_bytes: int = 0
    writeback_bytes: int = 0

    @property
    def accesses(self) -> int:
        return (
            self.read_hits + self.read_misses
            + self.write_hits + self.write_misses
        )

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        if total == 0:
            return 0.0
        return (self.read_hits + self.write_hits) / total

    @property
    def read_hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        if total == 0:
            return 0.0
        return self.read_hits / total


class RegionCache:
    """An LRU cache over arbitrary hashable region keys.

    Attributes:
        name: level name for reporting.
        capacity: bytes; ``None`` = unbounded (models DRAM: everything hits).
    """

    def __init__(
        self,
        name: str,
        capacity: Optional[int],
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"cache {name!r}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[int, bool]]" = OrderedDict()
        self._used = 0
        self._on_evict = on_evict

    # ------------------------------------------------------------------
    @property
    def on_evict(self) -> Optional[EvictionCallback]:
        """Callback invoked with (key, nbytes, dirty) on every eviction.

        Public so hierarchy builders can chain levels (spill dirty
        evictions into the next level out) without reaching into private
        state.
        """
        return self._on_evict

    @on_evict.setter
    def on_evict(self, callback: Optional[EvictionCallback]) -> None:
        self._on_evict = callback

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable, nbytes: int, *, write: bool = False) -> bool:
        """Touch a region; returns True on hit.

        A miss inserts the region (dirty if writing) and evicts LRU entries
        until the capacity holds.  A region larger than the whole cache is
        counted as a miss and streamed through (not cached).
        """
        entry = self._entries.get(key)
        if entry is not None:
            size, dirty = entry
            self._entries.move_to_end(key)
            if write and not dirty:
                self._entries[key] = (size, True)
            if write:
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return True

        if write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
            self.stats.fill_bytes += nbytes
        if self.capacity is not None and nbytes > self.capacity:
            # Streaming access: too large to retain.
            if write and self._on_evict is not None:
                self._on_evict(key, nbytes, True)
                self.stats.writeback_bytes += nbytes
            return False
        self._entries[key] = (nbytes, write)
        self._used += nbytes
        self._shrink()
        return False

    def _shrink(self) -> None:
        if self.capacity is None:
            return
        while self._used > self.capacity and self._entries:
            key, (size, dirty) = self._entries.popitem(last=False)
            self._used -= size
            if dirty:
                self.stats.writeback_bytes += size
            if self._on_evict is not None:
                self._on_evict(key, size, dirty)

    def flush(self, discard=None) -> None:
        """Evict everything (end of run); dirty entries write back.

        Args:
            discard: optional predicate on keys; matching entries are
                dropped without a write-back (dead data — e.g. a fused
                kernel's intermediate tensors, which no one will read).
        """
        while self._entries:
            key, (size, dirty) = self._entries.popitem(last=False)
            self._used -= size
            if discard is not None and discard(key):
                continue
            if dirty:
                self.stats.writeback_bytes += size
            if self._on_evict is not None:
                self._on_evict(key, size, dirty)

    def invalidate_clean(self) -> None:
        """Drop clean entries without write-backs (kernel boundary on GPU)."""
        dirty_entries = OrderedDict(
            (k, v) for k, v in self._entries.items() if v[1]
        )
        self._used = sum(size for size, _ in dirty_entries.values())
        self._entries = dirty_entries
