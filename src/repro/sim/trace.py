"""Region access traces from block programs.

Each computation block reads tiles of its input tensors and writes a tile
of its output; the trace is the resulting stream of (tensor, region) touches
in execution order.  Region keys are derived from clamped element ranges, so
edge blocks and halo overlap behave exactly like on the device.

:func:`trace_program` replays the program's compiled schedule
(:mod:`repro.codegen.schedule`): regions and byte counts come from the
precomputed per-op block tables, and the materialized access list is cached
on the schedule, so repeated traversals (per hierarchy level, per boundary,
per simulated-timing query) regenerate nothing.  The original tree-walking
generator survives as :func:`trace_program_interpreted`, the independent
reference the equivalence suite compares against.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

from ..codegen.executor import virtual_shapes
from ..codegen.program import BlockProgram, Ranges
from ..codegen.schedule import CompiledSchedule, compile_schedule
from ..ir.operator import OperatorSpec


@dataclasses.dataclass(frozen=True)
class RegionAccess:
    """One tile touch.

    Attributes:
        tensor: tensor name.
        region: per-dimension half-open (lo, hi) ranges — the region key.
        nbytes: region size in bytes (clamped).
        write: True for output-tile stores.
    """

    tensor: str
    region: Tuple[Tuple[int, int], ...]
    nbytes: int
    write: bool

    @property
    def key(self) -> Tuple:
        return (self.tensor, self.region)


def materialize_trace(program: BlockProgram) -> List[RegionAccess]:
    """The program's full region access stream as a cached list.

    Built once per compiled schedule from its block tables and kept in the
    schedule's cache, so every consumer — region hierarchy replay, line
    simulation, movement validation — walks the same materialized list.
    """
    schedule = compile_schedule(program)
    cached = schedule.cache.get("trace")
    if cached is None:
        cached = _materialize(schedule)
        schedule.cache["trace"] = cached
    return cached


def _materialize(schedule: CompiledSchedule) -> List[RegionAccess]:
    per_table: List[List[List[RegionAccess]]] = []
    for table in schedule.tables:
        columns: List[List[RegionAccess]] = []
        for site in table.sites:
            tuples = site.region_tuples()
            nbytes = site.nbytes.tolist()
            columns.append(
                [
                    RegionAccess(site.tensor, region, size, site.write)
                    for region, size in zip(tuples, nbytes)
                ]
            )
        per_table.append(columns)

    trace: List[RegionAccess] = []
    append = trace.append
    for index, row in zip(
        schedule.block_table.tolist(), schedule.block_row.tolist()
    ):
        for column in per_table[index]:
            access = column[row]
            if access.nbytes:
                append(access)
    return trace


def trace_program(program: BlockProgram) -> Iterator[RegionAccess]:
    """Yield the region access stream of a block program (memoized)."""
    yield from materialize_trace(program)


def _op_ranges(op: OperatorSpec, block: Ranges) -> Ranges:
    ranges: Ranges = {}
    for loop in op.loops:
        ranges[loop.name] = block.get(loop.name, (0, loop.extent))
    return ranges


def trace_program_interpreted(program: BlockProgram) -> Iterator[RegionAccess]:
    """Reference tracer: re-walk the loop tree, re-derive every region."""
    chain = program.chain
    shapes = virtual_shapes(chain)
    dtype_bytes = {
        name: spec.dtype.nbytes for name, spec in chain.tensors.items()
    }
    for op, block in program.iterate_blocks():
        ranges = _op_ranges(op, block)
        for access in op.reads:
            region = access.region_from_ranges(ranges, shapes[access.tensor])
            nbytes = _region_bytes(region, dtype_bytes[access.tensor])
            if nbytes:
                yield RegionAccess(access.tensor, region, nbytes, write=False)
        for access in op.writes:
            region = access.region_from_ranges(ranges, shapes[access.tensor])
            nbytes = _region_bytes(region, dtype_bytes[access.tensor])
            if nbytes:
                yield RegionAccess(access.tensor, region, nbytes, write=True)


def _region_bytes(
    region: Tuple[Tuple[int, int], ...], elem_bytes: int
) -> int:
    elems = 1
    for lo, hi in region:
        if hi <= lo:
            return 0
        elems *= hi - lo
    return elems * elem_bytes
