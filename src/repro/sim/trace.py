"""Region access traces from block programs.

Each computation block reads tiles of its input tensors and writes a tile
of its output; the trace is the resulting stream of (tensor, region) touches
in execution order.  Region keys are derived from clamped element ranges, so
edge blocks and halo overlap behave exactly like on the device.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

from ..codegen.executor import virtual_shapes
from ..codegen.program import BlockProgram, Ranges
from ..ir.operator import OperatorSpec


@dataclasses.dataclass(frozen=True)
class RegionAccess:
    """One tile touch.

    Attributes:
        tensor: tensor name.
        region: per-dimension half-open (lo, hi) ranges — the region key.
        nbytes: region size in bytes (clamped).
        write: True for output-tile stores.
    """

    tensor: str
    region: Tuple[Tuple[int, int], ...]
    nbytes: int
    write: bool

    @property
    def key(self) -> Tuple:
        return (self.tensor, self.region)


def _op_ranges(op: OperatorSpec, block: Ranges) -> Ranges:
    ranges: Ranges = {}
    for loop in op.loops:
        ranges[loop.name] = block.get(loop.name, (0, loop.extent))
    return ranges


def trace_program(program: BlockProgram) -> Iterator[RegionAccess]:
    """Yield the region access stream of a block program."""
    chain = program.chain
    shapes = virtual_shapes(chain)
    dtype_bytes = {
        name: spec.dtype.nbytes for name, spec in chain.tensors.items()
    }
    for op, block in program.iterate_blocks():
        ranges = _op_ranges(op, block)
        for access in op.reads:
            region = access.region_from_ranges(ranges, shapes[access.tensor])
            nbytes = _region_bytes(region, dtype_bytes[access.tensor])
            if nbytes:
                yield RegionAccess(access.tensor, region, nbytes, write=False)
        for access in op.writes:
            region = access.region_from_ranges(ranges, shapes[access.tensor])
            nbytes = _region_bytes(region, dtype_bytes[access.tensor])
            if nbytes:
                yield RegionAccess(access.tensor, region, nbytes, write=True)


def _region_bytes(
    region: Tuple[Tuple[int, int], ...], elem_bytes: int
) -> int:
    elems = 1
    for lo, hi in region:
        if hi <= lo:
            return 0
        elems *= hi - lo
    return elems * elem_bytes
