"""Stepwise replay of graph schedules: the residency cross-check.

The scheduler (:mod:`repro.runtime.scheduler`) computes peak resident
bytes analytically from live intervals.  :func:`replay_schedule` is the
measurement-side counterpart: it walks the scheduled execution order one
node at a time, maintains an explicit resident set under the schedule's
residency decisions, and reports the observed peak and the DRAM traffic
the evictions generate.  :func:`repro.runtime.compile_network` runs this
replay on the simulated-timing path and refuses to emit a plan whose
predicted peak the replay cannot reproduce — the same
predict-then-simulate contract the tile-level movement model honours.

All quantities are per network pass: node ``repeat`` counts scale time
and traffic totals, not the resident set.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle exists only for typing
    from ..runtime.scheduler import GraphSchedule


class ScheduleReplayError(ValueError):
    """A schedule is internally inconsistent under stepwise replay."""


@dataclasses.dataclass(frozen=True)
class ResidencyTrace:
    """What one pass of a scheduled graph does to memory.

    Attributes:
        graph: the replayed graph's name.
        live_bytes: observed resident bytes at every execution step.
        peak_bytes: ``max(live_bytes)``.
        spill_bytes: DRAM bytes moved by spilled tensors (one write at
            the producer, one read per consumer).
        recompute_runs: producer re-executions forced by rematerialized
            tensors (one per consumer).
    """

    graph: str
    live_bytes: Tuple[int, ...]
    peak_bytes: int
    spill_bytes: int
    recompute_runs: int


def replay_schedule(schedule: "GraphSchedule") -> ResidencyTrace:
    """Replay a schedule step by step and measure its memory behaviour.

    Independent of the scheduler's interval arithmetic: the replay keeps
    an explicit resident-set dictionary, admits a kept tensor at its
    producer step, frees it after its last consumer, and materializes
    evicted tensors transiently at the steps that touch them.  A legal
    schedule replays to exactly its predicted ``live_bytes`` profile.

    Raises:
        ScheduleReplayError: when a consumer executes before its
            producer, or a residency record names a node missing from
            the order — either means the schedule is corrupt.
    """
    from ..runtime.scheduler import KEEP, REMATERIALIZE, SPILL

    position = {name: index for index, name in enumerate(schedule.order)}
    for record in schedule.residency:
        if record.producer not in position:
            raise ScheduleReplayError(
                f"schedule {schedule.graph!r}: residency record for "
                f"{record.producer!r} has no node in the order"
            )
        for consumer in record.consumers:
            if consumer not in position:
                raise ScheduleReplayError(
                    f"schedule {schedule.graph!r}: consumer {consumer!r} "
                    f"of {record.producer!r} has no node in the order"
                )
            if position[consumer] <= position[record.producer]:
                raise ScheduleReplayError(
                    f"schedule {schedule.graph!r}: {consumer!r} executes "
                    f"at step {position[consumer]} but its input from "
                    f"{record.producer!r} is produced at step "
                    f"{position[record.producer]}"
                )

    by_producer = {record.producer: record for record in schedule.residency}
    readers: Dict[str, List[str]] = {name: [] for name in schedule.order}
    for record in schedule.residency:
        for consumer in record.consumers:
            readers[consumer].append(record.producer)

    # Multi-core communication staging: partitioned nodes hold their
    # link-transfer buffers only while they execute.
    staging = dict(getattr(schedule, "transients", ()) or ())
    for node in staging:
        if node not in position:
            raise ScheduleReplayError(
                f"schedule {schedule.graph!r}: transient record for "
                f"{node!r} has no node in the order"
            )

    resident: Dict[str, int] = {}
    free_after: Dict[int, List[str]] = {}
    live: List[int] = []
    spill_bytes = 0
    recompute_runs = 0
    for step, name in enumerate(schedule.order):
        transient = staging.get(name, 0)
        # Inputs this node reads: kept ones are already resident; evicted
        # ones materialize for the duration of this step only.
        for producer in readers[name]:
            record = by_producer[producer]
            if record.decision == KEEP:
                if producer not in resident:  # pragma: no cover - guarded
                    raise ScheduleReplayError(
                        f"schedule {schedule.graph!r}: kept tensor of "
                        f"{producer!r} was freed before {name!r} read it"
                    )
            elif record.decision == SPILL:
                transient += record.nbytes
                spill_bytes += record.nbytes
            elif record.decision == REMATERIALIZE:
                transient += record.nbytes
                recompute_runs += 1
        # This node's own output, if consumed downstream.
        record = by_producer.get(name)
        if record is not None:
            if record.decision == KEEP:
                resident[name] = record.nbytes
                last = max(position[c] for c in record.consumers)
                free_after.setdefault(last, []).append(name)
            else:
                transient += record.nbytes
                if record.decision == SPILL:
                    spill_bytes += record.nbytes
        live.append(sum(resident.values()) + transient)
        for finished in free_after.pop(step, ()):
            del resident[finished]
    return ResidencyTrace(
        graph=schedule.graph,
        live_bytes=tuple(live),
        peak_bytes=max(live) if live else 0,
        spill_bytes=spill_bytes,
        recompute_runs=recompute_runs,
    )
