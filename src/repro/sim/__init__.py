"""Memory-hierarchy simulator: the measurement substrate.

Stands in for the paper's real devices and hardware profilers — the
quantities Chimera optimizes (per-boundary data movement) are measured
directly by replaying block schedules through stacked LRU region caches.
"""

from .cache import CacheStats, RegionCache
from .hierarchy import MemoryHierarchySim, SimConfig
from .linecache import (
    LineHierarchySim,
    SetAssociativeCache,
    boundary_fill_traffic,
    measure_movement_lines,
    simulate_movement_lines,
)
from .profiler import (
    SimReport,
    simulate_plan,
    simulate_program,
    simulate_sequence,
)
from .residency import ResidencyTrace, ScheduleReplayError, replay_schedule
from .timing import movement_times, roofline_time
from .trace import (
    RegionAccess,
    materialize_trace,
    trace_program,
    trace_program_interpreted,
)

__all__ = [
    "CacheStats",
    "RegionCache",
    "MemoryHierarchySim",
    "SimConfig",
    "LineHierarchySim",
    "SetAssociativeCache",
    "boundary_fill_traffic",
    "measure_movement_lines",
    "simulate_movement_lines",
    "SimReport",
    "simulate_plan",
    "simulate_program",
    "simulate_sequence",
    "ResidencyTrace",
    "ScheduleReplayError",
    "replay_schedule",
    "movement_times",
    "roofline_time",
    "RegionAccess",
    "materialize_trace",
    "trace_program",
    "trace_program_interpreted",
]
