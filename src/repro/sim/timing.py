"""Roofline timing from simulated traffic.

Execution time of a kernel is the slowest pipeline stage — compute at the
micro kernel's sustained efficiency, or any memory boundary's traffic at its
bandwidth (Eq. 2/3 applied to *measured* traffic) — plus fixed launch
overhead per kernel.
"""

from __future__ import annotations

from typing import Mapping

from ..hardware.spec import HardwareSpec


def movement_times(
    hardware: HardwareSpec, boundary_traffic: Mapping[str, float]
) -> dict:
    """Seconds per memory boundary, keyed by the inner level's name."""
    times = {}
    for index, level in enumerate(hardware.on_chip_levels):
        traffic = boundary_traffic.get(level.name, 0.0)
        bandwidth = hardware.levels[index + 1].bandwidth
        times[level.name] = traffic / bandwidth
    return times


def roofline_time(
    hardware: HardwareSpec,
    flops: float,
    efficiency: float,
    boundary_traffic: Mapping[str, float],
    launches: int = 1,
) -> float:
    """Total kernel-sequence time under the roofline model.

    Args:
        hardware: machine model.
        flops: floating point operations actually executed.
        efficiency: sustained fraction of peak compute.
        boundary_traffic: bytes crossing each level's outer boundary.
        launches: number of kernel launches in the sequence.
    """
    compute = hardware.compute_time(flops, efficiency)
    movement = movement_times(hardware, boundary_traffic)
    slowest = max(movement.values()) if movement else 0.0
    return max(compute, slowest) + launches * hardware.kernel_launch_overhead
