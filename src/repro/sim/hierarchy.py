"""Stacked multi-level cache hierarchy.

On-chip levels are inclusive LRU region caches; DRAM is the implicit
backing store.  Reads walk inward-out until they hit, filling every missed
level on the way; writes land in the innermost level and dirty evictions
ripple outward.  The traffic crossing boundary ``d`` (between level ``d``
and level ``d+1``, DRAM being the outermost) is::

    traffic[d] = fills into level d + write-backs out of level d

which is exactly the quantity the analytical ``DV_d`` predicts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional

from ..hardware.spec import HardwareSpec
from .cache import CacheStats, RegionCache


@dataclasses.dataclass(frozen=True)
class SimConfig:
    """Simulator knobs.

    Attributes:
        shared_capacity_per_core: when True (default), shared levels expose
            ``capacity / num_cores`` to the sequentially simulated block
            stream — modelling the contention of one block per core, and
            matching the per-block capacity the optimizer constrains
            against.  When False the stream sees full capacities.
    """

    shared_capacity_per_core: bool = True


class MemoryHierarchySim:
    """Simulates one device's cache hierarchy over a region access stream."""

    def __init__(
        self, hardware: HardwareSpec, config: Optional[SimConfig] = None
    ) -> None:
        self.hardware = hardware
        self.config = config or SimConfig()
        # Built outermost-first so each level's spill target exists when the
        # level is constructed: an eviction from level d becomes a write
        # into level d+1 (no fill — write-allocate-without-fetch).
        caches: List[RegionCache] = []
        outer: Optional[RegionCache] = None
        for level in reversed(hardware.on_chip_levels):
            capacity = level.capacity
            if level.shared and self.config.shared_capacity_per_core:
                capacity = hardware.per_block_capacity(level)
            cache = RegionCache(
                level.name,
                capacity,
                on_evict=_make_spill(outer) if outer is not None else None,
            )
            caches.append(cache)
            outer = cache
        self.caches: List[RegionCache] = list(reversed(caches))

    # ------------------------------------------------------------------
    def read(self, key: Hashable, nbytes: int) -> None:
        """Read a region: walk inward-out, filling every missed level."""
        for cache in self.caches:
            if cache.access(key, nbytes, write=False):
                return
        # Missed everywhere: satisfied by DRAM (fills already counted).

    def write(self, key: Hashable, nbytes: int) -> None:
        """Write a region into the innermost level (write-back policy)."""
        self.caches[0].access(key, nbytes, write=True)

    def flush(self, discard_tensors: frozenset = frozenset()) -> None:
        """Drain all dirty data to DRAM (end of measurement).

        Args:
            discard_tensors: names of tensors whose dirty regions are dead
                (a fused kernel's on-chip intermediates) — dropped instead
                of written back.
        """
        if discard_tensors:
            def discard(key) -> bool:
                return (
                    isinstance(key, tuple)
                    and bool(key)
                    and key[0] in discard_tensors
                )
        else:
            discard = None
        for cache in self.caches:
            cache.flush(discard)

    # ------------------------------------------------------------------
    def boundary_traffic(self) -> Dict[str, float]:
        """Bytes crossing each level's outer boundary, by level name."""
        return {
            cache.name: float(cache.stats.fill_bytes + cache.stats.writeback_bytes)
            for cache in self.caches
        }

    def dram_traffic(self) -> float:
        """Bytes that crossed the chip boundary (outermost level's total)."""
        outer = self.caches[-1]
        return float(outer.stats.fill_bytes + outer.stats.writeback_bytes)

    def stats(self) -> Dict[str, CacheStats]:
        """Per-level hit/miss counters, keyed by level name."""
        return {cache.name: cache.stats for cache in self.caches}


def _make_spill(outer: RegionCache):
    def spill(key: Hashable, nbytes: int, dirty: bool) -> None:
        if dirty:
            # The written-back region lands in the outer level under its own
            # key (write-allocate-without-fetch): inclusive copies turn this
            # into a write hit, so no spurious fill traffic is charged.
            outer.access(key, nbytes, write=True)

    return spill
