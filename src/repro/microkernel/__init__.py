"""Replaceable micro kernels and their backend implementations.

Importing this package registers the three backend implementations of the
``matmul`` replaceable micro kernel (AVX-512, Tensor Core WMMA, cube-unit
mad), mirroring Figure 4 of the paper.
"""

from typing import Dict, Optional

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..ir.dtypes import DType, FP16
from .base import (
    LoweredMicroKernel,
    MicroKernelSpec,
    ReplaceableMicroKernel,
    get_micro_kernel,
    matmul_loop_roles,
    register_micro_kernel,
)
from . import cpu as _cpu  # noqa: F401  (registers the CPU implementation)
from . import gpu as _gpu  # noqa: F401  (registers the GPU implementation)
from . import npu as _npu  # noqa: F401  (registers the NPU implementation)
from .cpu import build_cpu_micro_kernel, search_parameters
from .gpu import build_gpu_micro_kernel, fragment_reuse_ai
from .npu import build_npu_micro_kernel, cube_ai


def lower_matmul(
    hardware: HardwareSpec, dtype: DType = FP16, **hints: int
) -> LoweredMicroKernel:
    """Lower the matmul replaceable kernel for ``hardware``'s backend."""
    return get_micro_kernel("matmul").lower(hardware, dtype, **hints)


def lower_for_chain(
    hardware: HardwareSpec, chain: OperatorChain, dtype: Optional[DType] = None
) -> LoweredMicroKernel:
    """Lower the matmul kernel with extents hinted from ``chain``.

    The hint extents are the smallest (m, n, k) any compute-intensive
    operator in the chain presents, so the generated kernel never pads
    against the chain's tightest dimension.
    """
    hints: Dict[str, int] = {}
    extents = chain.loop_extents()
    for op in chain.compute_intensive_ops():
        for role, loop_name in matmul_loop_roles(op).items():
            key = f"{role}_extent"
            extent = extents[loop_name]
            hints[key] = min(hints.get(key, extent), extent)
    if dtype is None:
        dtype = next(iter(chain.tensors.values())).dtype
    return lower_matmul(hardware, dtype, **hints)


def chain_min_tiles(
    chain: OperatorChain, kernel: LoweredMicroKernel
) -> Dict[str, int]:
    """Minimum block tile per chain loop imposed by the micro kernel.

    Every compute-intensive operator's (m, n, k) loops must hold at least
    one native micro-kernel tile; shared loops take the max requirement.
    """
    minimums: Dict[str, int] = {}
    extents = chain.loop_extents()
    for op in chain.compute_intensive_ops():
        roles = matmul_loop_roles(op)
        for role, loop_name in roles.items():
            need = min(kernel.min_tiles[role], extents[loop_name])
            minimums[loop_name] = max(minimums.get(loop_name, 1), need)
    return minimums


def chain_quanta(
    chain: OperatorChain, kernel: LoweredMicroKernel
) -> Dict[str, int]:
    """Tile quanta per chain loop: multiples of the hardware granule.

    Block tiles snapped to these waste no padding in the micro kernel.
    """
    quanta: Dict[str, int] = {}
    granules = {
        "m": kernel.granule_m,
        "n": kernel.granule_n,
        "k": kernel.granule_k,
    }
    for op in chain.compute_intensive_ops():
        roles = matmul_loop_roles(op)
        for role, loop_name in roles.items():
            quanta[loop_name] = max(quanta.get(loop_name, 1), granules[role])
    return quanta


def chain_efficiency(
    chain: OperatorChain,
    kernel: LoweredMicroKernel,
    tiles: Dict[str, int],
) -> float:
    """Sustained compute efficiency of the fused kernel.

    The slowest operator bounds the pipeline, so the chain efficiency is the
    minimum over compute-intensive operators of the micro kernel's
    efficiency at that operator's innermost (m, n, k) tile.
    """
    worst = kernel.efficiency
    for op in chain.compute_intensive_ops():
        roles = matmul_loop_roles(op)
        extents = chain.loop_extents()

        def tile_of(role: str) -> int:
            loop_name = roles.get(role)
            if loop_name is None:
                return kernel.min_tiles[role]
            return min(tiles.get(loop_name, 1), extents[loop_name])

        eff = kernel.efficiency_for_tiles(
            tile_of("m"), tile_of("n"), tile_of("k")
        )
        worst = min(worst, eff)
    return worst


__all__ = [
    "LoweredMicroKernel",
    "MicroKernelSpec",
    "ReplaceableMicroKernel",
    "get_micro_kernel",
    "matmul_loop_roles",
    "register_micro_kernel",
    "build_cpu_micro_kernel",
    "build_gpu_micro_kernel",
    "build_npu_micro_kernel",
    "search_parameters",
    "fragment_reuse_ai",
    "cube_ai",
    "lower_matmul",
    "chain_min_tiles",
    "chain_quanta",
    "chain_efficiency",
]
