"""Replaceable micro kernels (Section V-A).

A *replaceable micro kernel* is a high-level description of the computation
block's inner loop nest — for all the paper's workloads, a small matrix
multiplication ``C[tm, tn] += A[tm, tk] * B[tk, tn]``.  Hardware-specific
implementations (AVX-512 assembly, Tensor-Core WMMA tiling, cube-unit
``mad`` pragmas) register themselves under the same abstraction; during code
generation Chimera lowers the replaceable kernel to the implementation
registered for the target backend.

The lowered kernel carries everything the rest of the system needs:

* ``tile_m/n/k`` — the native tile, which becomes tile *quanta* and minimum
  tile sizes for the inter-block solver;
* ``arithmetic_intensity`` — compute instructions per load/store
  instruction, the quantity each backend generator maximizes;
* ``efficiency`` — the fraction of peak the kernel sustains on aligned
  tiles, used by the roofline timing model; misaligned block tiles pay a
  padding penalty via :meth:`LoweredMicroKernel.efficiency_for_tiles`;
* ``source`` — the generated low-level code (assembly / intrinsics /
  pragma DSL), for inspection and tests.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Mapping, Tuple

from ..hardware.spec import HardwareSpec
from ..ir.dtypes import DType, FP16
from ..ir.operator import OperatorSpec


@dataclasses.dataclass(frozen=True)
class MicroKernelSpec:
    """The backend-independent description of the inner computation.

    Attributes:
        name: registry key (e.g. ``"matmul"``).
        description: the naive loop nest this kernel abstracts.
    """

    name: str
    description: str


@dataclasses.dataclass(frozen=True)
class LoweredMicroKernel:
    """A hardware-specific micro kernel implementation.

    Attributes:
        name: implementation name, e.g. ``"avx512-outer-product"``.
        backend: ``"cpu" | "gpu" | "npu"``.
        tile_m, tile_n, tile_k: native tile the kernel computes per call.
        arithmetic_intensity: compute instructions per load/store.
        efficiency: sustained fraction of peak on aligned tiles.
        source: generated low-level code.
        params: generator parameters (MI/NI/MII/KI etc.) for diagnostics.
    """

    name: str
    backend: str
    tile_m: int
    tile_n: int
    tile_k: int
    arithmetic_intensity: float
    efficiency: float
    source: str
    params: Mapping[str, int] = dataclasses.field(default_factory=dict)
    granule_m: int = 1
    granule_n: int = 1
    granule_k: int = 1

    def efficiency_for_tiles(self, m: int, n: int, k: int) -> float:
        """Sustained efficiency when the block tile is ``m x n x k``.

        Blocks pad up to the hardware *granule* (a fragment/lane row, not
        the whole preferred kernel tile — the generator degrades gracefully
        below its preferred size), so utilization scales by the filled
        fraction of the last granule in each dimension.
        """
        waste = 1.0
        for size, granule in (
            (m, self.granule_m),
            (n, self.granule_n),
            (k, self.granule_k),
        ):
            if size <= 0:
                return 0.0
            padded = math.ceil(size / granule) * granule
            waste *= size / padded
        return self.efficiency * waste

    @property
    def min_tiles(self) -> Dict[str, int]:
        """Minimum block tile per matmul role (one hardware granule)."""
        return {"m": self.granule_m, "n": self.granule_n, "k": self.granule_k}

    @property
    def preferred_tiles(self) -> Dict[str, int]:
        """The tile the generator optimized AI for."""
        return {"m": self.tile_m, "n": self.tile_n, "k": self.tile_k}


KernelFactory = Callable[..., LoweredMicroKernel]
"""Signature: ``factory(hardware, dtype, **hints) -> LoweredMicroKernel``.

Recognized hints (all optional): ``m_extent``, ``n_extent``, ``k_extent`` —
the workload's matmul dimension extents, letting generators shrink their
native tiles instead of padding small problems.
"""


class ReplaceableMicroKernel:
    """One replaceable kernel with per-backend registered implementations."""

    def __init__(self, spec: MicroKernelSpec) -> None:
        self.spec = spec
        self._factories: Dict[str, KernelFactory] = {}

    def register(self, backend: str, factory: KernelFactory) -> None:
        """Register (or replace) the implementation for one backend."""
        if backend not in ("cpu", "gpu", "npu"):
            raise ValueError(f"unknown backend {backend!r}")
        self._factories[backend] = factory

    def backends(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def lower(
        self, hardware: HardwareSpec, dtype: DType = FP16, **hints: int
    ) -> LoweredMicroKernel:
        """Select and build the implementation for ``hardware``'s backend.

        Raises:
            KeyError: if no implementation is registered for the backend.
        """
        try:
            factory = self._factories[hardware.backend]
        except KeyError:
            raise KeyError(
                f"micro kernel {self.spec.name!r} has no implementation for "
                f"backend {hardware.backend!r}; registered: {self.backends()}"
            ) from None
        return factory(hardware, dtype, **hints)


_REGISTRY: Dict[str, ReplaceableMicroKernel] = {}


def register_micro_kernel(spec: MicroKernelSpec) -> ReplaceableMicroKernel:
    """Create (or fetch) the replaceable kernel for ``spec.name``."""
    kernel = _REGISTRY.get(spec.name)
    if kernel is None:
        kernel = ReplaceableMicroKernel(spec)
        _REGISTRY[spec.name] = kernel
    return kernel


def get_micro_kernel(name: str) -> ReplaceableMicroKernel:
    """Look up a replaceable kernel by name.

    Raises:
        KeyError: with the available names when absent.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no replaceable micro kernel {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def matmul_loop_roles(op: OperatorSpec) -> Dict[str, str]:
    """Map the matmul micro kernel's (m, n, k) onto an operator's loops.

    GEMM-family operators use their last two output dimensions as (m, n)
    and the largest reduction as k.  Convolutions lower to implicit GEMM:
    ``m`` is the innermost output spatial dim, ``n`` the output channel,
    ``k`` the input channel.

    Returns:
        role -> loop name; roles whose loop is degenerate are omitted.
    """
    roles: Dict[str, str] = {}
    if op.tag in ("gemm", "batch_gemm"):
        out_dims = op.output.dims
        roles["m"] = out_dims[-2].loops[0]
        roles["n"] = out_dims[-1].loops[0]
        reductions = [(op.loop(n).extent, n) for n in op.reduction_loop_names]
        if reductions:
            roles["k"] = max(reductions)[1]
    elif op.tag == "conv2d":
        out_dims = op.output.dims
        roles["m"] = out_dims[-1].loops[0]
        roles["n"] = out_dims[1].loops[0]
        reductions = [(op.loop(n).extent, n) for n in op.reduction_loop_names]
        if reductions:
            roles["k"] = max(reductions)[1]
    return roles
