"""GPU (Tensor Core) micro kernel generation (Section V-B).

A single WMMA ``mma_sync`` computes a 16x16x16 matmul but, used naively,
pairs every compute intrinsic with a fragment load and store — the
arithmetic intensity is too low and the kernel is bound by shared-memory
traffic.  The paper's kernel instead unrolls a **2x2 tile outer product**:
it loads two 16x16 fragments of each operand and updates a 2x2 grid of
accumulator fragments, reusing every loaded fragment twice.
"""

from __future__ import annotations

from typing import List

from ..hardware.spec import HardwareSpec
from ..ir.dtypes import DType, FP16
from .base import LoweredMicroKernel, get_micro_kernel


def fragment_reuse_ai(tiles_m: int, tiles_n: int) -> float:
    """Compute intrinsics per fragment load for a tiles_m x tiles_n grid.

    Per k-step: ``tiles_m * tiles_n`` mma intrinsics consume
    ``tiles_m + tiles_n`` loaded fragments.
    """
    return (tiles_m * tiles_n) / (tiles_m + tiles_n)


def generate_source(tiles_m: int, tiles_n: int, frag: int) -> str:
    """Emit the CUDA-like WMMA kernel body."""
    lines: List[str] = [
        f"// tensor-core micro kernel: {tiles_m}x{tiles_n} grid of "
        f"{frag}x{frag}x{frag} wmma fragments",
        f"wmma::fragment<accumulator, {frag}, {frag}, {frag}, half> "
        f"acc[{tiles_m}][{tiles_n}];",
        f"wmma::fragment<matrix_a, {frag}, {frag}, {frag}, half, row_major> "
        f"a_frag[{tiles_m}];",
        f"wmma::fragment<matrix_b, {frag}, {frag}, {frag}, half, row_major> "
        f"b_frag[{tiles_n}];",
        "for (int kk = 0; kk < TK; kk += %d) {" % frag,
    ]
    for i in range(tiles_m):
        lines.append(
            f"  wmma::load_matrix_sync(a_frag[{i}], "
            f"&smemA[(tm + {i * frag}) * lda + kk], lda);"
        )
    for j in range(tiles_n):
        lines.append(
            f"  wmma::load_matrix_sync(b_frag[{j}], "
            f"&smemB[kk * ldb + tn + {j * frag}], ldb);"
        )
    for i in range(tiles_m):
        for j in range(tiles_n):
            lines.append(
                f"  wmma::mma_sync(acc[{i}][{j}], a_frag[{i}], "
                f"b_frag[{j}], acc[{i}][{j}]);"
            )
    lines.append("}")
    for i in range(tiles_m):
        for j in range(tiles_n):
            lines.append(
                f"wmma::store_matrix_sync(&smemC[(tm + {i * frag}) * ldc "
                f"+ tn + {j * frag}], acc[{i}][{j}], ldc, mem_row_major);"
            )
    return "\n".join(lines)


def build_gpu_micro_kernel(
    hardware: HardwareSpec, dtype: DType = FP16, **hints: int
) -> LoweredMicroKernel:
    """Generate the 2x2-tiled WMMA micro kernel for ``hardware``.

    ``m_extent``/``n_extent`` hints shrink the fragment grid when the
    workload cannot fill two fragments along a dimension.

    Raises:
        ValueError: if the hardware has no matrix unit description.
    """
    if hardware.matrix_unit is None:
        raise ValueError(f"{hardware.name} declares no matrix unit")
    unit = hardware.matrix_unit
    tiles_m = tiles_n = 2  # the paper's 2x2 fragment grid
    m_extent = hints.get("m_extent")
    if m_extent is not None and m_extent < tiles_m * unit.m:
        tiles_m = 1
    n_extent = hints.get("n_extent")
    if n_extent is not None and n_extent < tiles_n * unit.n:
        tiles_n = 1
    ai = fragment_reuse_ai(tiles_m, tiles_n)
    # A lone mma_sync reuses each fragment once (AI = 0.5); the 2x2 grid
    # doubles reuse.  Sustained efficiency reflects tensor-core utilization
    # with double-buffered shared-memory staging.
    efficiency = 0.90 * min(1.0, ai / 1.0)
    source = generate_source(tiles_m, tiles_n, unit.m)
    return LoweredMicroKernel(
        name="tensorcore-wmma-2x2",
        backend="gpu",
        tile_m=tiles_m * unit.m,
        tile_n=tiles_n * unit.n,
        tile_k=unit.k,
        arithmetic_intensity=ai,
        efficiency=efficiency,
        source=source,
        params={
            "tiles_m": tiles_m,
            "tiles_n": tiles_n,
            "fragment_m": unit.m,
            "fragment_n": unit.n,
            "fragment_k": unit.k,
        },
        granule_m=unit.m,
        granule_n=unit.n,
        granule_k=unit.k,
    )


get_micro_kernel("matmul").register("gpu", build_gpu_micro_kernel)
