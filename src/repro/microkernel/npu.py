"""NPU (Ascend cube unit) micro kernel generation (Section V-B).

The Ascend toolchain exposes a Python DSL where pragmas map loop nests onto
the cube and vector units.  The matmul micro kernel uses the ``mad`` pragma,
which expects six nested loops computing::

    C[m1, n1, m2, n2] += A[m1, k1, m2, k2] * B[k1, n1, n2, k2]

Inputs are packed into contiguous fractal layout in on-chip memory by DMA
before the ``mad``.  The kernel's arithmetic intensity is::

    AI = (M1*M2 * N1*N2) / (M1*M2 + N1*N2)

maximized by ``M2 = N2 = cube lane count`` and ``M1 = N1`` as large as the
L0 buffers allow.
"""

from __future__ import annotations

import math
from typing import List

from ..hardware.spec import HardwareSpec
from ..ir.dtypes import DType, FP16
from .base import LoweredMicroKernel, get_micro_kernel


def cube_ai(m1: int, m2: int, n1: int, n2: int) -> float:
    """The paper's AI formula for the cube-unit kernel."""
    return (m1 * m2 * n1 * n2) / (m1 * m2 + n1 * n2)


def solve_m1(l0_bytes: int, lanes: int, elem_bytes: int) -> int:
    """Largest ``M1 = N1`` whose packed operands fit the L0 buffer.

    The A and B fractal tiles occupy ``2 * M1 * lanes * K2-panel`` bytes; a
    square split of the L0 capacity gives ``M1``.
    """
    per_fractal = lanes * lanes * elem_bytes
    budget = l0_bytes // (2 * per_fractal)
    return max(1, int(math.isqrt(max(budget, 1))))


def generate_source(m1: int, n1: int, k1: int, lanes: int) -> str:
    """Emit the pragma-annotated DSL loop nest for the mad kernel."""
    lines: List[str] = [
        f"# cube-unit mad micro kernel M1={m1} N1={n1} K1={k1} lane={lanes}",
        "with tik.dma_copy(A_l0, A_l1):  # pack A to fractal layout",
        "    pass",
        "with tik.dma_copy(B_l0, B_l1):  # pack B to fractal layout",
        "    pass",
        f"for m1 in range({m1}):  # pragma: emit_insn mad",
        f"    for n1 in range({n1}):",
        f"        for k1 in range({k1}):",
        f"            for m2 in range({lanes}):",
        f"                for n2 in range({lanes}):",
        f"                    for k2 in range({lanes}):",
        "                        C[m1, n1, m2, n2] += "
        "A[m1, k1, m2, k2] * B[k1, n1, n2, k2]",
    ]
    return "\n".join(lines)


def build_npu_micro_kernel(
    hardware: HardwareSpec, dtype: DType = FP16, **hints: int
) -> LoweredMicroKernel:
    """Generate the cube-unit mad micro kernel for ``hardware``.

    ``m_extent``/``n_extent`` hints cap ``M1``/``N1`` so small workloads do
    not pad to the full L0-derived fractal grid.

    Raises:
        ValueError: if the hardware has no matrix unit description.
    """
    if hardware.matrix_unit is None:
        raise ValueError(f"{hardware.name} declares no matrix unit")
    lanes = hardware.matrix_unit.m
    # The combined L0 capacity splits roughly 1/6 A, 1/6 B, 2/3 accumulator
    # (matching the Ascend 910's 64KB + 64KB + 256KB L0A/L0B/L0C split), so
    # the A+B operand budget passed to the solver is capacity / 3.
    m1 = n1 = solve_m1((hardware.innermost.capacity or 0) // 3, lanes, dtype.nbytes)
    m_extent = hints.get("m_extent")
    if m_extent is not None:
        m1 = max(1, min(m1, math.ceil(m_extent / lanes)))
    n_extent = hints.get("n_extent")
    if n_extent is not None:
        n1 = max(1, min(n1, math.ceil(n_extent / lanes)))
    k1 = 2
    ai = cube_ai(m1, lanes, n1, lanes)
    # The mad pipeline overlaps DMA packing with cube compute; sustained
    # efficiency saturates once AI covers the cube's operand feed rate.
    efficiency = 0.88 * min(1.0, ai / (2 * lanes))
    source = generate_source(m1, n1, k1, lanes)
    return LoweredMicroKernel(
        name="cube-mad",
        backend="npu",
        tile_m=m1 * lanes,
        tile_n=n1 * lanes,
        tile_k=k1 * lanes,
        arithmetic_intensity=ai,
        efficiency=efficiency,
        source=source,
        params={"M1": m1, "N1": n1, "K1": k1, "M2": lanes, "N2": lanes},
        granule_m=lanes,
        granule_n=lanes,
        granule_k=lanes,
    )


get_micro_kernel("matmul").register("npu", build_npu_micro_kernel)
