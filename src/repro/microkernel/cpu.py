"""CPU (AVX-512) micro kernel generation — Algorithm 2 of the paper.

The kernel is an outer-product register-blocked matmul: per step it holds an
``MI x NI`` grid of C accumulator vector registers, ``NI`` B vector
registers and ``MII`` broadcast A registers, and emits ``MI x NI``
consecutive FMAs so the FMA pipeline (depth ~24 on Cascade Lake) stays full.

Parameters ``(MI, NI, MII, KI)`` are chosen by maximizing the arithmetic
intensity::

    AI = #ComputeInst / #LoadStoreInst
       = (MI*NI*KI) / (KI*(MI+NI) + 2*MI*NI)

subject to ``RegUsed = MI*NI + NI + MII <= #Registers`` and
``MI*NI >= fma_pipeline_depth``.  For the paper's Cascade Lake settings
(32 ZMM registers, depth 24) this search lands on ``MI=6, NI=4, MII=2``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..hardware.spec import HardwareSpec, VectorUnit
from ..ir.dtypes import DType, FP16
from .base import (
    LoweredMicroKernel,
    MicroKernelSpec,
    register_micro_kernel,
)


def arithmetic_intensity(mi: int, ni: int, ki: int) -> float:
    """The paper's AI objective for the CPU kernel."""
    compute = mi * ni * ki
    loads_stores = ki * (mi + ni) + 2 * mi * ni
    return compute / loads_stores


def search_parameters(
    vector_unit: VectorUnit, ki: int = 64, max_ni: Optional[int] = None
) -> Tuple[int, int, int]:
    """Maximize AI under the register budget and pipeline-depth constraint.

    Ties on AI prefer even ``MI`` (paired A-register loads) and ``MI >= NI``
    (wider C panel along the non-vector dimension), matching the hand-tuned
    Cascade Lake kernel's (6, 4, 2).

    Args:
        vector_unit: register file description.
        ki: representative reduction depth for the AI objective.
        max_ni: optional cap on NI when the workload's N dimension is
            smaller than ``NI * lanes`` (avoids padding waste).

    Returns:
        ``(MI, NI, MII)``.
    """
    ni_limit = max_ni or vector_unit.num_registers
    best: Optional[Tuple[float, Tuple[int, int, int]]] = None
    for mi in range(1, vector_unit.num_registers + 1):
        for ni in range(1, min(ni_limit, vector_unit.num_registers) + 1):
            if mi * ni < vector_unit.fma_pipeline_depth:
                continue
            if mi % 2 != 0 or mi < ni:
                continue
            for mii in (1, 2, 4):
                if mi % mii != 0:
                    continue
                registers = mi * ni + ni + mii
                if registers > vector_unit.num_registers:
                    continue
                ai = arithmetic_intensity(mi, ni, ki)
                key = (ai, -mi * ni, mii)
                if best is None or key > best[0]:
                    best = (key, (mi, ni, mii))
    if best is None:
        raise ValueError(
            f"no feasible CPU micro kernel for {vector_unit.num_registers} "
            f"registers and pipeline depth {vector_unit.fma_pipeline_depth}"
        )
    return best[1]


def generate_source(
    mi: int, ni: int, mii: int, ki: int, lanes: int
) -> str:
    """Emit the AVX-512-style assembly of Algorithm 2.

    The paper reports ~140 lines of assembly for its CPU kernel; this
    generator reproduces the same instruction schedule (C loads, the KI-deep
    outer-product FMA pipeline with interleaved B loads and A broadcasts,
    and C stores).
    """
    lines: List[str] = [
        f"; avx512 outer-product micro kernel MI={mi} NI={ni} MII={mii} "
        f"KI={ki} lanes={lanes}",
        "; C[MI, NI*lanes] += A[MI, KI] * B[KI, NI*lanes]",
    ]
    for m in range(mi):
        for n in range(ni):
            lines.append(
                f"  vmovups zmm{m * ni + n}, [rC + {(m * ni + n) * lanes * 2}]"
            )
    creg = mi * ni
    for k in range(ki):
        for n in range(ni):
            lines.append(
                f"  vmovups zmm{creg + n}, [rB + {(k * ni + n) * lanes * 2}]"
            )
        for mo in range(0, mi, mii):
            for inner in range(mii):
                lines.append(
                    f"  vpbroadcastw zmm{creg + ni + inner}, "
                    f"[rA + {((mo + inner) * ki + k) * 2}]"
                )
            for inner in range(mii):
                for n in range(ni):
                    acc = (mo + inner) * ni + n
                    lines.append(
                        f"  vfmadd231ph zmm{acc}, zmm{creg + n}, "
                        f"zmm{creg + ni + inner}"
                    )
    for m in range(mi):
        for n in range(ni):
            lines.append(
                f"  vmovups [rC + {(m * ni + n) * lanes * 2}], zmm{m * ni + n}"
            )
    lines.append("  ret")
    return "\n".join(lines)


def build_cpu_micro_kernel(
    hardware: HardwareSpec, dtype: DType = FP16, **hints: int
) -> LoweredMicroKernel:
    """Generate the AVX-512 matmul micro kernel for ``hardware``.

    Accepts an ``n_extent`` hint: when the workload's N dimension cannot
    fill ``NI * lanes`` columns, NI is capped so the kernel trades register
    width along N for depth along M instead of padding.

    Raises:
        ValueError: if the hardware has no vector unit description.
    """
    if hardware.vector_unit is None:
        raise ValueError(f"{hardware.name} declares no vector unit")
    unit = hardware.vector_unit
    lanes = unit.lanes(dtype)
    # KI adapts to the problem at code generation; for AI reporting use a
    # representative depth (one cache line of A per row).
    ki = 64
    max_ni = None
    n_extent = hints.get("n_extent")
    if n_extent is not None:
        max_ni = max(1, math.ceil(n_extent / lanes))
    mi, ni, mii = search_parameters(unit, ki, max_ni=max_ni)
    ai = arithmetic_intensity(mi, ni, ki)
    # Efficiency: the pipeline is fully fed once MI*NI covers the FMA
    # latency-bandwidth product; residual overhead comes from loop control
    # and pointer arithmetic, a few percent in practice.
    depth_cover = min(1.0, (mi * ni) / unit.fma_pipeline_depth)
    efficiency = 0.92 * depth_cover
    source = generate_source(mi, ni, mii, min(ki, 4), lanes)
    return LoweredMicroKernel(
        name="avx512-outer-product",
        backend="cpu",
        tile_m=mi,
        tile_n=ni * lanes,
        tile_k=8,
        arithmetic_intensity=ai,
        efficiency=efficiency,
        source=source,
        params={"MI": mi, "NI": ni, "MII": mii, "KI": ki, "lanes": lanes},
        granule_m=mi,
        granule_n=lanes,
        granule_k=1,
    )


MATMUL_SPEC = MicroKernelSpec(
    name="matmul",
    description=(
        "for tm in [0, TM): for tn in [0, TN): for tk in [0, TK): "
        "C[tm, tn] += A[tm, tk] * B[tk, tn]"
    ),
)

matmul = register_micro_kernel(MATMUL_SPEC)
matmul.register("cpu", build_cpu_micro_kernel)
