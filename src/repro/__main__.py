"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan`` — optimize a named workload and print the fusion plan, the
  simulated profile, and optionally the generated source.
* ``hardware`` — print one preset's full machine model (levels, vector
  and matrix units, unified buffer, inter-core link), or every preset.
* ``compare`` — run a workload across systems (one Figure 5/6/7 row).
* ``validate`` — Figure-8 style model validation for a GEMM chain.
* ``workloads`` — list the Table IV / Table V configurations.
* ``compile-batch`` — compile several workloads through the caching
  service, in parallel, and print the per-request report plus stats.
* ``compile-network`` — partition a whole network DAG (Bert/ViT/
  Transformer preset), batch-compile every node through the service, and
  print the per-node plan report (``--json`` for machine-readable stats).
* ``cache`` — inspect (``stats``, ``list``) or ``clear`` a plan cache dir
  (shard layouts are auto-detected; ``stats`` prints byte usage and
  per-shard entry counts).
* ``search-stats`` — run workloads and report the order-search counters
  (orders enumerated / pruned / memo hits / solves, per-stage wall time).
* ``serve`` — run the always-on compilation server (NDJSON over TCP plus
  ``GET /stats`` / ``GET /healthz``); see ``docs/serving.md``.

All commands exit 130 on Ctrl-C instead of dumping a traceback
(``serve`` instead drains gracefully and exits 0).

Examples::

    python -m repro plan G1 --hw xeon-gold-6240 --softmax
    python -m repro plan C3 --hw a100 --source
    python -m repro plan G1 --hw mesh-npu-16 --cores 8
    python -m repro hardware mesh-npu-16
    python -m repro hardware --all
    python -m repro compare G2 --hw a100
    python -m repro validate --size 512 --order m,l,k,n
    python -m repro workloads
    python -m repro compile-batch G10 G11 C7 --cache-dir /tmp/plans
    python -m repro compile-network --network bert-base --hw a100 --json
    python -m repro cache stats --cache-dir /tmp/plans
    python -m repro search-stats G1 C1 --hw ascend-910 --no-prune
    python -m repro serve --cache-dir /tmp/plans --port 9119 --shards 4
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

from . import compile_chain, simulate_plan
from .analysis import render_table, validate_model
from .baselines.systems import PROFILES
from .hardware import preset
from .ir.chain import OperatorChain
from .ir.chains import gemm_chain
from .runtime import compare as run_compare
from .service import CompileRequest, CompileService, open_cache
from .workloads import conv_chain_config, gemm_chain_config


def _apply_cores(args: argparse.Namespace) -> None:
    """Force the block-to-core partition count for this process.

    Thin wrapper over the ``REPRO_CORES`` environment knob
    (:mod:`repro.core.multicore`): inert on presets without an
    inter-core link, so single-core plans are untouched.
    """
    import os

    from .core.multicore import ENV_CORES

    if getattr(args, "cores", None) is not None:
        if args.cores < 1:
            raise SystemExit(f"--cores must be >= 1, got {args.cores}")
        os.environ[ENV_CORES] = str(args.cores)


def _build_workload(
    name: str, softmax: bool, relu: bool, batch: Optional[int]
) -> OperatorChain:
    if name.upper().startswith("G"):
        config = gemm_chain_config(name.upper())
        return config.build(with_softmax=softmax, batch_override=batch)
    if name.upper().startswith("C"):
        config = conv_chain_config(name.upper())
        return config.build(batch=batch or 1, with_relu=relu)
    raise KeyError(f"unknown workload {name!r} (use G1-G12 or C1-C8)")


def _cmd_plan(args: argparse.Namespace) -> int:
    _apply_cores(args)
    hw = preset(args.hw)
    chain = _build_workload(args.workload, args.softmax, args.relu, args.batch)
    print(chain.describe())
    print()
    result = compile_chain(chain, hw)
    kernel = result.kernels[0]
    print(f"fusion decision: {'fuse' if result.fused else 'split'} "
          f"(predicted speedup {result.decision.predicted_speedup:.2f}x)")
    for k in result.kernels:
        print(k.plan.describe())
    print()
    print(simulate_plan(kernel.plan).describe())
    if args.source:
        print()
        print(kernel.source)
    return 0


def _cmd_hardware(args: argparse.Namespace) -> int:
    from .hardware import multicore_presets
    from .hardware.presets import all_presets

    if args.all:
        specs = all_presets() + multicore_presets()
    else:
        if not args.name:
            raise SystemExit("hardware: give a preset name or --all")
        specs = (preset(args.name),)
    print("\n\n".join(spec.describe() for spec in specs))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _apply_cores(args)
    hw = preset(args.hw)
    chain = _build_workload(args.workload, args.softmax, args.relu, args.batch)
    keys = tuple(args.systems.split(",")) if args.systems else ()
    comparison = run_compare([chain], hw, keys,
                             workload_names=[args.workload.upper()])
    print(comparison.table(comparison.systems[0]))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    hw = preset(args.hw)
    chain = gemm_chain(args.size, args.size, args.size, args.size)
    order = tuple(args.order.split(","))
    result = validate_model(
        chain, hw, order, samples=args.samples,
        reuse_intermediates=not args.no_reuse,
    )
    print(f"R^2 = {result.r_squared:.3f}  "
          f"mean relative error = {result.mean_relative_error:.1%}  "
          f"({len(result.points)} points)")
    best = result.best_predicted()
    print(f"model's pick: tiles "
          + ", ".join(f"{n}={best.tiles[n]}" for n in order)
          + f" -> measured {best.measured / 1e6:.2f} MB")
    return 0


def _render_stats(stats: dict) -> str:
    latency = stats["compile_latency"]
    cache = stats["cache"]
    lines = [
        f"requests {stats['requests']}  hits {stats['hits']} "
        f"(memory {stats['hits_memory']}, disk {stats['hits_disk']})  "
        f"misses {stats['misses']}  hit rate {stats['hit_rate']:.0%}",
        f"compiles {stats['compiles']}  coalesced {stats['coalesced']}  "
        f"failures {stats['failures']}  retries {stats['retries']}  "
        f"fallbacks {stats['fallbacks']}  timeouts {stats['timeouts']}",
        f"evictions {stats['evictions']}  corrupt entries "
        f"{stats['corrupt_entries']}  warm-started {stats.get('warm_near', 0)}",
        f"compile latency: p50 {latency['p50']:.2f}s  "
        f"p90 {latency['p90']:.2f}s  p99 {latency['p99']:.2f}s  "
        f"({latency['count']} samples)",
        f"cache: {cache['memory_entries']}/{cache['memory_capacity']} in "
        f"memory, {cache['disk_entries']} on disk "
        f"({cache['disk_bytes']} bytes) at {cache['cache_dir'] or '<none>'}",
    ]
    index = stats.get("shape_index")
    if index:
        state = "on" if index.get("enabled") else "off"
        lines.append(
            f"shape index: {index['entries']} entries across "
            f"{index['structures']} structures (warm start {state})"
        )
    return "\n".join(lines)


def _cmd_compile_batch(args: argparse.Namespace) -> int:
    hw = preset(args.hw)
    requests = [
        CompileRequest(
            chain=_build_workload(name, args.softmax, args.relu, args.batch),
            hardware=hw,
        )
        for name in args.workloads
    ]
    service = CompileService(
        cache_dir=args.cache_dir, memory_capacity=args.memory_capacity
    )
    report = service.compile_batch(
        requests, max_workers=args.workers, timeout=args.timeout
    )
    print(report.table())
    print()
    print(_render_stats(service.stats()))
    return 0 if report.succeeded else 1


def _cmd_compile_network(args: argparse.Namespace) -> int:
    import json as _json

    from .runtime.network import compile_network
    from .runtime.serialization import network_plan_json, save_network_plan
    from .workloads import build_network, network_config

    hw = preset(args.hw)
    config = network_config(args.network)
    dag = build_network(config)
    service = CompileService(
        cache_dir=args.cache_dir, memory_capacity=args.memory_capacity
    )
    schedule = None if args.schedule is None else args.schedule == "on"
    plan = compile_network(
        dag,
        hw,
        service=service,
        max_workers=args.workers,
        timeout=args.timeout,
        timing="simulated" if args.simulate else "predicted",
        schedule=schedule,
        memory_budget=args.memory_budget,
    )
    if args.out:
        save_network_plan(plan, args.out)
    if args.json:
        stats = service.stats()
        sched = plan.schedule
        payload = {
            "network": plan.network,
            "hardware": hw.name,
            "timing": plan.timing,
            "nodes": len(plan.nodes),
            "kernels": plan.kernel_count,
            "fused_nodes": list(plan.fused_nodes),
            "total_time": plan.total_time,
            "unfused_total_time": plan.unfused_total_time,
            "speedup_over_unfused": plan.speedup_over_unfused,
            "schedule": None if sched is None else {
                "execution_order": list(sched.order),
                "peak_memory_bytes": sched.peak_bytes,
                "naive_peak_bytes": sched.naive_peak_bytes,
                "peak_reduction": sched.peak_reduction,
                "memory_budget": sched.memory_budget,
                "within_budget": sched.within_budget,
                "evictions": [
                    {
                        "producer": record.producer,
                        "decision": record.decision,
                        "nbytes": record.nbytes,
                        "overhead_time": record.overhead_time,
                    }
                    for record in sched.evictions
                ],
                "overhead_time": sched.overhead_time,
            },
            "plan_bytes": len(network_plan_json(plan)),
            "service": {
                "requests": stats["requests"],
                "hits": stats["hits"],
                "misses": stats["misses"],
                "coalesced": stats["coalesced"],
                "compiles": stats["compiles"],
                "fallbacks": stats["fallbacks"],
                "hit_rate": stats["hit_rate"],
            },
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(plan.describe())
        print()
        print(_render_stats(service.stats()))
        if args.out:
            print(f"\nplan saved to {args.out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = open_cache(cache_dir=args.cache_dir, shards=args.shards)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached plan(s) from {args.cache_dir}")
        return 0
    if args.action == "stats":
        stats = cache.stats()
        print(
            f"{stats['disk_entries']} cached plan(s), "
            f"{stats['disk_bytes']} bytes on disk across "
            f"{stats['shards']} shard(s) at {args.cache_dir}"
        )
        print(
            f"memory tier: {stats['memory_entries']}/"
            f"{stats['memory_capacity']} entries, "
            f"{stats['memory_bytes']} bytes"
            + (
                f" (budget {stats['max_memory_bytes']})"
                if stats.get("max_memory_bytes")
                else ""
            )
        )
        for shard in stats.get("per_shard", []):
            print(
                f"  shard {shard['shard']:02d}: "
                f"{shard['disk_entries']} entries, "
                f"{shard['disk_bytes']} bytes"
            )
        if args.cache_dir:
            from .service.shapes import INDEX_FILENAME, ShapeIndex

            index = ShapeIndex(
                pathlib.Path(args.cache_dir) / INDEX_FILENAME
            )
            istats = index.stats()
            print(
                f"shape index: {istats['entries']} entries across "
                f"{istats['structures']} structures"
                + (
                    f" ({istats['dropped_records']} dropped records)"
                    if istats["dropped_records"]
                    else ""
                )
            )
        return 0
    keys = cache.disk_keys()
    rows = []
    for key in keys:
        entry = cache.get(key)
        if entry is None:
            continue  # corrupt entries are evicted by the lookup itself
        seconds = entry.get("compile_seconds")
        rows.append(
            [
                key[:16],
                str(entry.get("chain", "?")),
                str(entry.get("hardware", "?")),
                "fused" if entry.get("use_fusion") else "unfused",
                "-" if seconds is None else f"{seconds:.2f}s",
            ]
        )
    print(render_table(
        ["key", "chain", "hardware", "decision", "compile time"], rows
    ))
    return 0


def _render_search_stats(stats: dict) -> str:
    memo = stats.get("memo", {})
    tables = stats.get("tables_memo", {})
    lines = [
        f"searches {stats['searches']}  orders enumerated "
        f"{stats['orders_enumerated']}  candidates {stats['candidates']}",
        f"bound evals {stats['bound_evals']}  pruned {stats['pruned']}  "
        f"memo hits {stats['memo_hits']}  solves {stats['solves']}",
        f"wall time: bounds {stats['bound_seconds']:.3f}s  "
        f"solves {stats['solve_seconds']:.3f}s",
    ]
    if memo:
        lines.append(
            f"solve memo: {memo['entries']}/{memo['capacity']} entries  "
            f"hits {memo['hits']}  misses {memo['misses']}  "
            f"evictions {memo['evictions']}"
        )
    if tables:
        lines.append(
            f"tables memo: {tables['entries']}/{tables['capacity']} "
            f"entries  hits {tables['hits']}  misses {tables['misses']}  "
            f"evictions {tables['evictions']}"
        )
    return "\n".join(lines)


def _cmd_search_stats(args: argparse.Namespace) -> int:
    import os

    from .core.search import (
        SearchPolicy,
        reset_search_stats,
        search_stats_snapshot,
        solve_memo,
    )
    from .core.tables import resolve_model_engine

    if args.engine:
        # Validate eagerly (a typo should fail before compiling anything),
        # then let every solve in this process pick the engine up from the
        # environment — the CLI compiles through the shared pipeline.
        resolve_model_engine(args.engine)
        os.environ["REPRO_MODEL_ENGINE"] = args.engine

    hw = preset(args.hw)
    policy = SearchPolicy(
        prune=not args.no_prune,
        memoize=not args.no_memo,
        workers=max(1, args.workers),
    )
    reset_search_stats()
    solve_memo().clear()
    for name in args.workloads:
        chain = _build_workload(name, args.softmax, args.relu, args.batch)
        compile_chain(chain, hw, policy=policy)
        print(f"compiled {name.upper()} on {hw.name}")
    print()
    print(_render_search_stats(search_stats_snapshot()))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ServerConfig, run_server

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        interactive_queue=args.interactive_queue,
        batch_queue=args.batch_queue,
        cache_dir=args.cache_dir,
        shards=args.shards,
        memory_capacity=args.memory_capacity,
        max_memory_bytes=args.max_memory_bytes,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_inflight=args.tenant_inflight,
        compact_interval=args.compact_interval,
        compact_max_age=args.compact_max_age,
        compact_disk_budget=args.compact_disk_budget,
        warm_start=not args.no_warm_start,
    )
    return run_server(config)


def _cmd_workloads(_: argparse.Namespace) -> int:
    from .workloads import TABLE_IV, TABLE_V

    rows = [
        [c.name, str(c.batch), str(c.m), str(c.n), str(c.k), str(c.l), c.network]
        for c in TABLE_IV
    ]
    print(render_table(["name", "batch", "M", "N", "K", "L", "network"], rows))
    print()
    rows = [
        [c.name, str(c.ic), f"{c.h}x{c.w}", str(c.oc1), str(c.oc2),
         f"{c.st1}/{c.st2}", f"{c.k1}/{c.k2}"]
        for c in TABLE_V
    ]
    print(render_table(
        ["name", "IC", "HxW", "OC1", "OC2", "strides", "kernels"], rows
    ))
    print()
    print("systems:", ", ".join(sorted(PROFILES)))
    return 0


def main(argv: Optional[list] = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Chimera reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="optimize and profile one workload")
    plan.add_argument("workload", help="G1-G12 or C1-C8")
    plan.add_argument("--hw", default="xeon-gold-6240",
                      help="hardware preset name")
    plan.add_argument("--softmax", action="store_true",
                      help="insert softmax between the GEMMs")
    plan.add_argument("--relu", action="store_true",
                      help="append ReLU to each convolution")
    plan.add_argument("--batch", type=int, default=None)
    plan.add_argument("--cores", type=int, default=None,
                      help="force the block-to-core partition count "
                           "(sets REPRO_CORES; inert without an "
                           "inter-core link)")
    plan.add_argument("--source", action="store_true",
                      help="print the generated kernel source")
    plan.set_defaults(fn=_cmd_plan)

    hw_parser = sub.add_parser(
        "hardware", help="print a preset's full machine model"
    )
    hw_parser.add_argument("name", nargs="?", default=None,
                           help="preset name (e.g. a100, mesh-npu-16)")
    hw_parser.add_argument("--all", action="store_true",
                           help="print every preset, multi-core included")
    hw_parser.set_defaults(fn=_cmd_hardware)

    cmp_parser = sub.add_parser("compare", help="run systems side by side")
    cmp_parser.add_argument("workload")
    cmp_parser.add_argument("--hw", default="xeon-gold-6240")
    cmp_parser.add_argument("--softmax", action="store_true")
    cmp_parser.add_argument("--relu", action="store_true")
    cmp_parser.add_argument("--batch", type=int, default=None)
    cmp_parser.add_argument("--cores", type=int, default=None,
                            help="force the block-to-core partition count "
                                 "(sets REPRO_CORES)")
    cmp_parser.add_argument(
        "--systems", default="",
        help="comma-separated registry keys (default: all for the backend)",
    )
    cmp_parser.set_defaults(fn=_cmd_compare)

    val = sub.add_parser("validate", help="Figure-8 model validation")
    val.add_argument("--hw", default="xeon-gold-6240")
    val.add_argument("--size", type=int, default=512)
    val.add_argument("--order", default="m,l,k,n")
    val.add_argument("--samples", type=int, default=30)
    val.add_argument("--no-reuse", action="store_true")
    val.set_defaults(fn=_cmd_validate)

    wl = sub.add_parser("workloads", help="list Table IV / Table V configs")
    wl.set_defaults(fn=_cmd_workloads)

    batch = sub.add_parser(
        "compile-batch",
        help="compile several workloads through the caching service",
    )
    batch.add_argument("workloads", nargs="+", help="G1-G12 and/or C1-C8")
    batch.add_argument("--hw", default="xeon-gold-6240")
    batch.add_argument("--softmax", action="store_true")
    batch.add_argument("--relu", action="store_true")
    batch.add_argument("--batch", type=int, default=None)
    batch.add_argument("--cache-dir", default=None,
                       help="persistent plan cache directory")
    batch.add_argument("--memory-capacity", type=int, default=128,
                       help="in-memory LRU size, entries")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker pool size (default: one per request, "
                            "capped at the CPU count)")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-request timeout in seconds")
    batch.set_defaults(fn=_cmd_compile_batch)

    network = sub.add_parser(
        "compile-network",
        help="partition a whole network DAG and batch-compile its chains",
    )
    network.add_argument("--network", required=True,
                         help="network preset (e.g. Bert-Base; "
                              "case-insensitive)")
    network.add_argument("--hw", "--hardware", dest="hw",
                         default="xeon-gold-6240")
    network.add_argument("--cache-dir", default=None,
                         help="persistent plan cache directory")
    network.add_argument("--memory-capacity", type=int, default=128)
    network.add_argument("--workers", type=int, default=None,
                         help="batch pool size")
    network.add_argument("--timeout", type=float, default=None,
                         help="per-node compile timeout in seconds")
    network.add_argument("--simulate", action="store_true",
                         help="time nodes on the memory-hierarchy "
                              "simulator (slow) instead of the "
                              "analytical model")
    network.add_argument("--schedule", choices=["on", "off"], default=None,
                         help="graph-level execution scheduling "
                              "(default: the REPRO_SCHED environment, on)")
    network.add_argument("--memory-budget", type=int, default=None,
                         help="residency budget in bytes for the "
                              "scheduler (default: the preset's "
                              "DRAM-side capacity)")
    network.add_argument("--out", default=None,
                         help="write the serialized NetworkPlan here")
    network.add_argument("--json", action="store_true",
                         help="print machine-readable stats instead of "
                              "the table")
    network.set_defaults(fn=_cmd_compile_network)

    cache = sub.add_parser("cache", help="inspect or clear a plan cache")
    cache.add_argument("action", choices=["stats", "list", "clear"])
    cache.add_argument("--cache-dir", required=True)
    cache.add_argument("--shards", type=int, default=None,
                       help="shard count (default: auto-detect from the "
                            "directory layout)")
    cache.set_defaults(fn=_cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the always-on compilation server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9119,
                       help="TCP port (0 picks a free one and prints it)")
    serve.add_argument("--workers", type=int, default=4,
                       help="compile thread-pool width")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent plan cache (also holds the "
                            "metrics checkpoint for hot restarts)")
    serve.add_argument("--shards", type=int, default=4,
                       help="plan-cache shards")
    serve.add_argument("--memory-capacity", type=int, default=512,
                       help="memory-tier entries, total across shards")
    serve.add_argument("--max-memory-bytes", type=int, default=None,
                       help="memory-tier byte budget (size-aware LRU)")
    serve.add_argument("--interactive-queue", type=int, default=256,
                       help="interactive admission-queue bound")
    serve.add_argument("--batch-queue", type=int, default=1024,
                       help="batch admission-queue bound")
    serve.add_argument("--tenant-rate", type=float, default=0.0,
                       help="per-tenant requests/second (0 = unlimited)")
    serve.add_argument("--tenant-burst", type=float, default=None,
                       help="per-tenant token-bucket ceiling "
                            "(default: 2x rate)")
    serve.add_argument("--tenant-inflight", type=int, default=0,
                       help="per-tenant in-flight cap (0 = unlimited)")
    serve.add_argument("--compact-interval", type=float, default=60.0,
                       help="seconds between disk compaction passes "
                            "(0 disables)")
    serve.add_argument("--compact-max-age", type=float, default=None,
                       help="evict disk entries older than this many "
                            "seconds")
    serve.add_argument("--compact-disk-budget", type=int, default=None,
                       help="disk byte budget enforced by compaction")
    serve.add_argument("--no-warm-start", action="store_true",
                       help="skip re-warming the memory tier from disk")
    serve.set_defaults(fn=_cmd_serve)

    search = sub.add_parser(
        "search-stats",
        help="compile workloads and report order-search counters",
    )
    search.add_argument("workloads", nargs="+", help="G1-G12 and/or C1-C8")
    search.add_argument("--hw", default="xeon-gold-6240")
    search.add_argument("--softmax", action="store_true")
    search.add_argument("--relu", action="store_true")
    search.add_argument("--batch", type=int, default=None)
    search.add_argument("--no-prune", action="store_true",
                        help="disable the DV lower-bound pruning")
    search.add_argument("--no-memo", action="store_true",
                        help="disable solve memoization")
    search.add_argument("--workers", type=int, default=1,
                        help="process-pool width for surviving orders")
    search.add_argument("--engine", default=None,
                        choices=["scalar", "tables"],
                        help="movement-model engine (default: the "
                             "REPRO_MODEL_ENGINE environment)")
    search.set_defaults(fn=_cmd_search_stats)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Conventional 128 + SIGINT exit, no traceback spew.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
