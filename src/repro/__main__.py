"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan`` — optimize a named workload and print the fusion plan, the
  simulated profile, and optionally the generated source.
* ``compare`` — run a workload across systems (one Figure 5/6/7 row).
* ``validate`` — Figure-8 style model validation for a GEMM chain.
* ``workloads`` — list the Table IV / Table V configurations.

Examples::

    python -m repro plan G1 --hw xeon-gold-6240 --softmax
    python -m repro plan C3 --hw a100 --source
    python -m repro compare G2 --hw a100
    python -m repro validate --size 512 --order m,l,k,n
    python -m repro workloads
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from . import compile_chain, simulate_plan
from .analysis import render_table, validate_model
from .baselines.systems import PROFILES
from .hardware import preset
from .ir.chain import OperatorChain
from .ir.chains import gemm_chain
from .runtime import compare as run_compare
from .workloads import conv_chain_config, gemm_chain_config


def _build_workload(
    name: str, softmax: bool, relu: bool, batch: Optional[int]
) -> OperatorChain:
    if name.upper().startswith("G"):
        config = gemm_chain_config(name.upper())
        return config.build(with_softmax=softmax, batch_override=batch)
    if name.upper().startswith("C"):
        config = conv_chain_config(name.upper())
        return config.build(batch=batch or 1, with_relu=relu)
    raise KeyError(f"unknown workload {name!r} (use G1-G12 or C1-C8)")


def _cmd_plan(args: argparse.Namespace) -> int:
    hw = preset(args.hw)
    chain = _build_workload(args.workload, args.softmax, args.relu, args.batch)
    print(chain.describe())
    print()
    result = compile_chain(chain, hw)
    kernel = result.kernels[0]
    print(f"fusion decision: {'fuse' if result.fused else 'split'} "
          f"(predicted speedup {result.decision.predicted_speedup:.2f}x)")
    for k in result.kernels:
        print(k.plan.describe())
    print()
    print(simulate_plan(kernel.plan).describe())
    if args.source:
        print()
        print(kernel.source)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    hw = preset(args.hw)
    chain = _build_workload(args.workload, args.softmax, args.relu, args.batch)
    keys = tuple(args.systems.split(",")) if args.systems else ()
    comparison = run_compare([chain], hw, keys,
                             workload_names=[args.workload.upper()])
    print(comparison.table(comparison.systems[0]))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    hw = preset(args.hw)
    chain = gemm_chain(args.size, args.size, args.size, args.size)
    order = tuple(args.order.split(","))
    result = validate_model(
        chain, hw, order, samples=args.samples,
        reuse_intermediates=not args.no_reuse,
    )
    print(f"R^2 = {result.r_squared:.3f}  "
          f"mean relative error = {result.mean_relative_error:.1%}  "
          f"({len(result.points)} points)")
    best = result.best_predicted()
    print(f"model's pick: tiles "
          + ", ".join(f"{n}={best.tiles[n]}" for n in order)
          + f" -> measured {best.measured / 1e6:.2f} MB")
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    from .workloads import TABLE_IV, TABLE_V

    rows = [
        [c.name, str(c.batch), str(c.m), str(c.n), str(c.k), str(c.l), c.network]
        for c in TABLE_IV
    ]
    print(render_table(["name", "batch", "M", "N", "K", "L", "network"], rows))
    print()
    rows = [
        [c.name, str(c.ic), f"{c.h}x{c.w}", str(c.oc1), str(c.oc2),
         f"{c.st1}/{c.st2}", f"{c.k1}/{c.k2}"]
        for c in TABLE_V
    ]
    print(render_table(
        ["name", "IC", "HxW", "OC1", "OC2", "strides", "kernels"], rows
    ))
    print()
    print("systems:", ", ".join(sorted(PROFILES)))
    return 0


def main(argv: Optional[list] = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Chimera reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="optimize and profile one workload")
    plan.add_argument("workload", help="G1-G12 or C1-C8")
    plan.add_argument("--hw", default="xeon-gold-6240",
                      help="hardware preset name")
    plan.add_argument("--softmax", action="store_true",
                      help="insert softmax between the GEMMs")
    plan.add_argument("--relu", action="store_true",
                      help="append ReLU to each convolution")
    plan.add_argument("--batch", type=int, default=None)
    plan.add_argument("--source", action="store_true",
                      help="print the generated kernel source")
    plan.set_defaults(fn=_cmd_plan)

    cmp_parser = sub.add_parser("compare", help="run systems side by side")
    cmp_parser.add_argument("workload")
    cmp_parser.add_argument("--hw", default="xeon-gold-6240")
    cmp_parser.add_argument("--softmax", action="store_true")
    cmp_parser.add_argument("--relu", action="store_true")
    cmp_parser.add_argument("--batch", type=int, default=None)
    cmp_parser.add_argument(
        "--systems", default="",
        help="comma-separated registry keys (default: all for the backend)",
    )
    cmp_parser.set_defaults(fn=_cmd_compare)

    val = sub.add_parser("validate", help="Figure-8 model validation")
    val.add_argument("--hw", default="xeon-gold-6240")
    val.add_argument("--size", type=int, default=512)
    val.add_argument("--order", default="m,l,k,n")
    val.add_argument("--samples", type=int, default=30)
    val.add_argument("--no-reuse", action="store_true")
    val.set_defaults(fn=_cmd_validate)

    wl = sub.add_parser("workloads", help="list Table IV / Table V configs")
    wl.set_defaults(fn=_cmd_workloads)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
