"""Network-level compilation: whole DAGs through the Chimera pipeline.

The paper's end-to-end results (Figure 9 / Table I) come from compiling the
fusable chains *inside* whole networks — Bert, ViT, Transformer — not from
isolated chains.  :func:`compile_network` is that path in production shape:

1. **partition** — :func:`repro.ir.partition_graph` splits the
   :class:`ComputeDAG` into compute-intensive fusable chains and the
   memory-intensive / standalone remainder, validating that every node
   lands in exactly one side;
2. **batch compile** — every node is fanned through
   :meth:`CompileService.compile_batch` (plan cache, request coalescing,
   per-request unfused fallback) or compiled serially when no service is
   given; the per-chain fused-vs-unfused decision is
   :func:`repro.core.fusion.decide_fusion`, exactly as for single chains;
3. **assemble** — the per-node kernels, decisions and timings become a
   serializable :class:`NetworkPlan` whose end-to-end time replaces the
   analytic-only :func:`repro.workloads.network_time` estimate with
   plan-backed chain timings.

Timing modes: ``"predicted"`` (default) sums the compiled kernels'
analytical times — deterministic and cheap, so it is what gets serialized
and cached; ``"simulated"`` additionally runs every node's kernel sequence
through the memory-hierarchy simulator (seconds per node — the fidelity of
the Figure 9 harness, at its cost).
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.fusion import FusionDecision
from ..core.optimizer import ChimeraConfig
from ..core.plan import FusionPlan
from ..core.search import SearchPolicy
from ..hardware.spec import HardwareSpec
from ..ir.graph import ComputeDAG, GraphNode, StitchedOp, partition_graph
from ..workloads.networks import NetworkTiming
from . import pipeline
from .pipeline import CompileResult
from .scheduler import GraphSchedule, schedule_partition, scheduling_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle exists only for typing
    from ..service import CompileService

#: ``NetworkPlan.timing`` values.
TIMING_PREDICTED = "predicted"
TIMING_SIMULATED = "simulated"


class NetworkCompilationError(RuntimeError):
    """One or more nodes of a network failed to compile."""


@dataclasses.dataclass(frozen=True)
class NodePlan:
    """The compiled artifact for one graph node.

    Attributes:
        name: graph node name.
        repeat: executions per network run (timing multiplies by this).
        fusable: whether the partitioner classified the node as a
            compute-intensive fusable chain.
        fused: the fuse-or-not decision taken for the node.
        plans: the chosen kernel plans in launch order (micro kernels
            attached) — one when fused, one per operator otherwise.
        time: per-execution time of the chosen kernels.
        unfused_time: per-execution time of the all-unfused alternative
            (equals ``time`` when the node runs unfused).
        members: original DAG node names this plan node covers — more than
            one when the partitioner stitched a run of nodes into one
            fused chain.
        stitched: the memory-intensive operators stitched into this node
            (empty for ordinary nodes).
        source: where the compile came from (``"compiled"``, a cache tier,
            ``"coalesced"``, or ``"fallback"``); diagnostic only — it is
            deliberately **not** serialized, so plans stay byte-identical
            across cold and warm caches.
        spill_time: seconds per network run charged for this node's
            output residency decision — the DRAM round trip when its
            intermediate is spilled, or the recompute time when it is
            rematerialized (repeat counts folded in; 0 when kept or when
            scheduling is off).
    """

    name: str
    repeat: int
    fusable: bool
    fused: bool
    plans: Tuple[FusionPlan, ...]
    time: float
    unfused_time: float
    members: Tuple[str, ...] = ()
    stitched: Tuple[StitchedOp, ...] = ()
    source: Optional[str] = None
    spill_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.members:
            object.__setattr__(self, "members", (self.name,))

    @property
    def total_time(self) -> float:
        return self.time * self.repeat + self.spill_time

    @property
    def kernels(self) -> int:
        return len(self.plans)

    @property
    def cores(self) -> int:
        """Cores the node's kernels span (1 unless a plan partitioned).

        Derived from the chosen plans' :class:`repro.core.CorePartition`
        records, so it needs no serialization of its own.
        """
        return max(
            (
                plan.partition.cores
                for plan in self.plans
                if plan.partition is not None
            ),
            default=1,
        )


@dataclasses.dataclass(frozen=True)
class NetworkPlan:
    """End-to-end compiled plan for one network on one machine model.

    The plan is serializable (:func:`repro.runtime.network_plan_to_dict`)
    and deterministic: recompiling the same network — cold cache, warm
    cache, or parallel search — yields a byte-identical encoding.
    """

    network: str
    hardware: HardwareSpec
    nodes: Tuple[NodePlan, ...]
    timing: str = TIMING_PREDICTED
    schedule: Optional[GraphSchedule] = None

    def __post_init__(self) -> None:
        if self.timing not in (TIMING_PREDICTED, TIMING_SIMULATED):
            raise ValueError(f"unknown timing mode {self.timing!r}")

    def node(self, name: str) -> NodePlan:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"plan {self.network!r} has no node {name!r}")

    @property
    def total_time(self) -> float:
        """End-to-end time: every node, times its repeat count."""
        return sum(node.total_time for node in self.nodes)

    @property
    def unfused_total_time(self) -> float:
        """The all-unfused baseline over the same kernels.

        Residency overhead (``spill_time``) charges both sides: the
        execution order and the eviction set are fixed before the
        per-node fuse-or-not choice, so the baseline pays the same
        graph-level traffic.
        """
        return sum(
            node.unfused_time * node.repeat + node.spill_time
            for node in self.nodes
        )

    @property
    def execution_order(self) -> Tuple[str, ...]:
        """Node names in execution order (the plan's node order)."""
        if self.schedule is not None:
            return self.schedule.order
        return tuple(node.name for node in self.nodes)

    @property
    def peak_memory_bytes(self) -> Optional[int]:
        """Scheduled peak resident intermediate bytes (None unscheduled)."""
        return None if self.schedule is None else self.schedule.peak_bytes

    @property
    def memory_budget(self) -> Optional[int]:
        """The residency budget the schedule was solved for."""
        return None if self.schedule is None else self.schedule.memory_budget

    @property
    def spill_total_time(self) -> float:
        """Seconds per run spent on graph-level spills and recomputes."""
        return sum(node.spill_time for node in self.nodes)

    @property
    def speedup_over_unfused(self) -> float:
        return self.unfused_total_time / self.total_time

    @property
    def fused_nodes(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes if n.fused and n.fusable)

    @property
    def stitched_nodes(self) -> Tuple[str, ...]:
        """Plan nodes that merged several graph nodes via stitching."""
        return tuple(n.name for n in self.nodes if n.stitched)

    @property
    def kernel_count(self) -> int:
        return sum(node.kernels for node in self.nodes)

    def timings(self) -> NetworkTiming:
        """Plan-backed :class:`NetworkTiming` (per-node, repeat applied).

        This is the replacement for the analytic-only
        :func:`repro.workloads.network_time` path: the chain entries come
        from compiled plans instead of a baseline system profile.
        """
        return NetworkTiming(
            network=self.network,
            node_times={n.name: n.total_time for n in self.nodes},
        )

    def describe(self) -> str:
        from ..analysis.reporting import network_plan_table

        summary = (
            f"network {self.network} on {self.hardware.name}: "
            f"{len(self.nodes)} nodes, {self.kernel_count} kernels, "
            f"{self.total_time * 1e3:.3f} ms end-to-end "
            f"({self.speedup_over_unfused:.2f}x vs unfused, "
            f"{self.timing} timing)"
        )
        if self.schedule is not None:
            summary += "\n" + self.schedule.describe()
        return network_plan_table(self) + "\n" + summary

    def __str__(self) -> str:
        return (
            f"NetworkPlan({self.network}, {len(self.nodes)} nodes, "
            f"{self.total_time * 1e3:.3f} ms)"
        )


def _plan_sequence_time(
    plans: Tuple[FusionPlan, ...], simulate: bool
) -> float:
    """Per-execution time of a kernel sequence, by the selected mode.

    Simulated timing lowers each plan per query, but the region trace is
    memoized on the plan's compiled schedule (keyed by content digest), so
    repeated nodes of a network — and the fused-vs-unfused pair of one
    node — replay materialized traces instead of re-walking loop trees.
    """
    if simulate:
        from ..sim.profiler import simulate_sequence

        return simulate_sequence(
            list(plans), name="+".join(p.chain.name for p in plans)
        ).time
    return sum(plan.predicted_time for plan in plans)


def _node_plan(
    node: GraphNode,
    result: CompileResult,
    hardware: HardwareSpec,
    fusable: bool,
    source: str,
    simulate: bool,
    members: Tuple[str, ...] = (),
    stitched: Tuple[StitchedOp, ...] = (),
    spill_time: float = 0.0,
) -> NodePlan:
    """Assemble one node's entry from its compile result."""
    decision: FusionDecision = result.decision
    chosen = tuple(kernel.plan for kernel in result.kernels)
    time_chosen = _plan_sequence_time(chosen, simulate)
    if decision.use_fusion:
        unfused = tuple(
            pipeline._attach_micro_kernel(plan, hardware)
            for plan in decision.unfused_plans
        )
        time_unfused = _plan_sequence_time(unfused, simulate)
    else:
        time_unfused = time_chosen
    return NodePlan(
        name=node.name,
        repeat=node.repeat,
        fusable=fusable,
        fused=decision.use_fusion,
        plans=chosen,
        time=time_chosen,
        unfused_time=time_unfused,
        members=members or (node.name,),
        stitched=stitched,
        source=source,
        spill_time=spill_time,
    )


def compile_network(
    dag: ComputeDAG,
    hardware: HardwareSpec,
    *,
    service: Optional["CompileService"] = None,
    config: Optional[ChimeraConfig] = None,
    policy: Optional[SearchPolicy] = None,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    timing: str = TIMING_PREDICTED,
    stitch: Optional[bool] = None,
    schedule: Optional[bool] = None,
    memory_budget: Optional[int] = None,
) -> NetworkPlan:
    """Compile every node of a network DAG into a :class:`NetworkPlan`.

    Args:
        dag: the network graph (e.g. from
            :func:`repro.workloads.build_network`).
        hardware: machine model every node is compiled for.
        service: a :class:`repro.service.CompileService`; when given, the
            nodes are batch-compiled through its cache/coalescing front end
            in parallel.  Without it, nodes compile serially in-process.
        config: optimizer overrides applied to every node.
        policy: order-search execution strategy (serial path only; the
            service owns its own policy environment).
        max_workers: batch pool size (service path only).
        timeout: per-node compile budget in seconds (service path only).
        timing: ``"predicted"`` (analytical kernel times, default) or
            ``"simulated"`` (memory-hierarchy simulation per node —
            seconds per node).
        stitch: force memory-intensive stitching on/off for the partition
            (default: the ``REPRO_STITCH`` environment, on).  Stitched
            plan nodes cover several graph nodes; see
            :attr:`NodePlan.members`.
        schedule: force graph-level execution scheduling on/off (default:
            the ``REPRO_SCHED`` environment, on).  When on, the plan's
            nodes are ordered by the peak-memory-minimizing schedule and
            ``NetworkPlan.schedule`` carries the residency decisions;
            when off, nodes keep the partition order and ``schedule`` is
            ``None``.
        memory_budget: residency budget in bytes for the scheduler
            (default: the hardware's DRAM-side capacity; see
            :func:`repro.runtime.scheduler.default_memory_budget`).

    Returns:
        the assembled, serializable network plan.

    Raises:
        NetworkCompilationError: when any node fails beyond the service's
            fallback recovery (per-node isolation: one bad node reports all
            failures, it does not corrupt its batch mates).
        ValueError: for an unknown ``timing`` mode.
    """
    if timing not in (TIMING_PREDICTED, TIMING_SIMULATED):
        raise ValueError(
            f"unknown timing mode {timing!r} "
            f"(use {TIMING_PREDICTED!r} or {TIMING_SIMULATED!r})"
        )
    simulate = timing == TIMING_SIMULATED
    partition = partition_graph(dag, stitch=stitch)
    fusable_names = {node.name for node in partition.chains}
    plan_nodes = partition.all_nodes()

    results: Dict[str, Tuple[CompileResult, str]] = {}
    if service is None:
        for node in plan_nodes:
            result = pipeline.compile_chain(
                node.chain, hardware, config, policy=policy
            )
            results[node.name] = (result, "compiled")
    else:
        from ..service import CompileRequest

        requests = [
            CompileRequest(chain=node.chain, hardware=hardware, config=config)
            for node in plan_nodes
        ]
        report = service.compile_batch(
            requests, max_workers=max_workers, timeout=timeout
        )
        failures: List[str] = []
        for node, item in zip(plan_nodes, report.items):
            if item.served is None or item.served.result is None:
                failures.append(
                    f"{node.name}: {item.error or item.status}"
                )
                continue
            results[node.name] = (item.served.result, item.source)
        if failures:
            raise NetworkCompilationError(
                f"network {dag.name!r} on {hardware.name}: "
                f"{len(failures)}/{len(plan_nodes)} nodes failed — "
                + "; ".join(failures)
            )

    do_schedule = scheduling_enabled() if schedule is None else schedule
    graph_schedule: Optional[GraphSchedule] = None
    ordered_nodes = list(plan_nodes)
    overheads: Dict[str, float] = {}
    if do_schedule:
        # Price rematerialization with the kernels' analytical times —
        # available before (and independent of) the simulated lowering,
        # which breaks the schedule-needs-times / times-follow-schedule
        # circularity deterministically.
        node_times = {
            name: sum(kernel.plan.predicted_time for kernel in result.kernels)
            for name, (result, _source) in results.items()
        }
        # Partitioned nodes stage their inter-core transfer buffers while
        # they execute; the scheduler charges those bytes at the node's
        # own step so concurrently-resident blocks on distinct cores are
        # accounted for.
        node_transients = {
            name: sum(
                int(kernel.plan.partition.comm_bytes)
                for kernel in result.kernels
                if kernel.plan.partition is not None
            )
            for name, (result, _source) in results.items()
        }
        graph_schedule = schedule_partition(
            partition,
            hardware,
            node_times=node_times,
            memory_budget=memory_budget,
            dag_order=[node.name for node in dag.nodes],
            node_transients=node_transients,
        )
        by_name = {node.name: node for node in plan_nodes}
        ordered_nodes = [by_name[name] for name in graph_schedule.order]
        overheads = {
            record.producer: record.overhead_time
            for record in graph_schedule.residency
        }

    nodes = []
    for node in ordered_nodes:
        record = partition.stitched_record(node.name)
        nodes.append(
            _node_plan(
                node,
                results[node.name][0],
                hardware,
                node.name in fusable_names,
                results[node.name][1],
                simulate,
                members=partition.members_of(node.name),
                stitched=record.stitched if record is not None else (),
                spill_time=overheads.get(node.name, 0.0),
            )
        )
    if simulate and graph_schedule is not None:
        # The simulated path replays the scheduled order through the
        # residency simulator and refuses to ship a plan whose predicted
        # peak the replay cannot reproduce.
        from ..sim.residency import replay_schedule

        trace = replay_schedule(graph_schedule)
        if (
            trace.peak_bytes != graph_schedule.peak_bytes
            or trace.live_bytes != graph_schedule.live_bytes
        ):
            raise NetworkCompilationError(
                f"network {dag.name!r} on {hardware.name}: schedule "
                f"replay measured peak {trace.peak_bytes} bytes but the "
                f"scheduler predicted {graph_schedule.peak_bytes}"
            )
    return NetworkPlan(
        network=dag.name,
        hardware=hardware,
        nodes=tuple(nodes),
        timing=timing,
        schedule=graph_schedule,
    )


@dataclasses.dataclass(frozen=True)
class NetworkBenchReport:
    """Wall-clock comparison of compile strategies for one network."""

    network: str
    hardware: str
    cold_serial_seconds: float
    cold_batch_seconds: float
    warm_batch_seconds: float

    @property
    def warm_speedup(self) -> float:
        """Warm-cache batch compile versus cold serial compile."""
        return self.cold_serial_seconds / self.warm_batch_seconds

    @property
    def batch_speedup(self) -> float:
        return self.cold_serial_seconds / self.cold_batch_seconds


def benchmark_network_compile(
    dag: ComputeDAG,
    hardware: HardwareSpec,
    service: "CompileService",
    *,
    max_workers: Optional[int] = None,
) -> Tuple[NetworkPlan, NetworkBenchReport]:
    """Time cold-serial, cold-batch, and warm-batch compiles of ``dag``.

    The service's cache must be empty on entry for the cold runs to be
    honest; the warm run replays through whatever the cold batch cached.
    Returns the warm plan plus the timing report (the three plans are
    byte-identical by the determinism guarantee, so only one is returned).
    """
    from ..core.search import solve_memo

    solve_memo().clear()
    started = time.perf_counter()
    compile_network(dag, hardware)
    cold_serial = time.perf_counter() - started

    service.clear_cache()
    solve_memo().clear()
    started = time.perf_counter()
    compile_network(dag, hardware, service=service, max_workers=max_workers)
    cold_batch = time.perf_counter() - started

    started = time.perf_counter()
    plan = compile_network(
        dag, hardware, service=service, max_workers=max_workers
    )
    warm_batch = time.perf_counter() - started
    return plan, NetworkBenchReport(
        network=dag.name,
        hardware=hardware.name,
        cold_serial_seconds=cold_serial,
        cold_batch_seconds=cold_batch,
        warm_batch_seconds=warm_batch,
    )
