"""JSON serialization for chains, hardware and fusion plans.

Optimizing a chain costs seconds (order enumeration plus constrained
solves); production deployments cache the result.  This module round-trips
the full planning state — chain IR, machine model, per-level schedules —
through plain JSON, so plans can be persisted, diffed, and reloaded without
re-running the optimizer.

``save_plan`` / ``load_plan`` are the high-level entry points::

    plan = repro.optimize_chain(chain, hw)
    save_plan(plan, "g1.plan.json")
    ...
    plan = load_plan("g1.plan.json")
    kernel = build_kernel(plan)
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Any, Dict, Union

if TYPE_CHECKING:  # pragma: no cover - circular only for typing
    from .network import NetworkPlan

from ..core.plan import CorePartition, FusionPlan, LevelSchedule
from ..hardware.spec import (
    HardwareSpec,
    InterCoreLink,
    MatrixUnit,
    MemoryLevel,
    VectorUnit,
)
from ..ir.access import AffineExpr, TensorAccess
from ..ir.chain import OperatorChain
from ..ir.dtypes import dtype as dtype_by_name
from ..ir.loops import Loop, LoopKind
from ..ir.operator import OperatorSpec
from ..ir.tensor import TensorSpec

#: Version 3 added stitched-node membership (``members`` / ``stitched``)
#: to network plan nodes.  Version 4 added graph-level execution
#: scheduling: per-node ``spill_time`` and the network-level ``schedule``
#: (execution order, live-byte profile, residency decisions; ``null``
#: when compiled with ``REPRO_SCHED=0``).  Version 5 added multi-core
#: scale-out: the hardware ``link`` (inter-core interconnect), the plan
#: ``partition`` (block-to-core sharding and its communication term),
#: and per-node schedule ``transients`` (comm staging bytes).
FORMAT_VERSION = 5

PathLike = Union[str, pathlib.Path]


class PlanFormatError(ValueError):
    """A serialized plan cannot be decoded by this build.

    Raised for unknown ``format_version`` values and for structurally
    damaged payloads (missing required fields).  Subclasses ``ValueError``
    so callers that predate the typed error keep working.
    """


# ----------------------------------------------------------------------
# IR encoding
# ----------------------------------------------------------------------
def _encode_expr(expr: AffineExpr) -> Dict[str, Any]:
    return {"terms": [list(t) for t in expr.terms], "offset": expr.offset}


def _decode_expr(data: Dict[str, Any]) -> AffineExpr:
    return AffineExpr.of(
        *[(name, coeff) for name, coeff in data["terms"]],
        offset=data["offset"],
    )


def _encode_access(access: TensorAccess) -> Dict[str, Any]:
    return {
        "tensor": access.tensor,
        "dims": [_encode_expr(d) for d in access.dims],
    }


def _decode_access(data: Dict[str, Any]) -> TensorAccess:
    return TensorAccess(
        data["tensor"], tuple(_decode_expr(d) for d in data["dims"])
    )


def _encode_op(op: OperatorSpec) -> Dict[str, Any]:
    return {
        "name": op.name,
        "kind": op.kind,
        "tag": op.tag,
        "loops": [[l.name, l.extent, l.kind.value] for l in op.loops],
        "reads": [_encode_access(a) for a in op.reads],
        "writes": [_encode_access(a) for a in op.writes],
        "flops": op.flops,
        "attrs": dict(op.attrs),
    }


def _decode_op(data: Dict[str, Any]) -> OperatorSpec:
    return OperatorSpec(
        name=data["name"],
        kind=data["kind"],
        tag=data["tag"],
        loops=tuple(
            Loop(name, extent, LoopKind(kind))
            for name, extent, kind in data["loops"]
        ),
        reads=tuple(_decode_access(a) for a in data["reads"]),
        writes=tuple(_decode_access(a) for a in data["writes"]),
        flops=data["flops"],
        attrs=data["attrs"],
    )


def chain_to_dict(chain: OperatorChain) -> Dict[str, Any]:
    """Encode a chain (operators, tensors) as JSON-ready data."""
    return {
        "name": chain.name,
        "ops": [_encode_op(op) for op in chain.ops],
        "tensors": {
            name: {"shape": list(spec.shape), "dtype": spec.dtype.name}
            for name, spec in chain.tensors.items()
        },
    }


def chain_from_dict(data: Dict[str, Any]) -> OperatorChain:
    """Rebuild a chain; validation re-runs on construction."""
    tensors = {
        name: TensorSpec(name, tuple(td["shape"]), dtype_by_name(td["dtype"]))
        for name, td in data["tensors"].items()
    }
    return OperatorChain(
        name=data["name"],
        ops=tuple(_decode_op(od) for od in data["ops"]),
        tensors=tensors,
    )


# ----------------------------------------------------------------------
# hardware encoding
# ----------------------------------------------------------------------
def hardware_to_dict(hw: HardwareSpec) -> Dict[str, Any]:
    """Encode a machine model as JSON-ready data."""
    return {
        "name": hw.name,
        "backend": hw.backend,
        "peak_flops": hw.peak_flops,
        "num_cores": hw.num_cores,
        "levels": [
            {
                "name": level.name,
                "capacity": level.capacity,
                "bandwidth": level.bandwidth,
                "shared": level.shared,
                "software_managed": level.software_managed,
            }
            for level in hw.levels
        ],
        "kernel_launch_overhead": hw.kernel_launch_overhead,
        "vector_unit": (
            None
            if hw.vector_unit is None
            else {
                "num_registers": hw.vector_unit.num_registers,
                "register_bits": hw.vector_unit.register_bits,
                "fma_pipeline_depth": hw.vector_unit.fma_pipeline_depth,
            }
        ),
        "matrix_unit": (
            None
            if hw.matrix_unit is None
            else {
                "name": hw.matrix_unit.name,
                "m": hw.matrix_unit.m,
                "n": hw.matrix_unit.n,
                "k": hw.matrix_unit.k,
            }
        ),
        "unified_buffer": hw.unified_buffer,
        "unified_buffer_bandwidth": hw.unified_buffer_bandwidth,
        "link": (
            None
            if hw.link is None
            else {
                "bandwidth": hw.link.bandwidth,
                "latency": hw.link.latency,
                "topology": hw.link.topology,
                "per_hop_cost": hw.link.per_hop_cost,
            }
        ),
    }


def hardware_from_dict(data: Dict[str, Any]) -> HardwareSpec:
    """Rebuild a machine model from :func:`hardware_to_dict` output."""
    vector_unit = data.get("vector_unit")
    matrix_unit = data.get("matrix_unit")
    link = data.get("link")
    return HardwareSpec(
        name=data["name"],
        backend=data["backend"],
        peak_flops=data["peak_flops"],
        num_cores=data["num_cores"],
        levels=tuple(
            MemoryLevel(
                ld["name"], ld["capacity"], ld["bandwidth"],
                ld["shared"], ld["software_managed"],
            )
            for ld in data["levels"]
        ),
        kernel_launch_overhead=data["kernel_launch_overhead"],
        vector_unit=None if vector_unit is None else VectorUnit(**vector_unit),
        matrix_unit=None if matrix_unit is None else MatrixUnit(**matrix_unit),
        unified_buffer=data["unified_buffer"],
        unified_buffer_bandwidth=data["unified_buffer_bandwidth"],
        link=None if link is None else InterCoreLink(**link),
    )


# ----------------------------------------------------------------------
# plan encoding
# ----------------------------------------------------------------------
def plan_to_dict(plan: FusionPlan) -> Dict[str, Any]:
    """Encode a full fusion plan as JSON-ready data."""
    return {
        "format_version": FORMAT_VERSION,
        "chain": chain_to_dict(plan.chain),
        "hardware": hardware_to_dict(plan.hardware),
        "levels": [
            {
                "level": sched.level,
                "order": list(sched.order),
                "tiles": dict(sched.tiles),
                "predicted_dv": sched.predicted_dv,
                "predicted_mu": sched.predicted_mu,
                "capacity": sched.capacity,
                "bandwidth": sched.bandwidth,
            }
            for sched in plan.levels
        ],
        "fused": plan.fused,
        "micro_kernel": plan.micro_kernel,
        "compute_efficiency": plan.compute_efficiency,
        "executed_flops": plan.executed_flops,
        "notes": list(plan.notes),
        "partition": (
            None
            if plan.partition is None
            else {
                "cores": plan.partition.cores,
                "loop": plan.partition.loop,
                "full_extent": plan.partition.full_extent,
                "shard_extent": plan.partition.shard_extent,
                "comm_bytes": plan.partition.comm_bytes,
                "comm_steps": plan.partition.comm_steps,
            }
        ),
    }


def plan_from_dict(data: Dict[str, Any]) -> FusionPlan:
    """Rebuild a fusion plan.

    Raises:
        PlanFormatError: for unknown format versions or missing fields.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanFormatError(
            f"unsupported plan format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    try:
        return FusionPlan(
            chain=chain_from_dict(data["chain"]),
            hardware=hardware_from_dict(data["hardware"]),
            levels=tuple(
                LevelSchedule(
                    level=ld["level"],
                    order=tuple(ld["order"]),
                    tiles=ld["tiles"],
                    predicted_dv=ld["predicted_dv"],
                    predicted_mu=ld["predicted_mu"],
                    capacity=ld["capacity"],
                    bandwidth=ld["bandwidth"],
                )
                for ld in data["levels"]
            ),
            fused=data["fused"],
            micro_kernel=data["micro_kernel"],
            compute_efficiency=data["compute_efficiency"],
            executed_flops=data["executed_flops"],
            notes=tuple(data["notes"]),
            partition=(
                None
                if data["partition"] is None
                else CorePartition(**data["partition"])
            ),
        )
    except KeyError as exc:
        raise PlanFormatError(
            f"serialized plan is missing required field {exc.args[0]!r}"
        ) from exc


# ----------------------------------------------------------------------
# network plan encoding
# ----------------------------------------------------------------------
def _encode_schedule(schedule: Any) -> Any:
    if schedule is None:
        return None
    return {
        "graph": schedule.graph,
        "order": list(schedule.order),
        "live_bytes": list(schedule.live_bytes),
        "peak_bytes": schedule.peak_bytes,
        "naive_peak_bytes": schedule.naive_peak_bytes,
        "memory_budget": schedule.memory_budget,
        "seed": schedule.seed,
        "transients": [list(t) for t in schedule.transients],
        "residency": [
            {
                "producer": record.producer,
                "tensor": record.tensor,
                "nbytes": record.nbytes,
                "consumers": list(record.consumers),
                "decision": record.decision,
                "overhead_time": record.overhead_time,
            }
            for record in schedule.residency
        ],
    }


def _decode_schedule(data: Any) -> Any:
    from .scheduler import GraphSchedule, TensorResidency

    if data is None:
        return None
    return GraphSchedule(
        graph=data["graph"],
        order=tuple(data["order"]),
        live_bytes=tuple(data["live_bytes"]),
        peak_bytes=data["peak_bytes"],
        naive_peak_bytes=data["naive_peak_bytes"],
        memory_budget=data["memory_budget"],
        seed=data["seed"],
        transients=tuple(
            (name, nbytes) for name, nbytes in data["transients"]
        ),
        residency=tuple(
            TensorResidency(
                producer=rd["producer"],
                tensor=rd["tensor"],
                nbytes=rd["nbytes"],
                consumers=tuple(rd["consumers"]),
                decision=rd["decision"],
                overhead_time=rd["overhead_time"],
            )
            for rd in data["residency"]
        ),
    )


def network_plan_to_dict(plan: "NetworkPlan") -> Dict[str, Any]:
    """Encode a network plan as JSON-ready data.

    Volatile fields (cache ``source``) are deliberately excluded so the
    encoding is byte-identical across cold and warm compiles.
    """
    return {
        "format_version": FORMAT_VERSION,
        "network": plan.network,
        "hardware": hardware_to_dict(plan.hardware),
        "timing": plan.timing,
        "schedule": _encode_schedule(plan.schedule),
        "nodes": [
            {
                "name": node.name,
                "repeat": node.repeat,
                "fusable": node.fusable,
                "fused": node.fused,
                "plans": [plan_to_dict(p) for p in node.plans],
                "time": node.time,
                "unfused_time": node.unfused_time,
                "spill_time": node.spill_time,
                "members": list(node.members),
                "stitched": [
                    {
                        "node": s.node,
                        "op": s.op,
                        "tag": s.tag,
                        "role": s.role,
                    }
                    for s in node.stitched
                ],
            }
            for node in plan.nodes
        ],
    }


def network_plan_from_dict(data: Dict[str, Any]) -> "NetworkPlan":
    """Rebuild a network plan from :func:`network_plan_to_dict` output.

    Raises:
        PlanFormatError: for unknown format versions or missing fields.
    """
    from ..ir.graph import StitchedOp
    from .network import NetworkPlan, NodePlan

    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanFormatError(
            f"unsupported network plan format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    try:
        return NetworkPlan(
            network=data["network"],
            hardware=hardware_from_dict(data["hardware"]),
            timing=data["timing"],
            schedule=_decode_schedule(data["schedule"]),
            nodes=tuple(
                NodePlan(
                    name=nd["name"],
                    repeat=nd["repeat"],
                    fusable=nd["fusable"],
                    fused=nd["fused"],
                    plans=tuple(plan_from_dict(p) for p in nd["plans"]),
                    time=nd["time"],
                    unfused_time=nd["unfused_time"],
                    spill_time=nd["spill_time"],
                    members=tuple(nd["members"]),
                    stitched=tuple(
                        StitchedOp(
                            node=sd["node"],
                            op=sd["op"],
                            tag=sd["tag"],
                            role=sd["role"],
                        )
                        for sd in nd["stitched"]
                    ),
                )
                for nd in data["nodes"]
            ),
        )
    except KeyError as exc:
        raise PlanFormatError(
            f"serialized network plan is missing required field "
            f"{exc.args[0]!r}"
        ) from exc


def network_plan_json(plan: "NetworkPlan") -> str:
    """Canonical JSON text for a network plan (sorted keys, no whitespace).

    Two plans compare byte-identical exactly when this string matches —
    the representation the determinism tests and the cache diff on.
    """
    return json.dumps(
        network_plan_to_dict(plan), sort_keys=True, separators=(",", ":")
    )


def save_network_plan(plan: "NetworkPlan", path: PathLike) -> None:
    """Serialize a network plan to a JSON file (canonical key order)."""
    pathlib.Path(path).write_text(
        json.dumps(network_plan_to_dict(plan), indent=2, sort_keys=True)
    )


def load_network_plan(path: PathLike) -> "NetworkPlan":
    """Load a plan saved by :func:`save_network_plan`.

    Raises:
        PlanFormatError: when the file is not valid JSON, has an unknown
            ``format_version``, or is missing required fields.
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PlanFormatError(
            f"network plan file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise PlanFormatError(
            f"network plan file {path} does not hold a JSON object"
        )
    return network_plan_from_dict(data)


def save_plan(plan: FusionPlan, path: PathLike) -> None:
    """Serialize a plan to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2))


def load_plan(path: PathLike) -> FusionPlan:
    """Load a plan saved by :func:`save_plan`.

    Raises:
        PlanFormatError: when the file is not valid JSON, has an unknown
            ``format_version``, or is missing required fields.
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PlanFormatError(f"plan file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise PlanFormatError(f"plan file {path} does not hold a JSON object")
    return plan_from_dict(data)
