"""The end-to-end Chimera compilation pipeline (Figure 3).

``compile_chain`` is the one-stop user API: block decomposition,
inter-block reordering (analytical model), intra-block scheduling
(replaceable micro kernels), and code generation — returning an executable
:class:`FusedKernel`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from .. import microkernel
from ..codegen.kernel import FusedKernel, build_kernel
from ..core.fusion import FusionDecision, decide_fusion
from ..core.optimizer import ChimeraConfig, ChimeraOptimizer
from ..core.plan import FusionPlan
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain


@dataclasses.dataclass(frozen=True)
class CompileResult:
    """Everything ``compile_chain`` produced.

    Attributes:
        kernels: executable kernels in launch order (one when fused).
        decision: the fuse-or-not comparison, for inspection.
    """

    kernels: Tuple[FusedKernel, ...]
    decision: FusionDecision

    @property
    def fused(self) -> bool:
        return self.decision.use_fusion

    @property
    def predicted_time(self) -> float:
        return sum(kernel.predicted_time for kernel in self.kernels)


def chimera_config(
    chain: OperatorChain,
    hardware: HardwareSpec,
    base: Optional[ChimeraConfig] = None,
) -> ChimeraConfig:
    """A config with micro-kernel tile minimums wired in for ``chain``."""
    micro = microkernel.lower_for_chain(hardware, chain)
    min_tiles = microkernel.chain_min_tiles(chain, micro)
    quanta = microkernel.chain_quanta(chain, micro)
    if base is None:
        return ChimeraConfig(min_tiles=min_tiles, quanta=quanta)
    merged = dict(base.min_tiles or {})
    for name, value in min_tiles.items():
        merged[name] = max(merged.get(name, 1), value)
    merged_quanta = dict(base.quanta or {})
    for name, value in quanta.items():
        merged_quanta[name] = max(merged_quanta.get(name, 1), value)
    return dataclasses.replace(base, min_tiles=merged, quanta=merged_quanta)


def optimize_chain(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
) -> FusionPlan:
    """Run only the inter-block pass (always fusing) and attach the kernel."""
    cfg = chimera_config(chain, hardware, config)
    plan = ChimeraOptimizer(hardware, cfg).optimize(chain)
    return _attach_micro_kernel(plan, hardware)


def compile_chain(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    *,
    force_fusion: Optional[bool] = None,
) -> CompileResult:
    """Compile an operator chain for a hardware target.

    Args:
        chain: the compute DAG segment to compile.
        hardware: machine model (selects the micro-kernel backend and the
            memory-hierarchy parameters).
        config: optimizer overrides.
        force_fusion: bypass the fuse-or-not profitability decision.

    Returns:
        executable kernels plus the planning decision.
    """
    cfg = chimera_config(chain, hardware, config)
    decision = decide_fusion(chain, hardware, cfg)
    use_fusion = decision.use_fusion if force_fusion is None else force_fusion
    if force_fusion is not None:
        decision = dataclasses.replace(decision, use_fusion=force_fusion)
    chosen = (
        (decision.fused_plan,) if use_fusion else decision.unfused_plans
    )
    kernels = []
    for plan in chosen:
        plan = _attach_micro_kernel(plan, hardware)
        micro = microkernel.lower_for_chain(hardware, plan.chain)
        kernels.append(build_kernel(plan, micro))
    return CompileResult(kernels=tuple(kernels), decision=decision)


def _attach_micro_kernel(
    plan: FusionPlan, hardware: HardwareSpec
) -> FusionPlan:
    micro = microkernel.lower_for_chain(hardware, plan.chain)
    efficiency = microkernel.chain_efficiency(
        plan.chain, micro, dict(plan.inner.tiles)
    )
    return plan.with_micro_kernel(micro.name, max(efficiency, 1e-3))
