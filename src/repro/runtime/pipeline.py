"""The end-to-end Chimera compilation pipeline (Figure 3).

``compile_chain`` is the one-stop user API: block decomposition,
inter-block reordering (analytical model), intra-block scheduling
(replaceable micro kernels), and code generation — returning an executable
:class:`FusedKernel`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Tuple

from .. import microkernel
from ..codegen.kernel import FusedKernel, build_kernel
from ..core.fusion import FusionDecision, decide_fusion
from ..core.warmstart import ChainHints

if TYPE_CHECKING:  # pragma: no cover - import cycle exists only for typing
    from ..service import CompileService
from ..core.optimizer import ChimeraConfig, ChimeraOptimizer
from ..core.plan import FusionPlan
from ..core.search import SearchPolicy
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain


@dataclasses.dataclass(frozen=True)
class CompileResult:
    """Everything ``compile_chain`` produced.

    Attributes:
        kernels: executable kernels in launch order (one when fused).
        decision: the fuse-or-not comparison, for inspection.
    """

    kernels: Tuple[FusedKernel, ...]
    decision: FusionDecision

    @property
    def fused(self) -> bool:
        return self.decision.use_fusion

    @property
    def predicted_time(self) -> float:
        return sum(kernel.predicted_time for kernel in self.kernels)


def chimera_config(
    chain: OperatorChain,
    hardware: HardwareSpec,
    base: Optional[ChimeraConfig] = None,
) -> ChimeraConfig:
    """A config with micro-kernel tile minimums wired in for ``chain``."""
    micro = microkernel.lower_for_chain(hardware, chain)
    min_tiles = microkernel.chain_min_tiles(chain, micro)
    quanta = microkernel.chain_quanta(chain, micro)
    if base is None:
        return ChimeraConfig(min_tiles=min_tiles, quanta=quanta)
    merged = dict(base.min_tiles or {})
    for name, value in min_tiles.items():
        merged[name] = max(merged.get(name, 1), value)
    merged_quanta = dict(base.quanta or {})
    for name, value in quanta.items():
        merged_quanta[name] = max(merged_quanta.get(name, 1), value)
    return dataclasses.replace(base, min_tiles=merged, quanta=merged_quanta)


def optimize_chain(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    policy: Optional[SearchPolicy] = None,
) -> FusionPlan:
    """Run only the inter-block pass (always fusing) and attach the kernel."""
    cfg = chimera_config(chain, hardware, config)
    plan = ChimeraOptimizer(hardware, cfg, policy=policy).optimize(chain)
    return _attach_micro_kernel(plan, hardware)


def compile_chain(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    *,
    force_fusion: Optional[bool] = None,
    service: Optional["CompileService"] = None,
    policy: Optional[SearchPolicy] = None,
    hints: Optional[ChainHints] = None,
) -> CompileResult:
    """Compile an operator chain for a hardware target.

    Args:
        chain: the compute DAG segment to compile.
        hardware: machine model (selects the micro-kernel backend and the
            memory-hierarchy parameters).
        config: optimizer overrides.
        force_fusion: bypass the fuse-or-not profitability decision.
        service: a :class:`repro.service.CompileService`; when given, the
            request is routed through its plan cache (and coalesced with
            identical concurrent requests) instead of always re-optimizing.
        policy: order-search execution strategy (pruning / memoization /
            workers).  Affects compile latency only, never the plan, so it
            is not part of the service cache key; defaults to the
            ``REPRO_SEARCH_*`` environment.
        hints: warm-start hints from a neighboring shape's cached plan
            (see :mod:`repro.core.warmstart`).  Like ``policy``, a pure
            speed knob — the returned plan is byte-identical with or
            without hints.  Ignored on the service path: the service
            derives its own hints from its shape index.

    Returns:
        executable kernels plus the planning decision.
    """
    if service is not None:
        return service.compile(chain, hardware, config, force_fusion=force_fusion)
    cfg = chimera_config(chain, hardware, config)
    decision = decide_fusion(chain, hardware, cfg, policy, hints=hints)
    if force_fusion is not None:
        decision = dataclasses.replace(decision, use_fusion=force_fusion)
    return CompileResult(
        kernels=kernels_for_decision(decision, hardware), decision=decision
    )


def kernels_for_decision(
    decision: FusionDecision, hardware: HardwareSpec
) -> Tuple[FusedKernel, ...]:
    """Lower the decision's chosen plans into executable kernels.

    This is the deterministic back half of :func:`compile_chain` — intra-block
    micro-kernel attachment plus code generation, no analytical search.  The
    compilation service replays it when rebuilding a result from a cache hit.
    """
    kernels = []
    for plan in decision.chosen:
        plan = _attach_micro_kernel(plan, hardware)
        micro = microkernel.lower_for_chain(hardware, plan.chain)
        kernels.append(build_kernel(plan, micro))
    return tuple(kernels)


def _attach_micro_kernel(
    plan: FusionPlan, hardware: HardwareSpec
) -> FusionPlan:
    micro = microkernel.lower_for_chain(hardware, plan.chain)
    efficiency = microkernel.chain_efficiency(
        plan.chain, micro, dict(plan.inner.tiles)
    )
    return plan.with_micro_kernel(micro.name, max(efficiency, 1e-3))
