"""User-facing compilation pipeline and comparison harness."""

from .ablation import (
    VARIANTS,
    AblationVariant,
    ablation_study,
    run_variant,
)
from .comparison import Comparison, ComparisonRow, compare
from .pipeline import (
    CompileResult,
    chimera_config,
    compile_chain,
    kernels_for_decision,
    optimize_chain,
)
from .serialization import (
    FORMAT_VERSION,
    PlanFormatError,
    chain_from_dict,
    chain_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)

__all__ = [
    "VARIANTS",
    "AblationVariant",
    "ablation_study",
    "run_variant",
    "Comparison",
    "ComparisonRow",
    "compare",
    "CompileResult",
    "chimera_config",
    "compile_chain",
    "kernels_for_decision",
    "optimize_chain",
    "FORMAT_VERSION",
    "PlanFormatError",
    "chain_from_dict",
    "chain_to_dict",
    "hardware_from_dict",
    "hardware_to_dict",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
]
