"""Ablation study (Figure 10): cost model (C), fusion (F), micro kernel (M).

Five Chimera variants, matching Section VI-E:

* ``baseline`` — all three disabled: unfused kernels, 100 randomly sampled
  tiling candidates picked by simulated profiling, generic codegen.
* ``v-C`` — analytical cost model only.
* ``v-F`` — fusion only.
* ``v-M`` — micro kernel only.
* ``chimera`` — everything enabled.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .. import microkernel
from ..baselines.autotuner import tuned_plan
from ..baselines.base import segment_chain
from ..core.optimizer import ChimeraConfig, ChimeraOptimizer
from ..core.plan import FusionPlan
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..sim.hierarchy import SimConfig
from ..sim.profiler import SimReport, simulate_sequence

GENERIC_CODEGEN_EFFICIENCY = 0.45
"""Sustained fraction of peak for generic (non-micro-kernel) codegen —
LLVM auto-vectorized loops without hardware-specific instruction selection,
the gap the paper attributes to the micro kernel component."""

RANDOM_TILING_TRIALS = 100
"""Candidates sampled per kernel when the cost model is disabled (the paper
randomly samples 100 tiling factors and picks the best by profiling)."""


@dataclasses.dataclass(frozen=True)
class AblationVariant:
    """One bar of Figure 10."""

    name: str
    cost_model: bool
    fusion: bool
    micro_kernel: bool


VARIANTS: Tuple[AblationVariant, ...] = (
    AblationVariant("baseline", False, False, False),
    AblationVariant("v-C", True, False, False),
    AblationVariant("v-F", False, True, False),
    AblationVariant("v-M", False, False, True),
    AblationVariant("Chimera", True, True, True),
)


def _plan_kernels(
    chain: OperatorChain,
    hardware: HardwareSpec,
    variant: AblationVariant,
) -> List[FusionPlan]:
    kernels = (
        [chain] if variant.fusion else segment_chain(chain, "none")
    )
    plans: List[FusionPlan] = []
    for sub in kernels:
        micro = microkernel.lower_for_chain(hardware, sub)
        if variant.cost_model:
            config = ChimeraConfig(
                min_tiles=(
                    microkernel.chain_min_tiles(sub, micro)
                    if variant.micro_kernel
                    else None
                ),
                quanta=(
                    microkernel.chain_quanta(sub, micro)
                    if variant.micro_kernel
                    else None
                ),
            )
            plan = ChimeraOptimizer(hardware, config).optimize(sub)
        else:
            # Without the cost model nothing guides the order choice, so a
            # random order is drawn alongside the 100 tiling samples.
            plan, _ = tuned_plan(
                sub,
                hardware,
                trials=RANDOM_TILING_TRIALS,
                randomize_order=True,
            )
        if variant.micro_kernel:
            efficiency = microkernel.chain_efficiency(
                sub, micro, dict(plan.inner.tiles)
            )
        else:
            efficiency = GENERIC_CODEGEN_EFFICIENCY
        plans.append(plan.with_micro_kernel(
            micro.name if variant.micro_kernel else "generic",
            max(efficiency, 1e-3),
        ))
    return plans


def run_variant(
    chain: OperatorChain,
    hardware: HardwareSpec,
    variant: AblationVariant,
    *,
    sim_config: Optional[SimConfig] = None,
) -> SimReport:
    """Measure one ablation variant on one chain."""
    plans = _plan_kernels(chain, hardware, variant)
    return simulate_sequence(
        plans, name=f"{variant.name}:{chain.name}", config=sim_config
    )


def ablation_study(
    chain: OperatorChain,
    hardware: HardwareSpec,
    *,
    sim_config: Optional[SimConfig] = None,
) -> Dict[str, float]:
    """Times of all five variants (seconds), keyed by variant name."""
    return {
        variant.name: run_variant(
            chain, hardware, variant, sim_config=sim_config
        ).time
        for variant in VARIANTS
    }
