"""Cross-system comparison harness.

Runs a set of workload chains through every requested system on one
hardware model, using the shared simulator as the measurement substrate,
and reports normalized performance — the exact structure of the paper's
Figures 5, 6 and 7 (bars normalized to a reference system, typically
PyTorch or TBE).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.base import SystemResult
from ..baselines.systems import systems_for
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..sim.hierarchy import SimConfig


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """Results for one workload across systems."""

    workload: str
    times: Mapping[str, float]  # system name -> seconds
    results: Mapping[str, SystemResult]

    def normalized(self, reference: str) -> Dict[str, float]:
        """Relative performance (higher is better), normalized to one system."""
        base = self.times[reference]
        return {name: base / value for name, value in self.times.items()}

    def speedup(self, system: str, over: str) -> float:
        return self.times[over] / self.times[system]


@dataclasses.dataclass(frozen=True)
class Comparison:
    """A full figure's worth of rows."""

    hardware: HardwareSpec
    rows: Tuple[ComparisonRow, ...]
    systems: Tuple[str, ...]

    def geomean_speedup(self, system: str, over: str) -> float:
        """Geometric-mean speedup of ``system`` over ``over`` across rows."""
        product = 1.0
        for row in self.rows:
            product *= row.speedup(system, over)
        return product ** (1.0 / len(self.rows))

    def max_speedup(self, system: str, over: str) -> float:
        return max(row.speedup(system, over) for row in self.rows)

    def table(self, reference: str) -> str:
        """Render the normalized-performance table (paper bar charts)."""
        headers = ["workload"] + list(self.systems)
        body = []
        for row in self.rows:
            normalized = row.normalized(reference)
            body.append(
                [row.workload]
                + [f"{normalized[name]:.2f}" for name in self.systems]
            )
        widths = [len(h) for h in headers]
        for cells in body:
            for index, cell in enumerate(cells):
                widths[index] = max(widths[index], len(cell))
        widths = [w + 2 for w in widths]
        lines = ["".join(h.ljust(w) for h, w in zip(headers, widths))]
        for cells in body:
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def compare(
    chains: Sequence[OperatorChain],
    hardware: HardwareSpec,
    system_keys: Tuple[str, ...] = (),
    *,
    sim_config: Optional[SimConfig] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> Comparison:
    """Run every chain through every system.

    Args:
        chains: workloads (e.g. Table IV batch GEMM chains).
        hardware: target machine model.
        system_keys: registry keys; empty = all systems for the backend.
        sim_config: simulator overrides.
        workload_names: display names (defaults to chain names).
    """
    systems = systems_for(hardware, system_keys)
    if not systems:
        raise ValueError(f"no systems available for {hardware.backend!r}")
    names = list(workload_names or [c.name for c in chains])
    rows: List[ComparisonRow] = []
    for chain, label in zip(chains, names):
        times: Dict[str, float] = {}
        results: Dict[str, SystemResult] = {}
        for system in systems:
            result = system.run(chain, hardware, sim_config=sim_config)
            times[system.name] = result.time
            results[system.name] = result
        rows.append(ComparisonRow(workload=label, times=times, results=results))
    return Comparison(
        hardware=hardware,
        rows=tuple(rows),
        systems=tuple(system.name for system in systems),
    )
