"""Graph-level execution scheduling: peak-memory-minimizing order search.

Chimera's inter-block order search is per-chain; at the network level the
``ComputeDAG`` nodes of a :class:`~repro.ir.graph.GraphPartition` used to
execute in naive topological order.  For graphs with parallel structure —
multi-branch networks, or several tenants' networks packed into one DAG —
that order interleaves independent branches and keeps every branch's
intermediates live at once, spilling working sets a better linear
arrangement keeps resident.

:func:`schedule_partition` chooses the execution order analytically, in
three stages (following the in-memory-tables minimum-linear-arrangement
approach and the inter-kernel locality arguments of FlashFuser /
FusionStitching):

1. **Seed** — an iterative memory-prioritized DFS topological order:
   depth-first from the heaviest producers so each branch retires its
   intermediates before the next branch starts.  The DFS uses an explicit
   stack — deep linear graphs (thousands of nodes) must not hit Python's
   recursion limit.
2. **Refine** — deterministic seeded simulated annealing over adjacent
   transpositions that preserve topological legality, minimizing the peak
   resident intermediate bytes.  The emitted order is never worse than
   the naive topological order (the incumbent only improves).
3. **Residency** — when the peak still exceeds the ``memory_budget``
   (default: the capacity of the hardware level feeding DRAM), evict
   tensors at the peak until it fits, choosing per tensor between
   **rematerialize** (recompute the producer before each consumer, priced
   by the producer's node-plan time) and **spill** (a DRAM round trip,
   priced by the movement model's
   :func:`~repro.core.movement.spill_round_trip_bytes` over the DRAM
   bandwidth — the same pricing that charges tile movement).

Everything is deterministic: same partition, hardware and
``REPRO_SCHED_SEED`` produce a byte-identical :class:`GraphSchedule`
(and therefore a byte-identical serialized ``NetworkPlan``).  Scheduling
is disabled entirely with ``REPRO_SCHED=0``.

The live-set model counts one network pass: a kept tensor occupies its
``output_bytes`` from its producer's step through its last consumer's
step; an evicted tensor occupies memory only transiently at its producer
and consumer steps.  Node ``repeat`` counts multiply the eviction
overhead (every pass pays the round trip), not the per-pass peak.
Rematerialization is priced first-order: the producer re-runs once per
consumer; its own inputs are assumed fetchable (they are graph inputs or
scheduled tensors themselves).
"""

from __future__ import annotations

import dataclasses
import math
import os
import random
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.movement import spill_round_trip_bytes
from ..hardware.spec import HardwareSpec
from ..ir.graph import GraphPartition

#: Residency decisions.
KEEP = "keep"
SPILL = "spill"
REMATERIALIZE = "rematerialize"

DECISIONS = (KEEP, SPILL, REMATERIALIZE)


def scheduling_enabled() -> bool:
    """Whether :func:`repro.runtime.compile_network` schedules (``REPRO_SCHED``).

    On by default; export ``REPRO_SCHED=0`` to keep the naive topological
    order and skip residency decisions entirely (``NetworkPlan.schedule``
    is then ``None``).  A pure planning knob: both settings execute the
    same kernels.
    """
    return os.environ.get("REPRO_SCHED", "1") != "0"


def schedule_seed() -> int:
    """The annealing seed (``REPRO_SCHED_SEED``, default 0)."""
    try:
        return int(os.environ.get("REPRO_SCHED_SEED", "0"))
    except ValueError:
        raise ValueError(
            "REPRO_SCHED_SEED must be an integer, got "
            f"{os.environ.get('REPRO_SCHED_SEED')!r}"
        ) from None


def default_memory_budget(hardware: HardwareSpec) -> int:
    """The DRAM-side residency budget of a machine model, in bytes.

    Graph-level intermediates wait for their consumers in the outermost
    bounded level — the one that fills from DRAM.  Private (per-core)
    levels aggregate across cores, since graph execution is sequential
    and the whole chip's capacity is available to the resident set.
    """
    level = hardware.levels[-2]
    assert level.capacity is not None  # guaranteed by HardwareSpec
    if level.shared:
        return level.capacity
    return level.capacity * hardware.num_cores


@dataclasses.dataclass(frozen=True)
class TensorResidency:
    """The residency decision for one graph-level intermediate.

    Attributes:
        producer: partition node whose output this is.
        tensor: the chain output tensor name(s) behind the bytes.
        nbytes: footprint while resident.
        consumers: partition nodes that read it, in execution order.
        decision: ``"keep"``, ``"spill"`` or ``"rematerialize"``.
        overhead_time: seconds per network run charged for the decision
            (0 for keep; repeat counts folded in).
    """

    producer: str
    tensor: str
    nbytes: int
    consumers: Tuple[str, ...]
    decision: str
    overhead_time: float = 0.0

    def __post_init__(self) -> None:
        if self.decision not in DECISIONS:
            raise ValueError(
                f"unknown residency decision {self.decision!r} "
                f"(use one of {DECISIONS})"
            )


@dataclasses.dataclass(frozen=True)
class GraphSchedule:
    """A scheduled execution order plus residency decisions.

    Attributes:
        graph: name of the scheduled graph.
        order: partition node names in execution order (a legal
            topological order of the partition).
        live_bytes: resident intermediate bytes at each execution step,
            under the residency decisions.
        peak_bytes: ``max(live_bytes)``.
        naive_peak_bytes: the peak of the naive topological order with
            every intermediate kept — the baseline scheduling beats.
        memory_budget: the residency budget the schedule was solved for.
        seed: annealing seed used (``REPRO_SCHED_SEED`` unless overridden).
        residency: one record per graph-level intermediate.
        transients: sorted ``(node, nbytes)`` pairs of extra bytes resident
            only at that node's own step — communication staging of
            partitioned (multi-core) nodes.  Empty on linkless hardware.
    """

    graph: str
    order: Tuple[str, ...]
    live_bytes: Tuple[int, ...]
    peak_bytes: int
    naive_peak_bytes: int
    memory_budget: int
    seed: int
    residency: Tuple[TensorResidency, ...]
    transients: Tuple[Tuple[str, int], ...] = ()

    @property
    def overhead_time(self) -> float:
        """Seconds per network run spent on spills and recomputation."""
        return sum(r.overhead_time for r in self.residency)

    @property
    def evictions(self) -> Tuple[TensorResidency, ...]:
        return tuple(r for r in self.residency if r.decision != KEEP)

    @property
    def within_budget(self) -> bool:
        return self.peak_bytes <= self.memory_budget

    @property
    def peak_reduction(self) -> float:
        """Naive-over-scheduled peak ratio (>= 1 by construction)."""
        if self.peak_bytes == 0:
            return 1.0 if self.naive_peak_bytes == 0 else math.inf
        return self.naive_peak_bytes / self.peak_bytes

    def residency_of(self, producer: str) -> Optional[TensorResidency]:
        for record in self.residency:
            if record.producer == producer:
                return record
        return None

    def position(self, name: str) -> int:
        try:
            return self.order.index(name)
        except ValueError:
            raise KeyError(
                f"schedule of {self.graph!r} has no node {name!r}"
            ) from None

    def describe(self) -> str:
        state = "within" if self.within_budget else "EXCEEDS"
        return (
            f"schedule {self.graph}: {len(self.order)} nodes, peak "
            f"{_format_bytes(self.peak_bytes)} (naive "
            f"{_format_bytes(self.naive_peak_bytes)}, "
            f"{self.peak_reduction:.2f}x reduction), {state} budget "
            f"{_format_bytes(self.memory_budget)}, "
            f"{len(self.evictions)} eviction(s), overhead "
            f"{self.overhead_time * 1e6:.2f} us"
        )


def _format_bytes(value: float) -> str:
    """Human-readable byte count (also used by the plan report table)."""
    for unit, scale in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if value >= scale:
            return f"{value / scale:.2f}{unit}"
    return f"{value:.0f}B"


# ----------------------------------------------------------------------
# live-set profile
# ----------------------------------------------------------------------
def _live_profile(
    order: Sequence[str],
    footprints: Mapping[str, int],
    consumers: Mapping[str, Tuple[str, ...]],
    decisions: Mapping[str, str],
    transients: Mapping[str, int] = (),
) -> List[int]:
    """Resident intermediate bytes at each step of ``order``.

    Kept tensors contribute over [producer, last consumer]; evicted ones
    (spilled or rematerialized) only at the producer and consumer steps —
    in between they exist in DRAM (spill) or not at all (rematerialize).
    ``transients`` adds per-node bytes resident only while that node
    executes (multi-core communication staging buffers).
    """
    position = {name: index for index, name in enumerate(order)}
    deltas = [0] * (len(order) + 1)
    points = [0] * len(order)
    if transients:
        for name, nbytes in dict(transients).items():
            if name in position:
                points[position[name]] += nbytes
    for producer, nbytes in footprints.items():
        users = consumers.get(producer, ())
        if not users or nbytes == 0:
            continue
        start = position[producer]
        if decisions.get(producer, KEEP) == KEEP:
            end = max(position[user] for user in users)
            deltas[start] += nbytes
            deltas[end + 1] -= nbytes
        else:
            steps = {start}
            steps.update(position[user] for user in users)
            for step in steps:
                points[step] += nbytes
    live: List[int] = []
    running = 0
    for index in range(len(order)):
        running += deltas[index]
        live.append(running + points[index])
    return live


def _peak(live: Sequence[int]) -> int:
    return max(live) if live else 0


# ----------------------------------------------------------------------
# stage 1: memory-prioritized DFS seed
# ----------------------------------------------------------------------
def _dfs_seed(
    names: Sequence[str],
    consumers: Mapping[str, Tuple[str, ...]],
    footprints: Mapping[str, int],
) -> List[str]:
    """Reverse-postorder DFS, heaviest producers and successors first.

    Starting the DFS at the nodes with the largest live footprints (and
    descending into heavy successors first) retires big intermediates
    quickly: a branch completes before the next one starts.  Reverse
    postorder of any DFS over a DAG is a valid topological order, so the
    seed is always legal.

    Implemented with an explicit stack: a linear graph of a few thousand
    nodes would blow ``sys.getrecursionlimit()`` under the textbook
    recursive formulation.
    """
    position = {name: index for index, name in enumerate(names)}

    def weight(name: str) -> Tuple[int, int]:
        # Heaviest first; DAG position breaks ties deterministically.
        return (-footprints.get(name, 0), position[name])

    roots = sorted(names, key=weight)
    sorted_children = {
        name: sorted(consumers.get(name, ()), key=weight) for name in names
    }
    visited: Set[str] = set()
    postorder: List[str] = []
    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        stack: List[Tuple[str, int]] = [(root, 0)]
        while stack:
            name, child_index = stack[-1]
            children = sorted_children[name]
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in visited:
                    visited.add(child)
                    stack[-1] = (name, child_index)
                    stack.append((child, 0))
                    advanced = True
                    break
            else:
                postorder.append(name)
                stack.pop()
                continue
            if not advanced:  # pragma: no cover - loop structure guard
                break
    postorder.reverse()
    return postorder


# ----------------------------------------------------------------------
# stage 2: simulated annealing over adjacent transpositions
# ----------------------------------------------------------------------
def _anneal(
    order: List[str],
    edges: Set[Tuple[str, str]],
    footprints: Mapping[str, int],
    consumers: Mapping[str, Tuple[str, ...]],
    rng: random.Random,
    iterations: int,
    transients: Mapping[str, int] = (),
) -> Tuple[List[str], int]:
    """Minimize the all-keep peak by legal adjacent swaps.

    A swap of adjacent positions ``(i, i+1)`` preserves topological
    legality exactly when there is no edge between the two nodes — every
    other precedence is untouched.  Adjacent transpositions connect the
    space of topological orders, so the walk can in principle reach any
    of them.  Returns the best order/peak seen (never worse than the
    start).
    """
    current = list(order)
    current_peak = _peak(
        _live_profile(current, footprints, consumers, {}, transients)
    )
    best = list(current)
    best_peak = current_peak
    count = len(current)
    if count < 2 or iterations <= 0:
        return best, best_peak
    t_start = max(1.0, 0.05 * max(best_peak, 1))
    t_end = max(1.0, 1e-3 * t_start)
    for step in range(iterations):
        index = rng.randrange(count - 1)
        left, right = current[index], current[index + 1]
        if (left, right) in edges:
            continue
        current[index], current[index + 1] = right, left
        peak = _peak(
            _live_profile(current, footprints, consumers, {}, transients)
        )
        temperature = t_start * (t_end / t_start) ** (
            step / max(1, iterations - 1)
        )
        delta = peak - current_peak
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_peak = peak
            if peak < best_peak:
                best = list(current)
                best_peak = peak
        else:
            current[index], current[index + 1] = left, right
    return best, best_peak


# ----------------------------------------------------------------------
# stage 3: rematerialize-vs-keep under the budget
# ----------------------------------------------------------------------
def _decide_residency(
    order: Sequence[str],
    footprints: Mapping[str, int],
    consumers: Mapping[str, Tuple[str, ...]],
    repeats: Mapping[str, int],
    node_times: Mapping[str, float],
    hardware: HardwareSpec,
    budget: int,
    transients: Mapping[str, int] = (),
) -> Tuple[Dict[str, str], Dict[str, float]]:
    """Greedy eviction at the peak until the budget holds (or none helps).

    Each round finds the highest step of the live profile and evicts the
    cheapest-per-byte tensor that actually relieves it (kept, spanning
    the step, neither produced nor consumed there).  Per tensor the
    cheaper of the two eviction modes wins: rematerialization costs the
    producer's time once per consumer; a spill costs the movement-model
    round trip (one DRAM fill plus one read per consumer) at DRAM
    bandwidth.  Both multiply by the producer's repeat count.
    """
    decisions: Dict[str, str] = {}
    overheads: Dict[str, float] = {}
    position = {name: index for index, name in enumerate(order)}
    while True:
        live = _live_profile(
            order, footprints, consumers, decisions, transients
        )
        peak = _peak(live)
        if peak <= budget or not live:
            break
        hot = live.index(peak)
        candidates = []
        for producer, nbytes in footprints.items():
            users = consumers.get(producer, ())
            if not users or nbytes == 0 or producer in decisions:
                continue
            start = position[producer]
            end = max(position[user] for user in users)
            if not start < hot <= end:
                continue
            if hot in {position[user] for user in users}:
                continue  # resident at `hot` either way (read back there)
            repeat = repeats.get(producer, 1)
            spill_cost = (
                hardware.memory_time(
                    spill_round_trip_bytes(nbytes, len(users)), "DRAM"
                )
                * repeat
            )
            produce_time = node_times.get(producer)
            if produce_time is None:
                remat_cost = math.inf
            else:
                remat_cost = produce_time * len(users) * repeat
            cost = min(spill_cost, remat_cost)
            decision = REMATERIALIZE if remat_cost < spill_cost else SPILL
            candidates.append(
                (cost / nbytes, -nbytes, producer, decision, cost)
            )
        if not candidates:
            break  # nothing left to evict at the hot step: budget binds
        candidates.sort()
        _, _, producer, decision, cost = candidates[0]
        decisions[producer] = decision
        overheads[producer] = cost
    return decisions, overheads


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def schedule_partition(
    partition: GraphPartition,
    hardware: HardwareSpec,
    *,
    node_times: Optional[Mapping[str, float]] = None,
    memory_budget: Optional[int] = None,
    seed: Optional[int] = None,
    anneal_iters: Optional[int] = None,
    dag_order: Optional[Sequence[str]] = None,
    node_transients: Optional[Mapping[str, int]] = None,
) -> GraphSchedule:
    """Schedule a partition's nodes to minimize peak resident bytes.

    Args:
        partition: the validated graph partition to order.
        hardware: machine model supplying the DRAM bandwidth (spill
            pricing) and the default budget.
        node_times: per-execution node times (``NodePlan.time``), used to
            price rematerialization; producers missing here can only
            spill.
        memory_budget: residency budget in bytes (default:
            :func:`default_memory_budget`).
        seed: annealing seed (default: ``REPRO_SCHED_SEED``).
        anneal_iters: annealing iterations (default scales with the node
            count).
        dag_order: the original DAG's node names in graph order; when
            given, the naive baseline order replays the DAG's own
            interleaving (what an order-oblivious executor runs).
            Without it the baseline is reconstructed from the partition's
            chains-then-remainder layout.
        node_transients: extra bytes resident only while a node executes
            (multi-core communication staging of partitioned kernels);
            counted in every live profile, including the naive baseline,
            so the peak comparison stays apples-to-apples.

    Returns:
        a deterministic :class:`GraphSchedule`; its order is always a
        legal topological order of the partition and its peak is never
        above the naive topological order's.
    """
    if memory_budget is None:
        memory_budget = default_memory_budget(hardware)
    if memory_budget <= 0:
        raise ValueError(f"memory_budget must be positive, got {memory_budget}")
    if seed is None:
        seed = schedule_seed()
    nodes = partition.all_nodes()
    by_name = {node.name: node for node in nodes}
    consumers = partition.edges()
    footprints = {node.name: node.output_bytes() for node in nodes}
    repeats = {node.name: node.repeat for node in nodes}
    times = dict(node_times or {})
    transients = {
        name: int(nbytes)
        for name, nbytes in (node_transients or {}).items()
        if name in by_name and nbytes > 0
    }

    naive = _naive_order(partition, dag_order)
    naive_peak = _peak(
        _live_profile(naive, footprints, consumers, {}, transients)
    )

    seeded = _dfs_seed(naive, consumers, footprints)
    seeded_peak = _peak(
        _live_profile(seeded, footprints, consumers, {}, transients)
    )
    if seeded_peak < naive_peak:
        incumbent, incumbent_peak = seeded, seeded_peak
    else:
        incumbent, incumbent_peak = list(naive), naive_peak

    edge_pairs = {
        (producer, user)
        for producer, users in consumers.items()
        for user in users
    }
    if anneal_iters is None:
        anneal_iters = min(3000, max(200, 60 * len(nodes)))
    rng = random.Random(seed)
    order, _ = _anneal(
        incumbent, edge_pairs, footprints, consumers, rng, anneal_iters,
        transients,
    )

    decisions, overheads = _decide_residency(
        order, footprints, consumers, repeats, times, hardware,
        memory_budget, transients,
    )
    live = _live_profile(order, footprints, consumers, decisions, transients)
    position = {name: index for index, name in enumerate(order)}
    residency = []
    for producer in order:
        users = consumers.get(producer, ())
        if not users:
            continue
        node = by_name[producer]
        residency.append(
            TensorResidency(
                producer=producer,
                tensor="+".join(node.chain.output_tensors()),
                nbytes=footprints[producer],
                consumers=tuple(
                    sorted(users, key=lambda name: position[name])
                ),
                decision=decisions.get(producer, KEEP),
                overhead_time=overheads.get(producer, 0.0),
            )
        )
    return GraphSchedule(
        graph=partition.graph,
        order=tuple(order),
        live_bytes=tuple(live),
        peak_bytes=_peak(live),
        naive_peak_bytes=naive_peak,
        memory_budget=memory_budget,
        seed=seed,
        residency=tuple(residency),
        transients=tuple(sorted(transients.items())),
    )


def _naive_order(
    partition: GraphPartition,
    dag_order: Optional[Sequence[str]] = None,
) -> List[str]:
    """The baseline order: Kahn's algorithm, earliest DAG position first.

    With ``dag_order`` (the original DAG's member names in graph order),
    this reproduces the DAG's own node order whenever that order is
    itself legal for the partition (the common case), and repairs it
    deterministically when stitched nodes straddle it.  Without it, the
    partition's chains-then-remainder layout stands in for the positions.
    Iterative — no recursion, by the same explicit-stack policy as the
    DFS seed.
    """
    nodes = partition.all_nodes()
    consumers = partition.edges()
    indegree = {node.name: 0 for node in nodes}
    for users in consumers.values():
        for user in users:
            indegree[user] += 1
    member_rank: Dict[str, int] = {}
    if dag_order is not None:
        for cursor, member in enumerate(dag_order):
            member_rank[member] = cursor
    else:
        cursor = 0
        for node in nodes:
            for member in partition.members_of(node.name):
                member_rank[member] = cursor
                cursor += 1
    rank: Dict[str, int] = {}
    for node in nodes:
        rank[node.name] = min(
            member_rank[member]
            for member in partition.members_of(node.name)
        )
    ready = sorted(
        (name for name, degree in indegree.items() if degree == 0),
        key=lambda name: rank[name],
    )
    order: List[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        changed = False
        for user in consumers.get(name, ()):
            indegree[user] -= 1
            if indegree[user] == 0:
                ready.append(user)
                changed = True
        if changed:
            ready.sort(key=lambda name: rank[name])
    if len(order) != len(nodes):
        raise ValueError(
            f"partition of {partition.graph!r} has a dependency cycle "
            f"across its nodes"
        )
    return order
