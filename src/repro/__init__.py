"""Chimera reproduction: analytical optimization for compute-intensive
operator fusion (HPCA 2023).

Quickstart::

    import repro

    chain = repro.batch_gemm_chain(8, 512, 64, 64, 512, with_softmax=True)
    hw = repro.xeon_gold_6240()
    result = repro.compile_chain(chain, hw)
    kernel = result.kernels[0]
    outputs = kernel(repro.random_inputs(chain))
    print(kernel.plan.describe())
    print(kernel.source)

Subpackages:

* :mod:`repro.ir` — tensor-expression IR and chain builders.
* :mod:`repro.hardware` — machine models (Table I presets).
* :mod:`repro.core` — the analytical inter-block optimizer (Algorithm 1).
* :mod:`repro.microkernel` — replaceable micro kernels (Section V).
* :mod:`repro.codegen` — block programs, execution, source emission.
* :mod:`repro.sim` — the memory-hierarchy measurement substrate.
* :mod:`repro.baselines` — the comparator systems of the evaluation.
* :mod:`repro.workloads` — Tables IV/V chains and Figure 9 networks.
* :mod:`repro.runtime` — ``compile_chain`` and the comparison harness.
* :mod:`repro.service` — plan cache, batch compiler, request coalescing.
* :mod:`repro.analysis` — Figure 8 validation and report rendering.
"""

from .codegen import execute_reference, random_inputs
from .core import ChimeraConfig, ChimeraOptimizer, FusionPlan, decide_fusion
from .hardware import (
    InterCoreLink,
    a100,
    a100_nvlinked_sms,
    ascend_910,
    ascend_910_cluster,
    mesh_npu_16,
    multicore_presets,
    preset,
    xeon_gold_6240,
)
from .ir import (
    OperatorChain,
    attention_chain,
    batch_gemm_chain,
    conv_chain,
    conv_tower,
    gemm_chain,
    mlp_chain,
    separable_chain,
)
from .runtime import (
    CompileResult,
    GraphSchedule,
    NetworkCompilationError,
    NetworkPlan,
    PlanFormatError,
    compare,
    compile_chain,
    compile_network,
    load_network_plan,
    load_plan,
    optimize_chain,
    save_network_plan,
    save_plan,
    schedule_partition,
)
from .service import (
    CompilationFailure,
    CompileRequest,
    CompileService,
    cache_key,
)
from .sim import SimReport, simulate_plan, simulate_sequence

__version__ = "1.0.0"

__all__ = [
    "execute_reference",
    "random_inputs",
    "ChimeraConfig",
    "ChimeraOptimizer",
    "FusionPlan",
    "decide_fusion",
    "InterCoreLink",
    "a100",
    "a100_nvlinked_sms",
    "ascend_910",
    "ascend_910_cluster",
    "mesh_npu_16",
    "multicore_presets",
    "preset",
    "xeon_gold_6240",
    "OperatorChain",
    "attention_chain",
    "batch_gemm_chain",
    "conv_chain",
    "conv_tower",
    "gemm_chain",
    "mlp_chain",
    "separable_chain",
    "CompileResult",
    "GraphSchedule",
    "NetworkCompilationError",
    "NetworkPlan",
    "PlanFormatError",
    "schedule_partition",
    "compare",
    "compile_chain",
    "compile_network",
    "load_network_plan",
    "save_network_plan",
    "load_plan",
    "optimize_chain",
    "save_plan",
    "CompilationFailure",
    "CompileRequest",
    "CompileService",
    "cache_key",
    "SimReport",
    "simulate_plan",
    "simulate_sequence",
    "__version__",
]
