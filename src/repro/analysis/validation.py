"""Analytical-model validation (Figure 8 d-f).

The paper profiles a GEMM chain under hundreds of decomposition factors and
plots the measured data movement between L1 and L2 against the model's
prediction; the points hug ``y = x`` with R^2 around 0.97.  Here the
"hardware profiler" is the memory-hierarchy simulator: each sampled tiling
is lowered to a block program, replayed through the caches, and the traffic
crossing the chosen boundary is compared with Algorithm 1's prediction.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen.program import lower_schedule
from ..core.movement import MovementModel
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..sim.hierarchy import MemoryHierarchySim, SimConfig
from ..sim.trace import materialize_trace


@dataclasses.dataclass(frozen=True)
class ValidationPoint:
    """One sampled decomposition."""

    tiles: Dict[str, int]
    predicted: float
    measured: float


@dataclasses.dataclass(frozen=True)
class ValidationResult:
    """A scatter of predicted-vs-measured movement volumes."""

    chain: str
    order: Tuple[str, ...]
    level: str
    points: Tuple[ValidationPoint, ...]

    @property
    def r_squared(self) -> float:
        """Squared Pearson correlation between prediction and measurement."""
        xs = [p.predicted for p in self.points]
        ys = [p.measured for p in self.points]
        n = len(xs)
        if n < 2:
            return 0.0
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x == 0 or var_y == 0:
            return 0.0
        return (cov * cov) / (var_x * var_y)

    @property
    def mean_relative_error(self) -> float:
        errors = [
            abs(p.measured - p.predicted) / p.measured
            for p in self.points
            if p.measured > 0
        ]
        return sum(errors) / len(errors) if errors else 0.0

    def best_predicted(self) -> ValidationPoint:
        """The point the model would pick (minimal predicted DV)."""
        return min(self.points, key=lambda p: p.predicted)

    def best_measured(self) -> ValidationPoint:
        return min(self.points, key=lambda p: p.measured)


def _sample_tiles(
    rng: random.Random,
    names: Sequence[str],
    extents: Dict[str, int],
    min_tile: int,
) -> Dict[str, int]:
    grid = (4, 8, 16, 32, 64, 128, 256, 512)
    tiles = {}
    for name in extents:
        if name in names:
            bound = extents[name]
            choices = [t for t in grid if min_tile <= t <= bound]
            choices.append(bound)
            tiles[name] = rng.choice(choices)
        else:
            tiles[name] = 1
    return tiles


def measure_movement(
    chain: OperatorChain,
    hardware: HardwareSpec,
    order: Sequence[str],
    tiles: Dict[str, int],
    level: str,
    *,
    reuse_intermediates: bool = True,
    config: Optional[SimConfig] = None,
) -> float:
    """Simulated bytes crossing ``level``'s outer boundary for one tiling.

    With ``reuse_intermediates=False`` the producer-to-consumer handoff of
    intermediate tensors is severed — producer writes and consumer reads
    live in separate key spaces, so the consumer always re-fetches the
    intermediate (the paper's Figure 8(f) "force the second GEMM not to
    reuse C" kernel) while each side still enjoys normal caching.
    """
    program = lower_schedule(chain, order, tiles)
    split = (
        set() if reuse_intermediates else set(chain.intermediate_tensors())
    )
    sim = MemoryHierarchySim(hardware, config)
    # The materialized trace is cached on the program's compiled schedule,
    # so sweeping several boundaries/configs replays one list.
    for access in materialize_trace(program):
        key = access.key
        if access.tensor in split:
            key = (access.tensor, "w" if access.write else "r", access.region)
        if access.write:
            sim.write(key, access.nbytes)
        else:
            sim.read(key, access.nbytes)
    sim.flush()
    return sim.boundary_traffic()[level]


def validate_model(
    chain: OperatorChain,
    hardware: HardwareSpec,
    order: Sequence[str],
    *,
    level: Optional[str] = None,
    samples: int = 60,
    seed: int = 0,
    reuse_intermediates: bool = True,
    min_tile: int = 16,
    max_blocks: int = 80_000,
) -> ValidationResult:
    """Sample tilings and compare predicted vs measured movement.

    Args:
        chain: workload (the paper uses a square GEMM chain).
        hardware: machine model supplying the hierarchy.
        order: block execution order under test (``mlkn``, ``mlnk``, ...).
        level: boundary to validate (default: the innermost level, i.e. the
            L1<->L2 boundary of the paper).
        samples: decomposition factors to draw.
        seed: RNG seed.
        reuse_intermediates: False reproduces the forced-no-reuse case.
        min_tile: smallest sampled tile (keeps simulated block counts sane).
        max_blocks: skip tilings whose block program exceeds this size.
    """
    if level is None:
        level = hardware.innermost.name
    model = MovementModel(chain, order, reuse_intermediates=reuse_intermediates)
    extents = chain.loop_extents()
    capacity = hardware.per_block_capacity(hardware.level(level))
    rng = random.Random(seed)
    points: List[ValidationPoint] = []
    seen: set = set()
    for _ in range(samples * 20):
        if len(points) >= samples:
            break
        tiles = _sample_tiles(rng, list(order), extents, min_tile)
        key = tuple(sorted(tiles.items()))
        if key in seen:
            continue
        seen.add(key)
        # Only capacity-feasible decompositions are meaningful: the paper's
        # samples come from the optimizer's constrained space, and an
        # over-capacity block thrashes unpredictably on any machine.
        if capacity is not None and model.usage(tiles) > capacity:
            continue
        blocks = 1
        for name in order:
            blocks *= -(-extents[name] // tiles[name])
        if blocks > max_blocks:
            continue
        predicted = model.volume(tiles, exact=True)
        measured = measure_movement(
            chain,
            hardware,
            order,
            tiles,
            level,
            reuse_intermediates=reuse_intermediates,
        )
        points.append(ValidationPoint(tiles, predicted, measured))
    return ValidationResult(
        chain=chain.name,
        order=tuple(order),
        level=level,
        points=tuple(points),
    )
