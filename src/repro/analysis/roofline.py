"""Roofline classification of operators and chains.

The paper's fusion profitability story is a roofline argument: an operator
whose arithmetic intensity (flop per DRAM byte) sits below the machine
balance (peak flop/s over DRAM bandwidth, Table I) is memory-bound, and
chains ending in memory-bound operators are the fusion targets.  These
helpers make that classification explicit — they power the fuse-or-not
intuition and the "convolutions can also become memory-bound under certain
input shapes" observation of Section II-A.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain, single_op_chain
from ..ir.operator import OperatorSpec


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline.

    Attributes:
        name: operator or chain name.
        arithmetic_intensity: flop per compulsory DRAM byte.
        machine_balance: the device's flop-per-byte ridge point.
        attainable_flops: min(peak, AI * DRAM bandwidth), flop/s.
    """

    name: str
    arithmetic_intensity: float
    machine_balance: float
    attainable_flops: float

    @property
    def memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.machine_balance

    @property
    def attainable_fraction(self) -> float:
        """Fraction of peak the kernel can reach at best."""
        return min(1.0, self.arithmetic_intensity / self.machine_balance)

    def describe(self) -> str:
        kind = "memory-bound" if self.memory_bound else "compute-bound"
        return (
            f"{self.name}: AI {self.arithmetic_intensity:.1f} flop/B vs "
            f"balance {self.machine_balance:.0f} -> {kind} "
            f"({self.attainable_fraction:.0%} of peak attainable)"
        )


def chain_roofline(chain: OperatorChain, hardware: HardwareSpec) -> RooflinePoint:
    """Roofline position of the whole chain run as one fused kernel."""
    ai = chain.arithmetic_intensity()
    return RooflinePoint(
        name=chain.name,
        arithmetic_intensity=ai,
        machine_balance=hardware.machine_balance,
        attainable_flops=min(
            hardware.peak_flops, ai * hardware.dram_bandwidth
        ),
    )


def operator_roofline(
    op: OperatorSpec, chain: OperatorChain, hardware: HardwareSpec
) -> RooflinePoint:
    """Roofline position of one operator run as a standalone kernel.

    The operator's intermediate neighbours count as IO (they round-trip
    through DRAM when the operator runs alone).
    """
    solo = single_op_chain(op, chain.tensors)
    ai = solo.arithmetic_intensity()
    return RooflinePoint(
        name=op.name,
        arithmetic_intensity=ai,
        machine_balance=hardware.machine_balance,
        attainable_flops=min(
            hardware.peak_flops, ai * hardware.dram_bandwidth
        ),
    )


def fusion_prognosis(
    chain: OperatorChain, hardware: HardwareSpec
) -> Tuple[RooflinePoint, List[RooflinePoint], bool]:
    """Roofline view of the fusion decision.

    Returns:
        ``(chain_point, per_op_points, promising)`` where ``promising`` is
        the paper's rule of thumb: fusion pays when some unfused operator is
        memory-bound (its intermediate round-trip is the saving).
    """
    chain_point = chain_roofline(chain, hardware)
    per_op = [
        operator_roofline(op, chain, hardware)
        for op in chain.compute_intensive_ops()
    ]
    promising = any(point.memory_bound for point in per_op)
    return chain_point, per_op, promising
