"""Analysis utilities: model validation (Figure 8) and report rendering."""

from .roofline import (
    RooflinePoint,
    chain_roofline,
    fusion_prognosis,
    operator_roofline,
)
from .reporting import (
    TABLE_II,
    geomean,
    network_plan_table,
    render_series,
    render_table,
    render_table_ii,
)
from .validation import (
    ValidationPoint,
    ValidationResult,
    measure_movement,
    validate_model,
)

__all__ = [
    "RooflinePoint",
    "chain_roofline",
    "fusion_prognosis",
    "operator_roofline",
    "TABLE_II",
    "geomean",
    "network_plan_table",
    "render_series",
    "render_table",
    "render_table_ii",
    "ValidationPoint",
    "ValidationResult",
    "measure_movement",
    "validate_model",
]
