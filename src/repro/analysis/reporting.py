"""Text rendering for benchmark tables and figures.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Monospace table with per-column widths."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(series: Mapping[str, Sequence[float]], fmt: str = "{:.2f}") -> str:
    """One labelled numeric row per entry (figure data series)."""
    lines = []
    for label, values in series.items():
        body = " ".join(fmt.format(v) for v in values)
        lines.append(f"{label}: {body}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table II: the related-work comparison matrix
# ----------------------------------------------------------------------
TABLE_II: Tuple[Dict[str, str], ...] = (
    dict(name="AKG", codegen="Yes", inter="Minimize Reuse Distance",
         intra="Loop Transformation", cpu="Yes", gpu="Yes", npu="Yes",
         method="Polyhedral"),
    dict(name="DNNFusion", codegen="Yes", inter="Template-based Fusion",
         intra="Fixed Micro Kernel", cpu="Yes", gpu="Yes", npu="No",
         method="Tuning"),
    dict(name="TASO", codegen="No", inter="Graph Substitution Rules",
         intra="None", cpu="No", gpu="Yes", npu="No", method="Tuning"),
    dict(name="AStitch", codegen="Partial", inter="Kernel Stitching Rules",
         intra="Fixed Micro Kernel", cpu="No", gpu="Yes", npu="No",
         method="Rule-based"),
    dict(name="CoSA", codegen="No", inter="Minimize Compute Cycles",
         intra="None", cpu="No", gpu="Yes", npu="No", method="MIP"),
    dict(name="Atomic", codegen="No", inter="Minimize Inter-engine Movement",
         intra="None", cpu="No", gpu="No", npu="No", method="DP"),
    dict(name="MOpt", codegen="Yes", inter="Optimize Single-op Locality",
         intra="Fixed Micro Kernel", cpu="Yes", gpu="No", npu="No",
         method="Analytical"),
    dict(name="Roller", codegen="Yes", inter="rProgram Generation Algorithm",
         intra="Generated Micro Kernel", cpu="No", gpu="Yes", npu="No",
         method="Cost Model"),
    dict(name="Ansor", codegen="Yes", inter="Sketch Generation Rules",
         intra="Loop Transformation", cpu="Yes", gpu="Yes", npu="No",
         method="Tuning"),
    dict(name="BOLT", codegen="Partial", inter="Persistent Kernels",
         intra="Fixed Micro Kernel", cpu="No", gpu="Yes", npu="No",
         method="Tuning"),
    dict(name="Chimera", codegen="Yes", inter="Minimize Data Movement",
         intra="Replaceable Micro Kernel", cpu="Yes", gpu="Yes", npu="Yes",
         method="Analytical"),
)


def render_table_ii() -> str:
    """Render the paper's Table II comparison matrix as text."""
    headers = [
        "Name", "Codegen", "Inter-block", "Intra-block",
        "CPU", "GPU", "NPU", "Method",
    ]
    rows = [
        [
            row["name"], row["codegen"], row["inter"], row["intra"],
            row["cpu"], row["gpu"], row["npu"], row["method"],
        ]
        for row in TABLE_II
    ]
    return render_table(headers, rows)


def format_bytes(value: float) -> str:
    """Human-readable byte count for memory columns."""
    for unit, scale in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if value >= scale:
            return f"{value / scale:.2f}{unit}"
    return f"{value:.0f}B"


def network_plan_table(plan) -> str:
    """Per-node report for a :class:`repro.runtime.NetworkPlan`.

    Duck-typed (any object with ``nodes`` carrying ``name``/``repeat``/
    ``fusable``/``fused``/``kernels``/``source``/``time``/``total_time``,
    plus optionally ``cores`` for multi-core placements) so the analysis
    layer stays import-light.  When the plan carries a
    graph schedule, each row also reports the node's execution position,
    the resident intermediate bytes at that step, and the residency
    decision (``keep``/``rematerialize``/``spill``) for the node's
    output; unscheduled plans render ``-`` in those columns.
    """
    schedule = getattr(plan, "schedule", None)
    rows = []
    for node in plan.nodes:
        if node.fusable:
            # Stitched nodes are fusable chains assembled from several
            # graph nodes; surface the fold so the table reads like the
            # partition.
            kind = "stitched" if getattr(node, "stitched", ()) else "chain"
            decision = "fused" if node.fused else "unfused"
        else:
            # Fusion is only a decision for fusable chains; single ops and
            # memory-intensive glue have nothing to fuse.
            kind = "ops" if len(node.plans[0].chain.ops) > 1 else "op"
            decision = "-"
        if schedule is None:
            pos = live = residency = "-"
        else:
            index = schedule.position(node.name)
            pos = str(index)
            live = format_bytes(schedule.live_bytes[index])
            record = schedule.residency_of(node.name)
            # Nodes without a residency record produce network outputs —
            # nothing downstream consumes them, so nothing is decided.
            residency = record.decision if record is not None else "-"
        rows.append(
            [
                node.name,
                kind,
                decision,
                str(node.kernels),
                str(getattr(node, "cores", 1)),
                str(node.repeat),
                node.source or "-",
                f"{node.time * 1e6:.2f} us",
                f"{node.total_time * 1e6:.2f} us",
                pos,
                live,
                residency,
            ]
        )
    return render_table(
        ["node", "kind", "decision", "kernels", "cores", "repeat", "source",
         "per-exec", "total", "pos", "live", "residency"],
        rows,
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's average-speedup statistic)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
