"""Multi-level memory hierarchy optimization (Section IV-C, Eq. 2/3).

Each on-chip level ``d`` gets its own decomposition parameters ``S_d`` and
its own Algorithm-1 movement volume ``DV_d``; the movement cost of the
boundary feeding level ``d`` is ``Cost_d = DV_d / bw_d`` and the objective
is to minimize the slowest stage, ``max_d Cost_d``, subject to the per-level
capacity bounds and tile nesting ``S_d <= S_{d+1}``.

Because ``DV_d`` only depends on ``S_d`` and shrinks as tiles grow while
``MU_d`` grows, each level's unconstrained-by-others optimum uses the
largest tiles its own capacity allows; solving the levels outermost-first
and bounding each inner level by its parent's tiles therefore minimizes
every ``Cost_d`` simultaneously, which minimizes the max.  (When a nesting
bound binds, the inner level cannot do better anyway — its movement is at
least the parent's compulsory traffic.)
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from ..hardware.spec import HardwareSpec
from .movement import MovementModel
from .plan import LevelSchedule
from .search import SearchPolicy, SearchStats, chain_digest, memoized_solve_tiles
from .solver import ConstraintFn
from .warmstart import PlanHint


def boundary_bandwidth(hardware: HardwareSpec, level_index: int) -> float:
    """Bandwidth of the boundary feeding ``levels[level_index]`` (bytes/s).

    Fills come from the next level out, whose ``bandwidth`` field describes
    this boundary (so the outermost on-chip level is fed at DRAM bandwidth).
    """
    return hardware.levels[level_index + 1].bandwidth


def movement_cost(dv_bytes: float, hardware: HardwareSpec, level_index: int) -> float:
    """Eq. 2: seconds to move ``dv_bytes`` into ``levels[level_index]``."""
    return dv_bytes / boundary_bandwidth(hardware, level_index)


def minimax_cost(schedules: Sequence[LevelSchedule]) -> float:
    """Eq. 3 objective: the slowest data movement stage."""
    return max(sched.cost for sched in schedules)


def solve_hierarchy(
    model: MovementModel,
    hardware: HardwareSpec,
    *,
    min_tiles: Optional[Mapping[str, int]] = None,
    quanta: Optional[Mapping[str, int]] = None,
    constraints: Sequence[ConstraintFn] = (),
    constraints_token: Optional[Hashable] = None,
    starts: int = 4,
    capacity_utilization: float = 0.75,
    policy: Optional[SearchPolicy] = None,
    stats: Optional[SearchStats] = None,
    engine: Optional[str] = None,
    hint: Optional[PlanHint] = None,
) -> List[LevelSchedule]:
    """Solve tile sizes for every on-chip level under one block order.

    Solves are memoized under the exact permutation (ablations comparing
    symmetric orders still report their own order) when ``policy`` allows;
    ``constraints_token`` keeps constrained solves memoizable.  Every
    level's solve runs on the same model ``engine`` (``scalar``/``tables``,
    ``None`` defers to ``REPRO_MODEL_ENGINE``); the engines return
    bit-identical schedules.  ``hint`` (a neighboring shape's per-level
    tiles) warm-starts each level's solve without changing its result —
    the solver's canonical descent collapses the DV-flat ridge, so, like
    the engine, the hint stays out of the memo key.

    Returns:
        schedules innermost-first (matching ``HardwareSpec.on_chip_levels``).
    """
    schedules_outer_first: List[LevelSchedule] = []
    parent_tiles: Optional[Dict[str, int]] = None
    policy = policy or SearchPolicy.from_env()
    digest = chain_digest(model.chain) if policy.memoize else None
    on_chip = hardware.on_chip_levels
    for offset, level in enumerate(reversed(on_chip)):
        level_index = len(on_chip) - 1 - offset
        raw_capacity = hardware.per_block_capacity(level)
        assert raw_capacity is not None  # on-chip levels are bounded
        capacity = raw_capacity * capacity_utilization
        level_hint = hint.level(level.name) if hint is not None else None
        solution = memoized_solve_tiles(
            model,
            float(capacity),
            min_tiles=min_tiles,
            quanta=quanta,
            constraints=constraints,
            constraints_token=constraints_token,
            max_parent=parent_tiles,
            starts=starts,
            policy=policy,
            digest=digest,
            stats=stats,
            engine=engine,
            x0_hint=(
                None if level_hint is None else dict(level_hint.tiles)
            ),
        )
        schedules_outer_first.append(
            LevelSchedule(
                level=level.name,
                order=model.perm,
                tiles=solution.tiles,
                predicted_dv=solution.dv,
                predicted_mu=solution.mu,
                capacity=float(capacity),
                bandwidth=boundary_bandwidth(hardware, level_index),
            )
        )
        parent_tiles = {
            name: solution.tiles[name] for name in model.perm
        }
    return list(reversed(schedules_outer_first))
