"""Fusion profitability decisions.

Fusing a compute-intensive chain is only beneficial when the saved
intermediate round-trips outweigh the costs fusion introduces (recomputation
for sliding windows, smaller per-operator tiles).  The paper observes this
directly: point-wise second convolutions fuse profitably, while a
compute-bound 3x3 second convolution (case C6 on GPU) does not.

:func:`decide_fusion` plans both alternatives with the same analytical
machinery and keeps the faster one — this is Chimera's graph-partitioning
step for a single chain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Tuple

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain, single_op_chain
from .multicore import best_partitioned_plan
from .optimizer import ChimeraConfig, ChimeraOptimizer
from .plan import FusionPlan
from .search import SearchPolicy
from .warmstart import ChainHints, PlanHint


@dataclasses.dataclass(frozen=True)
class FusionDecision:
    """Outcome of the fuse-or-not comparison for one chain.

    Attributes:
        fused_plan: the whole-chain fused plan.
        unfused_plans: one plan per operator, run as separate kernels.
        use_fusion: whether the fused plan is predicted faster.
    """

    fused_plan: FusionPlan
    unfused_plans: Tuple[FusionPlan, ...]
    use_fusion: bool

    @property
    def chosen(self) -> Tuple[FusionPlan, ...]:
        return (self.fused_plan,) if self.use_fusion else self.unfused_plans

    @property
    def fused_time(self) -> float:
        return self.fused_plan.predicted_time

    @property
    def unfused_time(self) -> float:
        return sum(plan.predicted_time for plan in self.unfused_plans)

    @property
    def predicted_speedup(self) -> float:
        """Unfused over fused time (> 1 means fusion wins)."""
        return self.unfused_time / self.fused_time


def plan_unfused(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    policy: Optional[SearchPolicy] = None,
    hints: Optional[Mapping[str, PlanHint]] = None,
) -> Tuple[FusionPlan, ...]:
    """Plan every operator of ``chain`` as its own kernel.

    Intermediates become each kernel's IO tensors, so their DRAM round-trip
    is charged automatically by Algorithm 1.  ``hints`` (per-operator
    warm-start plans from a neighboring shape, keyed by operator name)
    speed the per-op solves up without changing them.
    """
    optimizer = ChimeraOptimizer(hardware, config, policy=policy)
    plans: List[FusionPlan] = []
    for op in chain.ops:
        sub_chain = single_op_chain(op, chain.tensors)
        plans.append(
            optimizer.optimize(
                sub_chain, hint=(hints or {}).get(op.name)
            )
        )
    return tuple(plans)


def decide_fusion(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    policy: Optional[SearchPolicy] = None,
    hints: Optional[ChainHints] = None,
) -> FusionDecision:
    """Plan fused and unfused executions and pick the faster one.

    ``hints`` carries a neighboring shape's fused and per-operator plans;
    both alternatives warm-start from them, and the decision (a comparison
    of the identical resulting plans' predicted times) is unchanged.

    On hardware declaring an inter-core link, the fused alternative also
    searches block-to-core placements (``repro.core.multicore``): the
    chain sharded over ``p`` cores with the communication term priced by
    the link.  A placement replaces the aggregate fused plan only when
    strictly faster, so linkless hardware — and link-bearing hardware
    where no placement wins — keeps today's plans byte-identically.
    """
    optimizer = ChimeraOptimizer(hardware, config, policy=policy)
    fused = optimizer.optimize(
        chain, hint=hints.fused if hints is not None else None
    )
    if hardware.link is not None:
        partitioned = best_partitioned_plan(
            chain,
            hardware,
            config,
            policy=policy,
            incumbent_time=fused.predicted_time,
        )
        if partitioned is not None:
            fused = partitioned
    unfused = plan_unfused(
        chain,
        hardware,
        config,
        policy,
        hints=hints.unfused if hints is not None else None,
    )
    fused_time = fused.predicted_time
    unfused_time = sum(plan.predicted_time for plan in unfused)
    return FusionDecision(
        fused_plan=fused,
        unfused_plans=unfused,
        use_fusion=fused_time <= unfused_time,
    )
