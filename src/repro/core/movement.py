"""Algorithm 1: analytical data movement volume and memory usage.

Given an operator chain, a block execution order (a permutation of the
chain's independent loops, outermost first) and decomposition parameters
``S`` (tile size per loop), this module computes

* **DV** — the total data movement volume between off-chip memory and the
  on-chip level under consideration, and
* **MU** — the peak on-chip memory usage of one computation block,

exactly as Algorithm 1 of the paper does, using its three observations:

1. loops whose variables (and whose inner loops' variables) do not index a
   tensor cause no movement for it;
2. once some loop causes movement for a tensor, every loop outside it does
   too;
3. loops private to a producer operator never cause movement for its
   consumers' tensors.

Only the chain's IO tensors move — intermediates stay on chip (their DM is
0).  :class:`MovementModel` precompiles the permutation into per-tensor
multiplier sets so the tile-size solver can evaluate DV(S) and MU(S) cheaply
and in either the exact (ceil) or smooth (real-valued) form.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.access import TensorAccess
from ..ir.chain import OperatorChain
from .footprint import footprint_bytes


def algorithm1(
    chain: OperatorChain,
    perm: Sequence[str],
    tiles: Mapping[str, int],
    *,
    reuse_intermediates: bool = True,
) -> Tuple[float, float]:
    """Literal translation of the paper's Algorithm 1.

    Args:
        chain: the operator chain ``Ops``.
        perm: loop permutation, outermost first; blocks execute innermost
            (right-most) loop first.
        tiles: decomposition parameters ``S`` (tile size per loop name).
        reuse_intermediates: when False, intermediate tensors are treated as
            if they also round-tripped through off-chip memory (the Figure
            8(f) "no reuse of C" case).

    Returns:
        ``(DV, MU)`` in bytes.
    """
    _check_perm(chain, perm)
    io_set = set(chain.io_tensors())
    if not reuse_intermediates:
        io_set |= set(chain.intermediate_tensors())

    extents = chain.loop_extents()
    volume = 0.0
    usage = 0.0
    active = list(perm)
    for op in chain.ops:
        total_df = 0.0
        for access in op.all_accesses():
            df = footprint_bytes(chain, access, tiles)
            total_df += df
            if access.tensor in io_set:
                trips_total = 1
                effective = dict(tiles)
                keep_reuse = True
                for loop_name in reversed(active):
                    if not op.has_loop(loop_name):
                        continue
                    if access.uses(loop_name):
                        keep_reuse = False
                    if not keep_reuse:
                        trips = math.ceil(
                            extents[loop_name] / tiles.get(loop_name, 1)
                        )
                        trips_total *= trips
                        # Edge clamping: across a full sweep the average
                        # tile is extent/trips, so plain dims sum to the
                        # exact extent (Table III's MK*ceil(L/T_L) form).
                        effective[loop_name] = extents[loop_name] / trips
                dm = footprint_bytes(chain, access, effective) * trips_total
                volume += dm
        # Observation 3: producer-private loops do not iterate consumers.
        active = [n for n in active if not chain.is_private(n, op)]
        usage = max(usage, total_df)
    return volume, usage


@dataclasses.dataclass(frozen=True)
class MovementTerm:
    """One tensor's movement contribution under a fixed permutation.

    ``DM = footprint(access, S) * prod_{l in multipliers} ceil(L_l / S_l)``.
    """

    op_name: str
    access: TensorAccess
    elem_bytes: int
    multipliers: Tuple[Tuple[str, int], ...]  # (loop name, full extent)

    def movement_bytes(
        self, tiles: Mapping[str, float], *, exact: bool = True
    ) -> float:
        """``DM`` for this tensor under the given tiles.

        Edge tiles are clamped to the loop extent: a multiplier loop ``l``
        contributes ``ceil(L/T)`` trips whose *average* tile is
        ``L / ceil(L/T)``, so a full sweep of a plain dimension touches
        exactly ``L`` elements (this is what makes the result match the
        paper's closed forms like ``MK * ceil(L/T_L)`` in Table III).
        """
        if not exact:
            dm = self.access.footprint(tiles) * self.elem_bytes
            for loop_name, extent in self.multipliers:
                dm *= max(extent / tiles.get(loop_name, 1), 1.0)
            return dm
        effective = dict(tiles)
        dm = float(self.elem_bytes)
        for loop_name, extent in self.multipliers:
            trips = math.ceil(extent / tiles.get(loop_name, 1))
            effective[loop_name] = extent / trips
            dm *= trips
        return dm * self.access.footprint(effective)

    @property
    def tensor(self) -> str:
        return self.access.tensor

    @property
    def signature(self) -> Tuple:
        loops = frozenset(name for name, _ in self.multipliers)
        return (self.op_name, self.tensor, loops)


class MovementModel:
    """Algorithm 1 pre-compiled for one (chain, permutation) pair.

    The permutation only influences DV through each IO tensor's *multiplier
    set* — the loops at or outside its innermost accessing loop within the
    owning operator.  Precomputing those sets turns every DV evaluation into
    a handful of multiplications, which is what makes enumerating thousands
    of permutations with a tile-size solve per candidate affordable.

    **Memory usage correction.**  Any permutation is realizable by loop
    distribution: producer and consumer share the outer loops up to their
    *divergence point* (the outermost loop belonging to only one of them)
    and run as sibling sub-nests below it.  The intermediate tensor must
    then be buffered over the **full extent** of every loop at or below the
    divergence point — e.g. under order ``k/m/n/l`` the whole ``C`` matrix
    would have to stay on chip.  The paper's Algorithm 1 uses the plain tile
    footprint for MU, which under-constrains such orders; this class charges
    the distributed-buffer footprint instead, so the capacity constraint
    rules them out instead of letting the optimizer "win" with invalid
    schedules.  (:func:`algorithm1` stays a literal transcription.)
    """

    def __init__(
        self,
        chain: OperatorChain,
        perm: Sequence[str],
        *,
        reuse_intermediates: bool = True,
    ) -> None:
        _check_perm(chain, perm)
        self.chain = chain
        self.perm = tuple(perm)
        self.reuse_intermediates = reuse_intermediates
        self.terms = self._build_terms()
        self._buffer_full_loops = self._build_buffer_spec()
        self._signature_digest: Optional[str] = None

    def _build_terms(self) -> Tuple[MovementTerm, ...]:
        chain = self.chain
        io_set = set(chain.io_tensors())
        if not self.reuse_intermediates:
            io_set |= set(chain.intermediate_tensors())
        extents = chain.loop_extents()

        terms: List[MovementTerm] = []
        active = list(self.perm)
        for op in chain.ops:
            for access in op.all_accesses():
                if access.tensor not in io_set:
                    continue
                multipliers: List[Tuple[str, int]] = []
                keep_reuse = True
                for loop_name in reversed(active):
                    if not op.has_loop(loop_name):
                        continue
                    if access.uses(loop_name):
                        keep_reuse = False
                    if not keep_reuse:
                        multipliers.append((loop_name, extents[loop_name]))
                # Multipliers are a *set* semantically; storing them sorted
                # makes permutations with equal signatures evaluate DV/MU in
                # the same floating-point order, so the solve memo can reuse
                # one signature's solution for another bit-for-bit.
                terms.append(
                    MovementTerm(
                        op_name=op.name,
                        access=access,
                        elem_bytes=chain.tensors[access.tensor].dtype.nbytes,
                        multipliers=tuple(sorted(multipliers)),
                    )
                )
            active = [n for n in active if not chain.is_private(n, op)]
        return tuple(terms)

    def _build_buffer_spec(self) -> Dict[str, Tuple[str, ...]]:
        """Loops buffered at full extent, per intermediate tensor.

        For each intermediate, find the divergence point between its
        producer and each consumer: the outermost permutation position
        holding a loop that belongs to one side but not both.  Every loop
        from the earliest divergence onwards is buffered at full extent.
        """
        chain = self.chain
        spec: Dict[str, Tuple[str, ...]] = {}
        if not self.reuse_intermediates:
            # Intermediates round-trip through off-chip memory: no on-chip
            # distribution buffer is required beyond the plain tile.
            return spec
        extents = chain.loop_extents()
        for tensor in chain.intermediate_tensors():
            producer = chain.producers_of(tensor)[0]
            divergence = len(self.perm)
            for consumer in chain.consumers_of(tensor):
                shared = set(producer.loop_names) & set(consumer.loop_names)
                either = set(producer.loop_names) | set(consumer.loop_names)
                for position, name in enumerate(self.perm):
                    if name in either and name not in shared:
                        divergence = min(divergence, position)
                        break
            full = tuple(
                name
                for name in self.perm[divergence:]
                if extents[name] > 1
            )
            spec[tensor] = full
        return spec

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def volume(self, tiles: Mapping[str, float], *, exact: bool = True) -> float:
        """Total data movement volume DV in bytes."""
        return sum(t.movement_bytes(tiles, exact=exact) for t in self.terms)

    def usage(self, tiles: Mapping[str, float]) -> float:
        """Peak per-block on-chip memory usage MU in bytes.

        IO tensors count their tile footprint; intermediates count their
        loop-distribution buffer (full extent below the divergence point).
        """
        chain = self.chain
        extents = chain.loop_extents()
        peak = 0.0
        for op in chain.ops:
            total = 0.0
            for access in op.all_accesses():
                full_loops = self._buffer_full_loops.get(access.tensor)
                if full_loops:
                    eff = dict(tiles)
                    for name in full_loops:
                        eff[name] = extents[name]
                    footprint = access.footprint(eff)
                else:
                    footprint = access.footprint(tiles)
                total += footprint * chain.tensors[access.tensor].dtype.nbytes
            peak = max(peak, total)
        return peak

    def buffered_full_loops(self, tensor: str) -> Tuple[str, ...]:
        """Loops an intermediate is buffered over at full extent."""
        return self._buffer_full_loops.get(tensor, ())

    @property
    def has_enlarged_buffers(self) -> bool:
        """Whether any intermediate needs more than its plain tile.

        True when the order diverges producer and consumer above a loop
        that indexes the intermediate — the loop-distribution buffer then
        spans that loop's full extent.  Such residency is only guaranteed
        on software-managed memories; hardware LRU levels reject these
        orders (see :meth:`ChimeraOptimizer.optimize`).
        """
        chain = self.chain
        for tensor, full_loops in self._buffer_full_loops.items():
            if not full_loops:
                continue
            producer = chain.producers_of(tensor)[0]
            access = producer.access_of(tensor)
            if any(access.uses(name) for name in full_loops):
                return True
        return False

    def per_tensor(
        self, tiles: Mapping[str, float], *, exact: bool = True
    ) -> Dict[str, float]:
        """DV broken down by tensor (bytes); intermediates report 0."""
        breakdown: Dict[str, float] = {t: 0.0 for t in self.chain.tensors}
        for term in self.terms:
            breakdown[term.tensor] += term.movement_bytes(tiles, exact=exact)
        return breakdown

    @property
    def signature(self) -> Tuple:
        """Hashable key identifying the (DV, MU) functions this perm induces.

        Permutations with equal signatures have identical DV *and* identical
        intermediate-buffer structure for every tile assignment, so the
        optimizer solves each signature once.
        """
        buffers = tuple(sorted(
            (tensor, frozenset(loops))
            for tensor, loops in self._buffer_full_loops.items()
        ))
        return (tuple(sorted(t.signature for t in self.terms)), buffers)

    def signature_digest(self) -> str:
        """Stable hex digest of :attr:`signature` (solve-memo key part).

        Frozensets have no deterministic iteration order, so the digest
        hashes a fully sorted rendering of the signature rather than its
        ``repr``.
        """
        if self._signature_digest is None:
            term_sigs, buffers = self.signature
            canonical = (
                tuple(
                    (op, tensor, tuple(sorted(loops)))
                    for op, tensor, loops in term_sigs
                ),
                tuple(
                    (tensor, tuple(sorted(loops))) for tensor, loops in buffers
                ),
                self.reuse_intermediates,
            )
            self._signature_digest = hashlib.sha256(
                repr(canonical).encode()
            ).hexdigest()
        return self._signature_digest

    def __repr__(self) -> str:
        return f"MovementModel({self.chain.name}, order={'/'.join(self.perm)})"


def executed_flops(
    chain: OperatorChain,
    perm: Sequence[str],
    tiles: Mapping[str, int],
) -> float:
    """Floating point operations actually executed under a block schedule.

    Differs from ``chain.total_flops()`` when fusion introduces
    recomputation: a 3x3 consumer convolution makes overlapping producer
    output regions, so halo elements are recomputed once per consumer block.

    Per operator: ``flops_per_inner_iteration x write_footprint(S) x
    reduction_tile_iterations x blocks``, where ``blocks`` multiplies
    ``ceil(L/S)`` over the operator's own loops present in the order (the
    operator's body is hoisted out of loops it does not use).
    """
    _check_perm(chain, perm)
    extents = chain.loop_extents()
    perm_set = set(perm)
    total = 0.0
    for op in chain.ops:
        out = op.output
        out_elements = chain.tensors[out.tensor].elements
        reduction_extent = 1
        for name in op.reduction_loop_names:
            reduction_extent *= extents[name]
        flops_per_iter = op.flops / (out_elements * reduction_extent)

        per_block = out.footprint(tiles)
        for name in op.reduction_loop_names:
            per_block *= tiles.get(name, 1) if name in perm_set else extents[name]

        blocks = 1.0
        for name in op.loop_names:
            if name in perm_set:
                blocks *= math.ceil(extents[name] / tiles.get(name, 1))
        total += flops_per_iter * per_block * blocks
    return total


def _check_perm(chain: OperatorChain, perm: Sequence[str]) -> None:
    """Validate a block order.

    Loops with extent 1 may be omitted — they never cause data replacement
    (their single iteration cannot evict anything), so the ordering layer
    drops them.  Every other independent loop must appear exactly once.
    """
    got = list(perm)
    if len(got) != len(set(got)):
        raise ValueError(f"permutation {got} repeats a loop")
    independent = set(chain.independent_loops())
    unknown = set(got) - independent
    if unknown:
        raise ValueError(
            f"permutation names unknown loops {sorted(unknown)}; "
            f"independent loops are {sorted(independent)}"
        )
    extents = chain.loop_extents()
    required = {n for n in independent if extents[n] > 1}
    missing = required - set(got)
    if missing:
        raise ValueError(
            f"permutation {got} misses non-degenerate loops {sorted(missing)}"
        )
