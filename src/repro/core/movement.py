"""Algorithm 1: analytical data movement volume and memory usage.

Given an operator chain, a block execution order (a permutation of the
chain's independent loops, outermost first) and decomposition parameters
``S`` (tile size per loop), this module computes

* **DV** — the total data movement volume between off-chip memory and the
  on-chip level under consideration, and
* **MU** — the peak on-chip memory usage of one computation block,

exactly as Algorithm 1 of the paper does, using its three observations:

1. loops whose variables (and whose inner loops' variables) do not index a
   tensor cause no movement for it;
2. once some loop causes movement for a tensor, every loop outside it does
   too;
3. loops private to a producer operator never cause movement for its
   consumers' tensors.

Only the chain's IO tensors move — intermediates stay on chip (their DM is
0).  :class:`MovementModel` precompiles the permutation into per-tensor
multiplier sets so the tile-size solver can evaluate DV(S) and MU(S) cheaply
and in either the exact (ceil) or smooth (real-valued) form.

**Stitched memory-intensive ops** (see :mod:`repro.ir.stitch`) need no
special cases here, by construction: stitching turns the bridge tensor
between a CI operator and its softmax/layer-norm/elementwise neighbor into
a chain *intermediate*, so its DV term vanishes exactly like any other
fused intermediate, while the stitched op still contributes its MU rows
(its tile footprint joins the per-block usage sum that
:class:`repro.core.tables.MovementTables` turns into the unified-buffer
capacity row).  When the shared buffer cannot hold the stitched
intermediate at a candidate tiling, that capacity constraint — not an ad
hoc penalty — rejects the tiling; :func:`unfused_round_trip_bytes` prices
what the fallback (unstitched) execution pays instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import weakref
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..ir.access import TensorAccess
from ..ir.chain import OperatorChain
from .footprint import footprint_bytes


def algorithm1(
    chain: OperatorChain,
    perm: Sequence[str],
    tiles: Mapping[str, int],
    *,
    reuse_intermediates: bool = True,
) -> Tuple[float, float]:
    """Literal translation of the paper's Algorithm 1.

    Args:
        chain: the operator chain ``Ops``.
        perm: loop permutation, outermost first; blocks execute innermost
            (right-most) loop first.
        tiles: decomposition parameters ``S`` (tile size per loop name).
        reuse_intermediates: when False, intermediate tensors are treated as
            if they also round-tripped through off-chip memory (the Figure
            8(f) "no reuse of C" case).

    Returns:
        ``(DV, MU)`` in bytes.
    """
    _check_perm(chain, perm)
    io_set = set(chain.io_tensors())
    if not reuse_intermediates:
        io_set |= set(chain.intermediate_tensors())

    extents = chain.loop_extents()
    volume = 0.0
    usage = 0.0
    active = list(perm)
    for op in chain.ops:
        total_df = 0.0
        for access in op.all_accesses():
            df = footprint_bytes(chain, access, tiles)
            total_df += df
            if access.tensor in io_set:
                trips_total = 1
                effective = dict(tiles)
                keep_reuse = True
                for loop_name in reversed(active):
                    if not op.has_loop(loop_name):
                        continue
                    if access.uses(loop_name):
                        keep_reuse = False
                    if not keep_reuse:
                        trips = math.ceil(
                            extents[loop_name] / tiles.get(loop_name, 1)
                        )
                        trips_total *= trips
                        # Edge clamping: across a full sweep the average
                        # tile is extent/trips, so plain dims sum to the
                        # exact extent (Table III's MK*ceil(L/T_L) form).
                        effective[loop_name] = extents[loop_name] / trips
                dm = footprint_bytes(chain, access, effective) * trips_total
                volume += dm
        # Observation 3: producer-private loops do not iterate consumers.
        active = [n for n in active if not chain.is_private(n, op)]
        usage = max(usage, total_df)
    return volume, usage


def unfused_round_trip_bytes(chain: OperatorChain) -> int:
    """DRAM bytes the *unfused* execution round-trips for intermediates.

    Every chain intermediate — including the bridge tensors stitching
    created — is written to DRAM once and read back once per consuming
    operator when the chain runs as separate kernels.  This is the lower
    bound on the traffic fusion-with-stitching removes, used by the
    stitching benchmark and tests to sanity-check the simulator's
    counters against the analytical model.
    """
    total = 0
    for name in chain.intermediate_tensors():
        spec = chain.tensors[name]
        readers = len(chain.consumers_of(name))
        total += spill_round_trip_bytes(spec.nbytes, readers)
    return total


def spill_round_trip_bytes(nbytes: int, readers: int) -> int:
    """DRAM bytes one evicted tensor round-trips: one fill, ``readers`` reads.

    The same accounting Algorithm 1 applies at the chain level — a tensor
    that cannot stay resident crosses the DRAM boundary once on the write
    side and once per consumer on the read side — reused by
    :mod:`repro.runtime.scheduler` to price graph-level spill decisions
    (seconds follow by dividing through the DRAM bandwidth, exactly like
    any other movement-model volume).
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if readers < 0:
        raise ValueError(f"readers must be >= 0, got {readers}")
    return nbytes * (1 + readers)


@dataclasses.dataclass(frozen=True)
class _ChainPrep:
    """Per-chain invariants shared by every ``MovementModel`` over the chain.

    Enumerating block orders builds one model per permutation, but almost
    everything Algorithm 1 consults — loop extents, IO classification,
    which loops each operator and access touch, loop privacy, the
    producer/consumer divergence sets of each intermediate — depends only
    on the chain.  Hoisting those into one memoized prep turns per-model
    construction into pure set membership tests over the permutation.

    ``ops`` holds one ``(op_name, loop_set, accesses)`` triple per operator
    (chain order), where ``accesses`` lists
    ``(access, elem_bytes, used_loops)`` for every access of the operator.
    ``private_owner`` maps a loop to the sole operator name using it (loops
    shared by several operators are absent).  ``divergence_sets`` maps each
    intermediate tensor to the symmetric difference of producer/consumer
    loop sets, one entry per consumer — the loops at which that pair's
    sub-nests split.
    """

    extents: Dict[str, int]
    io_set: FrozenSet[str]
    io_set_noreuse: FrozenSet[str]
    intermediates: Tuple[str, ...]
    ops: Tuple[
        Tuple[str, FrozenSet[str], Tuple[Tuple[TensorAccess, int, FrozenSet[str]], ...]],
        ...,
    ]
    private_owner: Dict[str, str]
    divergence_sets: Dict[str, Tuple[FrozenSet[str], ...]]


_CHAIN_PREPS: Dict[int, _ChainPrep] = {}


def _chain_prep(chain: OperatorChain) -> _ChainPrep:
    """Memoized :class:`_ChainPrep` for ``chain`` (keyed by identity).

    Chains are frozen dataclasses holding unhashable mappings, so the memo
    keys on ``id`` and a ``weakref.finalize`` evicts the entry when the
    chain is collected (ids are recycled).
    """
    prep = _CHAIN_PREPS.get(id(chain))
    if prep is not None:
        return prep
    extents = chain.loop_extents()
    io_set = frozenset(chain.io_tensors())
    intermediates = chain.intermediate_tensors()

    loop_owners: Dict[str, List[str]] = {}
    ops = []
    for op in chain.ops:
        loop_set = frozenset(op.loop_names)
        for name in loop_set:
            loop_owners.setdefault(name, []).append(op.name)
        accesses = tuple(
            (
                access,
                chain.tensors[access.tensor].dtype.nbytes,
                frozenset(
                    name for dim in access.dims for name, _ in dim.terms
                ),
            )
            for access in op.all_accesses()
        )
        ops.append((op.name, loop_set, accesses))
    private_owner = {
        name: owners[0] for name, owners in loop_owners.items() if len(owners) == 1
    }

    divergence_sets: Dict[str, Tuple[FrozenSet[str], ...]] = {}
    for tensor in intermediates:
        producer_loops = set(chain.producers_of(tensor)[0].loop_names)
        divergence_sets[tensor] = tuple(
            frozenset(producer_loops ^ set(consumer.loop_names))
            for consumer in chain.consumers_of(tensor)
        )

    prep = _ChainPrep(
        extents=extents,
        io_set=io_set,
        io_set_noreuse=io_set | frozenset(intermediates),
        intermediates=intermediates,
        ops=tuple(ops),
        private_owner=private_owner,
        divergence_sets=divergence_sets,
    )
    _CHAIN_PREPS[id(chain)] = prep
    weakref.finalize(chain, _CHAIN_PREPS.pop, id(chain), None)
    return prep


@dataclasses.dataclass(frozen=True)
class MovementTerm:
    """One tensor's movement contribution under a fixed permutation.

    ``DM = footprint(access, S) * prod_{l in multipliers} ceil(L_l / S_l)``.
    """

    op_name: str
    access: TensorAccess
    elem_bytes: int
    multipliers: Tuple[Tuple[str, int], ...]  # (loop name, full extent)

    def movement_bytes(
        self, tiles: Mapping[str, float], *, exact: bool = True
    ) -> float:
        """``DM`` for this tensor under the given tiles.

        Edge tiles are clamped to the loop extent: a multiplier loop ``l``
        contributes ``ceil(L/T)`` trips whose *average* tile is
        ``L / ceil(L/T)``, so a full sweep of a plain dimension touches
        exactly ``L`` elements (this is what makes the result match the
        paper's closed forms like ``MK * ceil(L/T_L)`` in Table III).
        """
        if not exact:
            dm = self.access.footprint(tiles) * self.elem_bytes
            for loop_name, extent in self.multipliers:
                dm *= max(extent / tiles.get(loop_name, 1), 1.0)
            return dm
        effective = dict(tiles)
        dm = float(self.elem_bytes)
        for loop_name, extent in self.multipliers:
            trips = math.ceil(extent / tiles.get(loop_name, 1))
            effective[loop_name] = extent / trips
            dm *= trips
        return dm * self.access.footprint(effective)

    @property
    def tensor(self) -> str:
        return self.access.tensor

    @property
    def signature(self) -> Tuple:
        loops = frozenset(name for name, _ in self.multipliers)
        return (self.op_name, self.tensor, loops)


class MovementModel:
    """Algorithm 1 pre-compiled for one (chain, permutation) pair.

    The permutation only influences DV through each IO tensor's *multiplier
    set* — the loops at or outside its innermost accessing loop within the
    owning operator.  Precomputing those sets turns every DV evaluation into
    a handful of multiplications, which is what makes enumerating thousands
    of permutations with a tile-size solve per candidate affordable.

    **Memory usage correction.**  Any permutation is realizable by loop
    distribution: producer and consumer share the outer loops up to their
    *divergence point* (the outermost loop belonging to only one of them)
    and run as sibling sub-nests below it.  The intermediate tensor must
    then be buffered over the **full extent** of every loop at or below the
    divergence point — e.g. under order ``k/m/n/l`` the whole ``C`` matrix
    would have to stay on chip.  The paper's Algorithm 1 uses the plain tile
    footprint for MU, which under-constrains such orders; this class charges
    the distributed-buffer footprint instead, so the capacity constraint
    rules them out instead of letting the optimizer "win" with invalid
    schedules.  (:func:`algorithm1` stays a literal transcription.)
    """

    def __init__(
        self,
        chain: OperatorChain,
        perm: Sequence[str],
        *,
        reuse_intermediates: bool = True,
    ) -> None:
        _check_perm(chain, perm)
        self.chain = chain
        self.perm = tuple(perm)
        self.reuse_intermediates = reuse_intermediates
        prep = _chain_prep(chain)
        self.terms = self._build_terms(prep)
        self._buffer_full_loops = self._build_buffer_spec(prep)
        self._usage_plan_cache: Optional[Tuple] = None
        self._signature: Optional[Tuple] = None
        self._signature_digest: Optional[str] = None

    def _build_terms(self, prep: _ChainPrep) -> Tuple[MovementTerm, ...]:
        io_set = prep.io_set if self.reuse_intermediates else prep.io_set_noreuse
        extents = prep.extents
        private_owner = prep.private_owner

        terms: List[MovementTerm] = []
        active = list(self.perm)
        for op_name, op_loops, accesses in prep.ops:
            for access, elem_bytes, used_loops in accesses:
                if access.tensor not in io_set:
                    continue
                multipliers: List[Tuple[str, int]] = []
                keep_reuse = True
                for loop_name in reversed(active):
                    if loop_name not in op_loops:
                        continue
                    if loop_name in used_loops:
                        keep_reuse = False
                    if not keep_reuse:
                        multipliers.append((loop_name, extents[loop_name]))
                # Multipliers are a *set* semantically; storing them sorted
                # makes permutations with equal signatures evaluate DV/MU in
                # the same floating-point order, so the solve memo can reuse
                # one signature's solution for another bit-for-bit.
                terms.append(
                    MovementTerm(
                        op_name=op_name,
                        access=access,
                        elem_bytes=elem_bytes,
                        multipliers=tuple(sorted(multipliers)),
                    )
                )
            # Observation 3: producer-private loops do not iterate consumers.
            active = [n for n in active if private_owner.get(n) != op_name]
        return tuple(terms)

    def _build_buffer_spec(self, prep: _ChainPrep) -> Dict[str, Tuple[str, ...]]:
        """Loops buffered at full extent, per intermediate tensor.

        For each intermediate, find the divergence point between its
        producer and each consumer: the outermost permutation position
        holding a loop that belongs to one side but not both (the prep's
        precomputed symmetric-difference set).  Every loop from the
        earliest divergence onwards is buffered at full extent.
        """
        spec: Dict[str, Tuple[str, ...]] = {}
        if not self.reuse_intermediates:
            # Intermediates round-trip through off-chip memory: no on-chip
            # distribution buffer is required beyond the plain tile.
            return spec
        extents = prep.extents
        for tensor in prep.intermediates:
            divergence = len(self.perm)
            for split_loops in prep.divergence_sets[tensor]:
                for position, name in enumerate(self.perm):
                    if name in split_loops:
                        divergence = min(divergence, position)
                        break
            full = tuple(
                name
                for name in self.perm[divergence:]
                if extents[name] > 1
            )
            spec[tensor] = full
        return spec

    @property
    def _usage_plan(
        self,
    ) -> Tuple[Tuple[Tuple[TensorAccess, int, Tuple[Tuple[str, int], ...]], ...], ...]:
        """Precompiled MU evaluation plan: one entry per (op, access).

        Hoists everything :meth:`usage` would otherwise re-derive per call —
        the ``chain.loop_extents()`` lookup, the buffer-spec lookup per
        tensor and the dtype byte count — into a per-access tuple
        ``(access, elem_bytes, overlay)`` where ``overlay`` lists the
        ``(loop, extent)`` pairs an intermediate's distribution buffer pins
        at full extent.  Built lazily on first use: order enumeration
        constructs thousands of models that are only signature-deduped and
        never evaluate MU.
        """
        plan = self._usage_plan_cache
        if plan is None:
            prep = _chain_prep(self.chain)
            built = []
            for _, _, accesses in prep.ops:
                entries = []
                for access, elem_bytes, _ in accesses:
                    full_loops = self._buffer_full_loops.get(access.tensor) or ()
                    overlay = tuple(
                        (name, prep.extents[name]) for name in full_loops
                    )
                    entries.append((access, elem_bytes, overlay))
                built.append(tuple(entries))
            plan = tuple(built)
            self._usage_plan_cache = plan
        return plan

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def volume(self, tiles: Mapping[str, float], *, exact: bool = True) -> float:
        """Total data movement volume DV in bytes."""
        return sum(t.movement_bytes(tiles, exact=exact) for t in self.terms)

    def usage(self, tiles: Mapping[str, float]) -> float:
        """Peak per-block on-chip memory usage MU in bytes.

        IO tensors count their tile footprint; intermediates count their
        loop-distribution buffer (full extent below the divergence point).
        Invariants (extents, byte counts, buffer overlays) are precompiled
        into :attr:`_usage_plan`, so one call is a plain walk over it.
        """
        peak = 0.0
        for entries in self._usage_plan:
            total = 0.0
            for access, elem_bytes, overlay in entries:
                if overlay:
                    eff = dict(tiles)
                    for name, extent in overlay:
                        eff[name] = extent
                    footprint = access.footprint(eff)
                else:
                    footprint = access.footprint(tiles)
                total += footprint * elem_bytes
            peak = max(peak, total)
        return peak

    def volume_smooth_gradient(
        self, tiles: Mapping[str, float]
    ) -> Tuple[float, Dict[str, float]]:
        """Smooth DV and its partial derivatives ``dDV/dT_l``.

        This is the reference form of the analytic gradient the tile-size
        solver feeds SLSQP; :class:`repro.core.tables.MovementTables`
        evaluates the exact same operation sequence over precompiled
        arrays, so the two engines agree bit for bit.  Per term::

            dm = elem_bytes * prod_d span_d * prod_l max(L_l/T_l, 1)
            d dm/dT_j = dm * (sum_d c_dj/span_d - [j movement-active]/T_j)

        where a multiplier loop is movement-active while ``L_l/T_l > 1``
        (past that point the ``max`` clamps and the factor is constant).
        """
        volume = 0.0
        grad = {name: 0.0 for name in self.chain.loop_extents()}
        for term in self.terms:
            spans = []
            footprint = 1.0
            for dim in term.access.dims:
                span = 1.0
                for name, coeff in dim.terms:
                    span += coeff * (tiles.get(name, 1) - 1)
                spans.append(span)
                footprint *= span
            dm = footprint * term.elem_bytes
            for name, extent in term.multipliers:
                dm *= max(extent / tiles.get(name, 1), 1.0)
            volume += dm
            for dim, span in zip(term.access.dims, spans):
                for name, coeff in dim.terms:
                    grad[name] += dm * (coeff / span)
            for name, extent in term.multipliers:
                tile = tiles.get(name, 1)
                if extent / tile > 1.0:
                    grad[name] -= dm / tile
        return volume, grad

    def usage_gradient(
        self, tiles: Mapping[str, float]
    ) -> Tuple[float, Dict[str, float]]:
        """MU and the partials of the *peak* operator's footprint sum.

        MU is a max over operators; the returned gradient is the gradient
        of the first operator attaining the peak (the standard subgradient
        choice, applied identically by both model engines).  Loops pinned
        at full extent by a distribution buffer contribute zero — their
        effective tile does not vary with ``T``.
        """
        peak = 0.0
        peak_grad = {name: 0.0 for name in self.chain.loop_extents()}
        for entries in self._usage_plan:
            total = 0.0
            grad = {name: 0.0 for name in self.chain.loop_extents()}
            for access, elem_bytes, overlay in entries:
                pinned = {name for name, _ in overlay}
                if overlay:
                    eff = dict(tiles)
                    for name, extent in overlay:
                        eff[name] = extent
                else:
                    eff = tiles
                spans = []
                footprint = 1.0
                for dim in access.dims:
                    span = 1.0
                    for name, coeff in dim.terms:
                        span += coeff * (eff.get(name, 1) - 1)
                    spans.append(span)
                    footprint *= span
                footprint_bytes = footprint * elem_bytes
                total += footprint_bytes
                for dim, span in zip(access.dims, spans):
                    for name, coeff in dim.terms:
                        if name not in pinned:
                            grad[name] += footprint_bytes * (coeff / span)
            if total > peak:
                peak, peak_grad = total, grad
        return peak, peak_grad

    def buffered_full_loops(self, tensor: str) -> Tuple[str, ...]:
        """Loops an intermediate is buffered over at full extent."""
        return self._buffer_full_loops.get(tensor, ())

    @property
    def has_enlarged_buffers(self) -> bool:
        """Whether any intermediate needs more than its plain tile.

        True when the order diverges producer and consumer above a loop
        that indexes the intermediate — the loop-distribution buffer then
        spans that loop's full extent.  Such residency is only guaranteed
        on software-managed memories; hardware LRU levels reject these
        orders (see :meth:`ChimeraOptimizer.optimize`).
        """
        chain = self.chain
        for tensor, full_loops in self._buffer_full_loops.items():
            if not full_loops:
                continue
            producer = chain.producers_of(tensor)[0]
            access = producer.access_of(tensor)
            if any(access.uses(name) for name in full_loops):
                return True
        return False

    def per_tensor(
        self, tiles: Mapping[str, float], *, exact: bool = True
    ) -> Dict[str, float]:
        """DV broken down by tensor (bytes); intermediates report 0."""
        breakdown: Dict[str, float] = {t: 0.0 for t in self.chain.tensors}
        for term in self.terms:
            breakdown[term.tensor] += term.movement_bytes(tiles, exact=exact)
        return breakdown

    @property
    def signature(self) -> Tuple:
        """Hashable key identifying the (DV, MU) functions this perm induces.

        Permutations with equal signatures have identical DV *and* identical
        intermediate-buffer structure for every tile assignment, so the
        optimizer solves each signature once.  Cached after the first
        computation — the solve memo and the movement-tables memo both key
        on it, once per candidate each.
        """
        if self._signature is None:
            buffers = tuple(sorted(
                (tensor, frozenset(loops))
                for tensor, loops in self._buffer_full_loops.items()
            ))
            self._signature = (
                tuple(sorted(t.signature for t in self.terms)),
                buffers,
            )
        return self._signature

    def signature_digest(self) -> str:
        """Stable hex digest of :attr:`signature` (solve-memo key part).

        Frozensets have no deterministic iteration order, so the digest
        hashes a fully sorted rendering of the signature rather than its
        ``repr``.
        """
        if self._signature_digest is None:
            term_sigs, buffers = self.signature
            canonical = (
                tuple(
                    (op, tensor, tuple(sorted(loops)))
                    for op, tensor, loops in term_sigs
                ),
                tuple(
                    (tensor, tuple(sorted(loops))) for tensor, loops in buffers
                ),
                self.reuse_intermediates,
            )
            self._signature_digest = hashlib.sha256(
                repr(canonical).encode()
            ).hexdigest()
        return self._signature_digest

    def __getstate__(self) -> Dict:
        """Drop per-instance derived caches when pickling.

        Process-pool workers rebuild (or memo-hit) their own compiled
        tables and usage plans; the arrays would only bloat the payload
        crossing the pool boundary.
        """
        state = dict(self.__dict__)
        state.pop("_tables", None)
        state["_usage_plan_cache"] = None
        return state

    def __repr__(self) -> str:
        return f"MovementModel({self.chain.name}, order={'/'.join(self.perm)})"


def executed_flops(
    chain: OperatorChain,
    perm: Sequence[str],
    tiles: Mapping[str, int],
) -> float:
    """Floating point operations actually executed under a block schedule.

    Differs from ``chain.total_flops()`` when fusion introduces
    recomputation: a 3x3 consumer convolution makes overlapping producer
    output regions, so halo elements are recomputed once per consumer block.

    Per operator: ``flops_per_inner_iteration x write_footprint(S) x
    reduction_tile_iterations x blocks``, where ``blocks`` multiplies
    ``ceil(L/S)`` over the operator's own loops present in the order (the
    operator's body is hoisted out of loops it does not use).
    """
    _check_perm(chain, perm)
    extents = chain.loop_extents()
    perm_set = set(perm)
    total = 0.0
    for op in chain.ops:
        out = op.output
        out_elements = chain.tensors[out.tensor].elements
        reduction_extent = 1
        for name in op.reduction_loop_names:
            reduction_extent *= extents[name]
        flops_per_iter = op.flops / (out_elements * reduction_extent)

        per_block = out.footprint(tiles)
        for name in op.reduction_loop_names:
            per_block *= tiles.get(name, 1) if name in perm_set else extents[name]

        blocks = 1.0
        for name in op.loop_names:
            if name in perm_set:
                blocks *= math.ceil(extents[name] / tiles.get(name, 1))
        total += flops_per_iter * per_block * blocks
    return total


def _check_perm(chain: OperatorChain, perm: Sequence[str]) -> None:
    """Validate a block order.

    Loops with extent 1 may be omitted — they never cause data replacement
    (their single iteration cannot evict anything), so the ordering layer
    drops them.  Every other independent loop must appear exactly once.
    """
    got = list(perm)
    if len(got) != len(set(got)):
        raise ValueError(f"permutation {got} repeats a loop")
    independent = set(chain.independent_loops())
    unknown = set(got) - independent
    if unknown:
        raise ValueError(
            f"permutation names unknown loops {sorted(unknown)}; "
            f"independent loops are {sorted(independent)}"
        )
    extents = chain.loop_extents()
    required = {n for n in independent if extents[n] > 1}
    missing = required - set(got)
    if missing:
        raise ValueError(
            f"permutation {got} misses non-degenerate loops {sorted(missing)}"
        )
