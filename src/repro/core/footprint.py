"""Tile footprints (the ``getFootprint`` of Algorithm 1).

A *data tile footprint* (DF) is the number of elements (or bytes) of a
tensor that one computation block touches, given the decomposition
parameters ``S`` (tile size per chain loop).  For an affine access it is the
product over tensor dimensions of ``sum_i coeff_i * (S_i - 1) + 1``, which
:class:`repro.ir.access.AffineExpr` computes; this module adds byte scaling
and per-operator aggregation.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.access import TensorAccess
from ..ir.chain import OperatorChain
from ..ir.operator import OperatorSpec


def footprint_elements(
    access: TensorAccess, tiles: Mapping[str, float]
) -> float:
    """Elements of ``access.tensor`` touched by one block."""
    return access.footprint(tiles)


def footprint_bytes(
    chain: OperatorChain, access: TensorAccess, tiles: Mapping[str, float]
) -> float:
    """Bytes of ``access.tensor`` touched by one block."""
    dtype = chain.tensors[access.tensor].dtype
    return access.footprint(tiles) * dtype.nbytes


def op_footprint_bytes(
    chain: OperatorChain, op: OperatorSpec, tiles: Mapping[str, float]
) -> float:
    """Total on-chip bytes one block of ``op`` needs (``total_DF``).

    This is the per-operator memory usage of Algorithm 1: every tensor the
    operator touches — inputs, outputs and intermediates — must be resident
    while the block runs.
    """
    return sum(footprint_bytes(chain, access, tiles) for access in op.all_accesses())
