"""Block execution order enumeration (Section IV-B).

The raw design space for a chain with ``I`` independent loops is ``I!``
permutations.  Three exact reductions keep enumeration tractable even for
ten-loop convolution chains:

1. **Degenerate loops** (extent 1) never cause data replacement and are
   dropped from the ordering entirely.
2. **Interchangeable loops** — loops with identical extent and identical
   access profile (same operator membership, same touched-IO-tensor
   pattern) induce isomorphic optimization problems under exchange, so only
   one relative order is enumerated (multiset permutations).
3. **Signature deduplication** — a permutation only influences DV through
   the multiplier sets it induces (see :class:`MovementModel.signature`);
   permutations with equal signatures are solved once.

An optional ``max_orders`` cap bounds worst cases; when it triggers the
enumeration is a deterministic stratified sample and the caller is told via
:class:`OrderSpace.truncated`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..ir.chain import OperatorChain
from .movement import MovementModel


def chain_reduction_loops(chain: OperatorChain) -> Tuple[str, ...]:
    """Loops that are a reduction in at least one operator."""
    names = []
    for op in chain.ops:
        for loop_name in op.reduction_loop_names:
            if loop_name not in names:
                names.append(loop_name)
    return tuple(names)


def producer_private_reductions(chain: OperatorChain) -> Tuple[str, ...]:
    """Private reduction loops of intermediate-producing operators.

    These loops iterate only at the innermost tiling level: splitting them
    at an outer level makes the partially accumulated intermediate stream
    through every inner boundary once per outer trip — traffic the
    per-level Algorithm 1 cannot see.  Real fused kernels (CUTLASS B2B,
    BOLT) keep the first GEMM's K whole inside the block the same way.
    """
    intermediates = set(chain.intermediate_tensors())
    names = []
    for op in chain.ops:
        if not any(w.tensor in intermediates for w in op.writes):
            continue
        for loop_name in op.reduction_loop_names:
            if chain.is_private(loop_name, op) and loop_name not in names:
                names.append(loop_name)
    return tuple(names)


def ordering_loops(chain: OperatorChain) -> Tuple[str, ...]:
    """Independent loops that participate in ordering (extent > 1)."""
    extents = chain.loop_extents()
    return tuple(n for n in chain.independent_loops() if extents[n] > 1)


def _access_profile(chain: OperatorChain, loop_name: str) -> Tuple:
    """Hashable description of how a loop interacts with the chain.

    Two loops with equal profiles *and equal extents* are interchangeable in
    any block order (swapping them permutes tile variables of identical
    bounds in both DV and MU).
    """
    io_set = set(chain.io_tensors())
    profile = []
    for op in chain.ops:
        uses = tuple(
            access.uses(loop_name)
            for access in op.all_accesses()
            if access.tensor in io_set
        )
        profile.append((op.has_loop(loop_name), uses))
    return tuple(profile)


def loop_classes(chain: OperatorChain) -> List[List[str]]:
    """Partition ordering loops into interchangeability classes."""
    extents = chain.loop_extents()
    groups: Dict[Tuple, List[str]] = {}
    for name in ordering_loops(chain):
        key = (extents[name], _access_profile(chain, name))
        groups.setdefault(key, []).append(name)
    return list(groups.values())


def _multiset_permutations(classes: Sequence[Sequence[str]]) -> Iterator[Tuple[str, ...]]:
    """All orders where each class's members keep their given relative order."""
    labels: List[int] = []
    for index, members in enumerate(classes):
        labels.extend([index] * len(members))
    total = len(labels)
    counts = [len(members) for members in classes]

    def recurse(prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == total:
            yield tuple(prefix)
            return
        for index in range(len(classes)):
            if counts[index] > 0:
                counts[index] -= 1
                prefix.append(index)
                yield from recurse(prefix)
                prefix.pop()
                counts[index] += 1

    for label_seq in recurse([]):
        cursors = [0] * len(classes)
        order: List[str] = []
        for label in label_seq:
            order.append(classes[label][cursors[label]])
            cursors[label] += 1
        yield tuple(order)


def enumerate_orders(
    chain: OperatorChain,
    max_orders: Optional[int] = None,
    prefix: frozenset = frozenset(),
) -> Iterator[Tuple[str, ...]]:
    """Yield canonical block execution orders (outermost loop first).

    Args:
        chain: the chain to order.
        max_orders: optional hard cap; a deterministic stride-sample is used
            beyond it so the whole space stays represented.
        prefix: loop names that must occupy the outermost positions (in any
            relative order) — the hierarchy-consistency constraint for
            inner memory levels (loops split by outer levels iterate above
            everything at this level).
    """
    classes = loop_classes(chain)
    if prefix:
        head_classes, tail_classes = _split_classes(classes, prefix)

        def generate() -> Iterator[Tuple[str, ...]]:
            for head_order in _multiset_permutations(head_classes):
                for tail_order in _multiset_permutations(tail_classes):
                    yield head_order + tail_order

        source = generate()
    else:
        source = _multiset_permutations(classes)
    total = constrained_count(chain, prefix)

    if max_orders is None or total <= max_orders:
        yield from source
        return
    stride = total / max_orders
    target = 0.0
    emitted = 0
    for index, order in enumerate(source):
        if index >= target and emitted < max_orders:
            yield order
            emitted += 1
            target += stride


def _split_classes(
    classes: Sequence[Sequence[str]], prefix: frozenset
) -> Tuple[List[List[str]], List[List[str]]]:
    """Partition interchangeability classes into prefix and tail groups."""
    head_classes: List[List[str]] = []
    tail_classes: List[List[str]] = []
    for members in classes:
        head = [m for m in members if m in prefix]
        tail = [m for m in members if m not in prefix]
        if head:
            head_classes.append(head)
        if tail:
            tail_classes.append(tail)
    return head_classes, tail_classes


def constrained_count(chain: OperatorChain, prefix: frozenset = frozenset()) -> int:
    """Size of the canonical order space under a ``prefix`` constraint.

    With a non-empty prefix the space is the product of the head and tail
    multiset-permutation counts — comparing an enumeration against the
    *unconstrained* :func:`count_orders` would misreport a complete scan as
    truncated.
    """
    if not prefix:
        return count_orders(chain)
    head_classes, tail_classes = _split_classes(loop_classes(chain), prefix)
    return _count_multiset(head_classes) * _count_multiset(tail_classes)


def _count_multiset(classes: Sequence[Sequence[str]]) -> int:
    total = 1
    produced = 0
    for members in classes:
        for _ in members:
            produced += 1
            total = total * produced
        factorial = 1
        for i in range(2, len(members) + 1):
            factorial *= i
        total //= factorial
    return total


def count_orders(chain: OperatorChain) -> int:
    """Size of the canonical order space (multiset permutation count)."""
    return _count_multiset(loop_classes(chain))


@dataclasses.dataclass
class OrderSpace:
    """Deduplicated candidate orders for one chain.

    Attributes:
        models: one representative :class:`MovementModel` per distinct DV
            signature (the lexicographically smallest enumerated order, so
            the representative does not depend on enumeration sequence).
        enumerated: how many canonical permutations were scanned.
        total: size of the canonical space *under the enumeration's prefix
            constraint* (see :func:`constrained_count`).
        truncated: True when ``max_orders`` clipped the scan.
    """

    models: List[MovementModel]
    enumerated: int
    total: int

    @property
    def truncated(self) -> bool:
        return self.enumerated < self.total


def candidate_models(
    chain: OperatorChain,
    *,
    max_orders: Optional[int] = 200_000,
    prefix: frozenset = frozenset(),
    reuse_intermediates: bool = True,
) -> OrderSpace:
    """Build one movement model per distinct DV signature.

    This is the enumeration driver the optimizer uses: scanning is cheap
    (no solving), and the expensive tile solve afterwards runs once per
    unique signature rather than once per permutation.  ``prefix``
    constrains the outermost positions (see :func:`enumerate_orders`);
    ``reuse_intermediates=False`` charges intermediate tensors like IO
    (used for inner memory levels, where inter-operator data does move).
    """
    seen: Dict[Tuple, MovementModel] = {}
    enumerated = 0
    for order in enumerate_orders(chain, max_orders=max_orders, prefix=prefix):
        enumerated += 1
        model = MovementModel(
            chain, order, reuse_intermediates=reuse_intermediates
        )
        # Canonical representative: the lexicographically smallest order of
        # each signature class.  First-enumerated would silently change
        # under ``max_orders`` stride sampling, and with it every DV tie
        # resolved downstream.
        known = seen.get(model.signature)
        if known is None or model.perm < known.perm:
            seen[model.signature] = model
    return OrderSpace(
        models=list(seen.values()),
        enumerated=enumerated,
        total=constrained_count(chain, prefix),
    )
