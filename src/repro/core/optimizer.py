"""The Chimera inter-block optimizer.

Pipeline per chain (Figure 3 of the paper):

1. enumerate candidate block execution orders (deduplicated by DV
   signature, :mod:`repro.core.reordering`);
2. rank candidates cheaply at a common probe tiling, then run the full
   constrained tile-size solve (:mod:`repro.core.solver`) on the best
   ``top_candidates`` orders against the outermost on-chip level;
3. solve the remaining memory levels under the winning order
   (:mod:`repro.core.multilevel`) and assemble a :class:`FusionPlan`.

Intra-block optimization (micro kernel selection) attaches afterwards via
``FusionPlan.with_micro_kernel`` — see :mod:`repro.runtime.pipeline`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import time
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..ir.access import TensorAccess
from .footprint import footprint_bytes
from .movement import MovementModel, executed_flops
from .multilevel import solve_hierarchy
from .plan import FusionPlan, LevelSchedule
from .reordering import candidate_models, producer_private_reductions
from .search import (
    SearchPolicy,
    SearchStats,
    chain_digest,
    record_search_stats,
    search_tiles,
)
from .solver import ConstraintFn
from .tables import ENGINE_TABLES, movement_tables, resolve_model_engine
from .warmstart import PlanHint


@dataclasses.dataclass(frozen=True)
class ChimeraConfig:
    """Tunables of the inter-block optimizer.

    Attributes:
        max_orders: cap on scanned canonical permutations.
        alpha: default minimum tile size (the paper's lower bound for free
            variables); individual loops can override via ``min_tiles``.
        min_tiles: per-loop minimum tile sizes (micro-kernel requirements).
        quanta: per-loop tile quanta (e.g. 16 for tensor-core dimensions).
        top_candidates: orders that get the full constrained solve after
            the cheap probe ranking.
        starts: SLSQP multi-start count per solve.
        capacity_utilization: fraction of each level's per-block capacity
            the MU constraint may use.  Hardware LRU caches need headroom —
            a working set sized exactly to capacity thrashes — so, like
            production tensor compilers targeting a fraction of shared
            memory, the optimizer plans against ``utilization * capacity``.
    """

    max_orders: Optional[int] = 200_000
    alpha: int = 8
    min_tiles: Optional[Mapping[str, int]] = None
    quanta: Optional[Mapping[str, int]] = None
    top_candidates: int = 64
    starts: int = 4
    capacity_utilization: float = 0.75


@dataclasses.dataclass(frozen=True)
class UnifiedBufferConstraint:
    """Unified Buffer footprint constraint as a picklable callable.

    On the Ascend NPU, intermediate tiles between fused operators stage
    through the Unified Buffer, so their combined footprint must fit it.
    A frozen dataclass (rather than a closure) so constrained solves can
    cross a process-pool boundary and carry a stable memo-key token.
    """

    chain: OperatorChain
    accesses: Tuple[TensorAccess, ...]
    capacity: float

    def __call__(self, tiles: Mapping[str, float]) -> float:
        usage = sum(
            footprint_bytes(self.chain, access, tiles)
            for access in self.accesses
        )
        return usage - self.capacity

    def gradient(self, tiles: Mapping[str, float]) -> Dict[str, float]:
        """Partials of ``__call__`` — the analytic SLSQP jacobian.

        Exposing this method opts the constraint into analytic jacobians
        in *both* model engines (the decision keys on ``hasattr``, so
        scalar and tables runs take the same solver trajectory).  The
        footprint is a product of affine spans, hence per loop::

            d usage / dT_l = footprint_bytes * sum_d coeff_dl / span_d

        computed in the exact operation order
        :class:`repro.core.tables.MovementTables` replays, so the engines
        agree bit for bit.  Loops absent from the accesses are omitted
        (callers default them to zero).
        """
        grad: Dict[str, float] = {}
        for access in self.accesses:
            spans = []
            footprint = 1.0
            for dim in access.dims:
                span = 1.0
                for name, coeff in dim.terms:
                    span += coeff * (tiles.get(name, 1) - 1)
                spans.append(span)
                footprint *= span
            fp_bytes = (
                footprint * self.chain.tensors[access.tensor].dtype.nbytes
            )
            for dim, span in zip(access.dims, spans):
                for name, coeff in dim.terms:
                    grad[name] = grad.get(name, 0.0) + fp_bytes * (
                        coeff / span
                    )
        return grad

    def token(self) -> Hashable:
        """Memo-key identity: the constrained tensors and the capacity.

        The chain content itself is already part of every memo key, so the
        token only needs to pin what *this constraint* adds.
        """
        return (
            "unified_buffer",
            self.capacity,
            tuple(access.tensor for access in self.accesses),
        )


@dataclasses.dataclass(frozen=True)
class OptimizeStats:
    """Diagnostics of one optimizer run (used by the overhead benchmark).

    ``solves`` counts actual SLSQP solves; memo hits and pruned candidates
    are reported separately, so ``solves + memo_hits + pruned`` accounts
    for every candidate that reached the solve stage.
    """

    orders_scanned: int
    unique_signatures: int
    solves: int
    elapsed_seconds: float
    candidates: int = 0
    bound_evals: int = 0
    pruned: int = 0
    memo_hits: int = 0
    bound_seconds: float = 0.0
    solve_seconds: float = 0.0


class ChimeraOptimizer:
    """Analytical inter-block optimizer for one hardware target."""

    def __init__(
        self,
        hardware: HardwareSpec,
        config: Optional[ChimeraConfig] = None,
        policy: Optional[SearchPolicy] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.hardware = hardware
        self.config = config or ChimeraConfig()
        # The search policy changes how fast optimize() runs, never its
        # answer, so it lives outside ChimeraConfig (and outside plan-cache
        # keys).  None defers to the REPRO_SEARCH_* environment.
        self.policy = policy or SearchPolicy.from_env()
        # Likewise the model engine (scalar reference vs compiled tables):
        # both return bit-identical plans, so it is a speed knob only.
        # None defers to REPRO_MODEL_ENGINE at call time.
        self.engine = engine
        self.last_stats: Optional[OptimizeStats] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(
        self,
        chain: OperatorChain,
        *,
        stats: Optional[SearchStats] = None,
        hint: Optional[PlanHint] = None,
        partitions: Optional[int] = None,
    ) -> FusionPlan:
        """Pick the block order and tiles minimizing data movement.

        Args:
            stats: optional :class:`SearchStats` accumulator filled with the
                search counters of this run (also available aggregated via
                ``repro.core.search.search_stats_snapshot``).
            hint: a neighboring shape's plan (same chain structure,
                different extents).  Each level's search solves the
                neighbor's winning order first and seeds SLSQP from its
                tiles — a pure speed knob: pruning stays admissible and
                the returned plan is identical to the cold run's.
            partitions: number of concurrently resident blocks to split
                shared-level capacity across, when a chain is sharded over
                that many cores (block-to-core partitioning).  ``None``
                keeps the default one-block-per-core split bit-exactly.

        Returns:
            a fused :class:`FusionPlan` with one schedule per on-chip level.
        """
        started = time.perf_counter()
        min_tiles = self._min_tiles(chain)
        constraints = self.extra_constraints(chain)
        constraints_token = self.constraints_token(constraints)
        digest = chain_digest(chain) if self.policy.memoize else None
        search_stats = SearchStats()
        scanned = 0
        unique = 0
        total_orders = 0

        # Each memory level picks its own sub-block order (Section IV-C):
        # within one level-(d+1) block, level-d sub-blocks may traverse in
        # any order, so every level independently selects the candidate
        # minimizing its own movement volume, bounded by the parent tiles.
        on_chip = self.hardware.on_chip_levels
        extents = chain.loop_extents()
        schedules_outer_first: List[LevelSchedule] = []
        chosen_models: List[MovementModel] = []
        parent_tiles: Optional[Dict[str, int]] = None
        # One pool serves every level's search: pool startup dominates the
        # per-level fan-out cost, so the lifecycle spans the whole run.
        executor: Optional[concurrent.futures.Executor] = None
        if self.policy.workers > 1:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.policy.workers
            )
        try:
            for offset, level in enumerate(reversed(on_chip)):
                level_index = len(on_chip) - 1 - offset
                capacity = (
                    float(self.hardware.per_block_capacity(level, partitions))
                    * self.config.capacity_utilization
                )
                level_min_tiles = dict(min_tiles)
                level_hard_min: Dict[str, int] = {}
                if level_index > 0:
                    # A producer's private reduction iterates only at the
                    # innermost level: splitting it at an outer level makes
                    # the partially accumulated intermediate stream through
                    # every inner boundary once per outer trip (CUTLASS B2B
                    # / BOLT keep the first GEMM's K whole inside the block
                    # for the same reason).  Shared reductions (the second
                    # operator's) may split anywhere — their RMW traffic is
                    # charged by the model's multipliers.  These pins are
                    # HARD minimums: the solver may relax micro-kernel
                    # alignment under capacity pressure but never these.
                    for loop_name in producer_private_reductions(chain):
                        level_hard_min[loop_name] = extents[loop_name]
                # Hierarchy consistency: a loop an outer level split
                # iterates *above* every loop of this level, so this
                # level's order must place all outer-split loops in its
                # outermost positions — otherwise this level's Algorithm 1
                # would assume reuse across iterations that actually happen
                # at a coarser granularity.
                if parent_tiles is None:
                    prefix: frozenset = frozenset()
                else:
                    prefix = frozenset(
                        name
                        for name, tile in parent_tiles.items()
                        if tile < extents[name]
                    )
                # Intermediates are traffic-free only at the outermost
                # on-chip boundary (that is the fusion benefit: they never
                # reach DRAM).  At inner boundaries the inter-operator data
                # streams between levels like any other tensor — the paper
                # observes exactly this as the fused kernel's L1<->L2
                # traffic increase — so the inner-level models charge
                # intermediates as IO.
                outermost = level_index == len(on_chip) - 1
                space = candidate_models(
                    chain,
                    max_orders=self.config.max_orders,
                    prefix=prefix,
                    reuse_intermediates=outermost,
                )
                scanned += space.enumerated
                search_stats.orders_enumerated += space.enumerated
                unique = max(unique, len(space.models))
                total_orders = max(total_orders, space.total)
                # Hardware LRU levels cannot pin enlarged intermediate
                # buffers (they thrash); only software-managed scratchpads
                # may hold them (persistent-kernel style).
                candidates = [
                    model
                    for model in space.models
                    if level.software_managed or not model.has_enlarged_buffers
                ] or list(space.models)
                ranked = self._probe_rank(
                    candidates, level_min_tiles, capacity, parent_tiles
                )
                top = ranked[: max(1, self.config.top_candidates)]
                level_hint = (
                    hint.level(level.name) if hint is not None else None
                )
                model, solution = search_tiles(
                    top,
                    capacity,
                    min_tiles=level_min_tiles,
                    quanta=self.config.quanta,
                    constraints=constraints,
                    constraints_token=constraints_token,
                    max_parent=parent_tiles,
                    starts=self.config.starts,
                    hard_min_tiles=level_hard_min,
                    policy=self.policy,
                    stats=search_stats,
                    digest=digest,
                    executor=executor,
                    engine=self.engine,
                    x0_hint=(
                        None
                        if level_hint is None
                        else dict(level_hint.tiles)
                    ),
                    incumbent_hint=(
                        None if level_hint is None else level_hint.order
                    ),
                )
                bandwidth = self.hardware.levels[level_index + 1].bandwidth
                schedules_outer_first.append(
                    LevelSchedule(
                        level=level.name,
                        order=model.perm,
                        tiles=solution.tiles,
                        predicted_dv=solution.dv,
                        predicted_mu=solution.mu,
                        capacity=capacity,
                        bandwidth=bandwidth,
                    )
                )
                chosen_models.append(model)
                parent_tiles = {
                    name: solution.tiles[name] for name in model.perm
                }
        finally:
            if executor is not None:
                executor.shutdown()

        schedules = tuple(reversed(schedules_outer_first))
        elapsed = time.perf_counter() - started
        self.last_stats = OptimizeStats(
            orders_scanned=scanned,
            unique_signatures=unique,
            solves=search_stats.solves,
            elapsed_seconds=elapsed,
            candidates=search_stats.candidates,
            bound_evals=search_stats.bound_evals,
            pruned=search_stats.pruned,
            memo_hits=search_stats.memo_hits,
            bound_seconds=search_stats.bound_seconds,
            solve_seconds=search_stats.solve_seconds,
        )
        if stats is not None:
            stats.merge(search_stats)
        # search_tiles folded its own counters into the global aggregate;
        # enumeration happens out here, so account for it separately.
        record_search_stats(SearchStats(orders_enumerated=scanned))

        notes = [
            f"orders: scanned {scanned} (full space {total_orders}), "
            f"up to {unique} unique signatures per level"
        ]
        inner_model = chosen_models[-1]
        flops = executed_flops(chain, inner_model.perm, schedules[0].tiles)
        return FusionPlan(
            chain=chain,
            hardware=self.hardware,
            levels=schedules,
            fused=True,
            executed_flops=flops,
            notes=tuple(notes),
        )

    def plan_for_order(
        self,
        chain: OperatorChain,
        order: Sequence[str],
        *,
        hint: Optional[PlanHint] = None,
    ) -> FusionPlan:
        """Solve tiles for one explicit block order (ablations, Figure 8)."""
        model = MovementModel(chain, order)
        constraints = self.extra_constraints(chain)
        schedules = solve_hierarchy(
            model,
            self.hardware,
            min_tiles=self._min_tiles(chain),
            quanta=self.config.quanta,
            constraints=constraints,
            constraints_token=self.constraints_token(constraints),
            starts=self.config.starts,
            capacity_utilization=self.config.capacity_utilization,
            policy=self.policy,
            engine=self.engine,
            hint=hint,
        )
        flops = executed_flops(chain, model.perm, schedules[0].tiles)
        return FusionPlan(
            chain=chain,
            hardware=self.hardware,
            levels=tuple(schedules),
            fused=True,
            executed_flops=flops,
            notes=(f"fixed order {'/'.join(order)}",),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _min_tiles(self, chain: OperatorChain) -> Dict[str, int]:
        extents = chain.loop_extents()
        minimums = {
            name: min(self.config.alpha, extent)
            for name, extent in extents.items()
        }
        for name, value in (self.config.min_tiles or {}).items():
            if name in extents:
                minimums[name] = min(value, extents[name])
        return minimums

    def _probe_rank(
        self,
        models: Sequence[MovementModel],
        min_tiles: Mapping[str, int],
        capacity: float,
        parent_tiles: Optional[Mapping[str, int]],
    ) -> List[MovementModel]:
        """Rank candidate orders by a cheap probe at one memory level.

        The probe assigns every loop the same balanced tile (the square root
        of the per-loop share of capacity, clipped to bounds), which ranks
        orders by their multiplier structure without running the solver
        ``O(signatures)`` times.  Orders whose loop-distribution buffers
        alone exceed capacity at the probe point sort last (they would force
        tiny tiles or be infeasible).
        """
        if len(models) <= 1:
            return list(models)
        chain = models[0].chain
        extents = chain.loop_extents()
        elem_bytes = max(
            spec.dtype.nbytes for spec in chain.tensors.values()
        )
        # Budget capacity across the largest operator's tensor tiles,
        # assuming square-ish 2D tiles: side ~ sqrt(capacity / (3 * bytes)).
        side = max(2.0, math.sqrt(capacity / (3.0 * elem_bytes)))
        parent = parent_tiles or {}
        probe = {}
        for name in extents:
            bound = min(extents[name], parent.get(name, extents[name]))
            probe[name] = float(max(min(min_tiles.get(name, 1), bound),
                                    min(bound, side)))
        # Ties break on the canonical order tuple, not the enumeration
        # index: the index shifts under ``max_orders`` stride sampling.
        # Both engines score every candidate with the same floats, so the
        # ranking is engine-independent.
        if resolve_model_engine(self.engine) == ENGINE_TABLES:
            row = movement_tables(models[0]).row_of(probe)
            scored = [
                (
                    0 if tables.usage_row(row) <= capacity else 1,
                    tables.volume_row(row, exact=False),
                    model.perm,
                    model,
                )
                for model in models
                for tables in (movement_tables(model),)
            ]
        else:
            scored = [
                (
                    0 if model.usage(probe) <= capacity else 1,
                    model.volume(probe, exact=False),
                    model.perm,
                    model,
                )
                for model in models
            ]
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        return [model for _, _, _, model in scored]

    def extra_constraints(self, chain: OperatorChain) -> Tuple[ConstraintFn, ...]:
        """Hardware-specific feasibility constraints.

        On the Ascend NPU, intermediate tiles between fused operators stage
        through the Unified Buffer, so their combined footprint must fit it
        (the bottleneck the paper reports for large GEMMs on NPU).
        """
        if self.hardware.unified_buffer is None:
            return ()
        intermediates = chain.intermediate_tensors()
        if not intermediates:
            return ()
        producer_writes = []
        for tensor in intermediates:
            producer = chain.producers_of(tensor)[0]
            producer_writes.append(producer.access_of(tensor))
        return (
            UnifiedBufferConstraint(
                chain=chain,
                accesses=tuple(producer_writes),
                capacity=float(self.hardware.unified_buffer),
            ),
        )

    @staticmethod
    def constraints_token(
        constraints: Sequence[ConstraintFn],
    ) -> Optional[Hashable]:
        """Memo-key identity of a constraint tuple; ``None`` (which disables
        memoization for constrained solves) when any constraint lacks one."""
        tokens = []
        for fn in constraints:
            token = getattr(fn, "token", None)
            if token is None:
                return None
            tokens.append(token())
        return tuple(tokens)
