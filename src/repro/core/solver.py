"""Constrained tile-size optimization (Section IV-B).

For a fixed block execution order the paper minimizes the smooth (real
valued) data movement volume ``DV(S)`` subject to the memory usage bound
``MU(S) <= MemoryCapacity``, solves in the reals (Lagrange multipliers),
then floor-rounds to integers and picks the best feasible integer candidate.

This module implements the same recipe for *arbitrary* chains:

* the continuous problem is solved numerically (SLSQP in log-tile space,
  multiple deterministic starts) — this is the general-purpose stand-in for
  the per-shape Lagrange derivation.  The objective and every constraint
  feed SLSQP *analytic* log-space gradients (Algorithm 1 is a product of
  affine spans, so the partials are closed-form) instead of finite
  differences, which removes the dominant cost of a cold compile;
* DV/MU evaluation goes through :mod:`repro.core.tables` — either the
  scalar reference engine or the compiled tables engine
  (``REPRO_MODEL_ENGINE``).  Both engines execute the same floating-point
  operation sequence, so the solver trajectory — and the returned plan —
  is bit-identical between them;
* the closed-form GEMM-chain solution the paper derives analytically is
  provided separately (:func:`gemm_chain_closed_form`) and used by tests to
  validate the numeric path;
* integer refinement evaluates the floor/ceil lattice around the continuous
  optimum with the *exact* (ceil-based) DV and the exact MU, honouring
  per-loop minimum tiles and quanta imposed by the micro kernels.  Under
  the tables engine the whole lattice is scored in one batched
  ``volume_batch``/``usage_batch`` call;
* the refined point is then **canonicalized** by a deterministic cyclic
  per-coordinate scan to the minimum of ``(DV, MU, tile)`` over each
  loop's aligned tile range (:func:`_canonical_descent`).  The exact
  ceil-based DV is piecewise constant, so the continuous optimum sits on
  a DV-flat ridge whose floor/ceil lattice depends on *which* ridge point
  SLSQP converged to; the scan collapses every ridge point to the same
  integer solution.  That makes the returned solution independent of the
  SLSQP starting point — the property that lets warm-started (single
  start, ``x0_hint``) and cold (multi-start sweep) solves return
  byte-identical plans — and, as a bonus, canonical points never waste
  memory: among equal-DV tiles the scan keeps the smallest MU.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .movement import MovementModel
from .tables import TablesEvaluator, evaluator_for, resolve_model_engine

ConstraintFn = Callable[[Mapping[str, float]], float]
"""Extra feasibility predicate: returns (usage - capacity); <= 0 is feasible."""

#: Diagnostic escape hatch: set False to emulate the pre-tables solver —
#: SLSQP falls back to finite differences and the constraints are fed in
#: raw byte units (the seed's ill-conditioned scaling).  Benchmarks use it
#: to measure the baseline this PR replaces; production paths must leave
#: it True — both engines share the analytic-gradient trajectory, and that
#: sharing is what makes their plans byte-identical.
_ANALYTIC_JAC = True

#: Largest 2-D grid the canonical descent's pairwise pass will score.
#: Depends only on bounds and quanta — never on where SLSQP landed — so
#: skipping an oversized pair is itself start-invariant.  4096 rows is one
#: cheap batched evaluation under the tables engine and keeps the scalar
#: reference loop bounded.
_PAIR_SCAN_CAP = 4096


@dataclasses.dataclass(frozen=True)
class TileSolution:
    """Result of one tile-size solve.

    Attributes:
        tiles: integer tile per ordering loop (degenerate loops included
            with tile 1).
        dv: exact data movement volume at ``tiles``, bytes.
        mu: exact memory usage at ``tiles``, bytes.
        feasible: whether ``mu`` (and all extra constraints) fit capacity.
        continuous: the pre-rounding real-valued solution, for diagnostics.
    """

    tiles: Dict[str, int]
    dv: float
    mu: float
    feasible: bool
    continuous: Dict[str, float]


def _feasible(
    model: MovementModel,
    tiles: Mapping[str, float],
    capacity: float,
    constraints: Sequence[ConstraintFn],
) -> bool:
    if model.usage(tiles) > capacity:
        return False
    return all(fn(tiles) <= 0 for fn in constraints)


def _full_tiles(model: MovementModel, tiles: Mapping[str, int]) -> Dict[str, int]:
    """Extend solved tiles with tile=1 for degenerate (omitted) loops."""
    extents = model.chain.loop_extents()
    full = {name: 1 for name in extents}
    full.update({name: int(t) for name, t in tiles.items()})
    return full


def solve_tiles(
    model: MovementModel,
    capacity: float,
    *,
    min_tiles: Optional[Mapping[str, int]] = None,
    quanta: Optional[Mapping[str, int]] = None,
    constraints: Sequence[ConstraintFn] = (),
    max_parent: Optional[Mapping[str, int]] = None,
    starts: int = 4,
    hard_min_tiles: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
    x0_hint: Optional[Mapping[str, float]] = None,
) -> TileSolution:
    """Minimize DV(S) s.t. MU(S) <= capacity for one movement model.

    Args:
        model: precompiled Algorithm-1 model (chain + order).
        capacity: per-block memory capacity in bytes.
        min_tiles: *soft* lower bound per loop (micro-kernel minimums; the
            paper's ``alpha`` for free variables).  Automatically relaxed
            when even the minimum point exceeds capacity — an unaligned
            feasible schedule beats an infeasible aligned one.  A minimum
            above a loop's extent means "take the whole loop": it is
            clamped to the extent, never treated as infeasible.
        quanta: tile sizes are rounded to multiples of these (e.g. 16 for
            tensor-core loops); bounds are respected first.
        constraints: extra feasibility functions (e.g. the NPU Unified
            Buffer bound on the intermediate footprint).  A constraint
            exposing a ``gradient(tiles)`` method gets an analytic SLSQP
            jacobian; others fall back to finite differences.
        max_parent: per-loop upper bounds below the loop extent — used for
            inner memory levels, whose tiles nest inside the parent level's.
        starts: number of deterministic multi-start points for SLSQP.
        hard_min_tiles: lower bounds that are never relaxed (the outer-level
            pins on producer-private reductions).
        engine: model evaluation engine (``scalar``/``tables``); ``None``
            defers to ``REPRO_MODEL_ENGINE``.  Both engines return
            bit-identical solutions.
        x0_hint: warm-start tile vector (e.g. a neighboring shape's solved
            tiles).  When given, the continuous SLSQP stage is skipped
            entirely: the hint — clipped into bounds and projected
            feasible — feeds the integer refinement directly, whose
            :func:`_canonical_descent` performs *global* per-coordinate
            scans (plus pairwise merges) over the aligned grids and so
            reaches the canonical ridge corner from any near-optimal
            entry point, exactly where the multi-start sweep's refinement
            lands.  If the hinted refinement comes back infeasible, the
            full sweep runs as the fallback.  A hint therefore only
            changes how fast the solve runs, never the returned solution
            (``continuous`` is diagnostics-only and records the projected
            hint), and callers must keep it out of memo keys.

    Returns:
        the best feasible integer solution found; ``feasible=False`` with
        all-ones tiles if even the smallest legal tiles exceed capacity.
    """
    engine = resolve_model_engine(engine)
    chain = model.chain
    extents = chain.loop_extents()
    names = [n for n in model.perm]
    min_tiles = dict(min_tiles or {})
    hard_min_tiles = dict(hard_min_tiles or {})
    quanta = dict(quanta or {})
    # A warm-started solve converges in a handful of SLSQP iterations, too
    # few to amortize per-model row-kernel codegen — start interpreted and
    # generate the kernels only if the hint fails and the multi-start
    # sweep (thousands of evaluations) has to run.  Both paths are
    # bit-identical (tables module contract), so this is latency-only.
    evaluator = evaluator_for(
        model, names, constraints, engine, fast_kernels=not x0_hint
    )

    upper_src = max_parent or {}
    upper = np.array(
        [max(1, min(extents[n], upper_src.get(n, extents[n]))) for n in names],
        dtype=float,
    )

    def lower_for(softs: Mapping[str, int]) -> np.ndarray:
        values = []
        for n in names:
            low = max(1, softs.get(n, 1), hard_min_tiles.get(n, 1))
            values.append(min(low, extents[n]))
        # Parent bounds win over micro-kernel minimums: a child tile can
        # never exceed its parent tile.
        return np.minimum(np.array(values, dtype=float), upper)

    if not names:
        tiles = _full_tiles(model, {})
        dv = model.volume(tiles, exact=True)
        mu = model.usage(tiles)
        return TileSolution(
            tiles, dv, mu, _feasible(model, tiles, capacity, constraints), {}
        )

    def fits_vector(values: np.ndarray) -> bool:
        if evaluator.usage(values) > capacity:
            return False
        return all(
            evaluator.constraint(i, values) <= 0
            for i in range(len(constraints))
        )

    lower = lower_for(min_tiles)
    if min_tiles and not fits_vector(lower):
        # Soft minimums don't fit: relax them and keep only the hard pins.
        lower = lower_for({})

    size = len(names)

    # SLSQP evaluates the objective, the capacity slack, and their
    # jacobians at the same point in turn; share one exp(x) per point so
    # every closure hands the evaluator the identical values array (which
    # also lets the tables evaluator reuse its expanded row).
    point_key: List[Optional[bytes]] = [None]
    point_values: List[Optional[np.ndarray]] = [None]

    def values_at(x: np.ndarray) -> np.ndarray:
        key = x.tobytes()
        if key != point_key[0]:
            point_key[0] = key
            point_values[0] = np.exp(x)
        return point_values[0]

    def objective(x: np.ndarray) -> Tuple[float, np.ndarray]:
        # Log the objective for conditioning: DV spans many decades.  The
        # gradient is chained through tiles = exp(x); below DV = 1 the
        # clamp makes the objective flat, so the gradient is zero there.
        values = values_at(x)
        volume, grad = evaluator.volume_smooth_gradient(values)
        if volume > 1.0:
            return math.log(volume), grad * values / volume
        return 0.0, np.zeros(size)

    # Constraints are fed to SLSQP in *relative* units (fraction of the
    # capacity) so the merit function sees an O(1) violation scale next to
    # the O(1) log-volume objective.  Raw byte-valued slacks (~1e5..1e8)
    # make SLSQP's L1 penalty wildly ill-conditioned and its line search
    # backtrack for most of the iteration budget.  The seed-emulation
    # baseline keeps the raw scale (together with finite differences).
    inv_capacity = 1.0 / capacity if capacity > 0 and _ANALYTIC_JAC else 1.0

    def capacity_slack(x: np.ndarray) -> float:
        return (capacity - evaluator.usage(values_at(x))) * inv_capacity

    def capacity_slack_jac(x: np.ndarray) -> np.ndarray:
        values = values_at(x)
        _, grad = evaluator.usage_gradient(values)
        return -grad * values * inv_capacity

    cons: List[Dict] = [
        {"type": "ineq", "fun": capacity_slack, "jac": capacity_slack_jac}
    ]
    for idx in range(len(constraints)):
        entry: Dict = {
            "type": "ineq",
            "fun": lambda x, i=idx: (
                -evaluator.constraint(i, values_at(x)) * inv_capacity
            ),
        }
        if evaluator.constraint_has_gradient(idx):
            entry["jac"] = lambda x, i=idx: (
                -evaluator.constraint_gradient(i, values_at(x))
                * values_at(x)
                * inv_capacity
            )
        cons.append(entry)
    if not _ANALYTIC_JAC:  # finite-difference baseline (benchmarks only)
        cons = [
            {k: v for k, v in entry.items() if k != "jac"} for entry in cons
        ]

    log_lower, log_upper = np.log(lower), np.log(upper)
    bounds = list(zip(log_lower, log_upper))

    best_x: Optional[np.ndarray] = None
    best_val = math.inf

    def attempt(x0: np.ndarray) -> None:
        nonlocal best_x, best_val
        try:
            if _ANALYTIC_JAC:
                res = optimize.minimize(
                    objective,
                    x0,
                    jac=True,
                    method="SLSQP",
                    bounds=bounds,
                    constraints=cons,
                    options={"maxiter": 200, "ftol": 1e-9},
                )
            else:
                res = optimize.minimize(
                    lambda x: math.log(
                        max(evaluator.volume_smooth(np.exp(x)), 1.0)
                    ),
                    x0,
                    method="SLSQP",
                    bounds=bounds,
                    constraints=cons,
                    options={"maxiter": 200, "ftol": 1e-9},
                )
        except (ValueError, RuntimeError):
            return
        if res.x is None:
            return
        x = np.clip(res.x, log_lower, log_upper)
        if capacity_slack(x) < -1e-6 * capacity * inv_capacity:
            return
        val = objective(x)[0]
        if val < best_val:
            best_val, best_x = val, x

    def refine_at(x: np.ndarray) -> TileSolution:
        continuous = {n: float(v) for n, v in zip(names, np.exp(x))}
        solution = _integer_refine(
            model,
            continuous,
            capacity,
            names,
            lower,
            upper,
            quanta,
            constraints,
            evaluator=evaluator,
        )
        return dataclasses.replace(solution, continuous=continuous)

    if x0_hint:
        # Warm start: skip SLSQP altogether.  The canonical descent's
        # single-coordinate scans are *global* per-coordinate argmins over
        # the aligned grids (and its pair scans merge product-flat
        # valleys), so the projected hint — near-optimal for a neighboring
        # shape — lands in the canonical corner's basin without a
        # continuous solve.  ``continuous`` is diagnostics-only and
        # records the projected hint.  If the hinted refinement comes back
        # infeasible the full sweep below runs instead, so a degraded hint
        # can change latency but never the returned solution.
        mid = (log_lower + log_upper) / 2
        logs = mid.copy()
        for idx, name in enumerate(names):
            value = x0_hint.get(name)
            if value is not None and value > 0:
                logs[idx] = math.log(float(value))
        x0 = np.clip(logs, log_lower, log_upper)
        hinted = refine_at(_project_feasible(x0, capacity_slack, log_lower))
        if hinted.feasible:
            return hinted

    # Cold path — and the fallback when the hinted refinement fails.
    if x0_hint and isinstance(evaluator, TablesEvaluator):
        evaluator.ensure_fast_kernels()
    for start_idx in range(max(1, starts)):
        frac = start_idx / max(1, starts - 1) if starts > 1 else 0.5
        x0 = log_lower + frac * (log_upper - log_lower)
        attempt(_project_feasible(x0, capacity_slack, log_lower))

    if best_x is None:
        best_x = _project_feasible(
            (log_lower + log_upper) / 2, capacity_slack, log_lower
        )

    return refine_at(best_x)


def _project_feasible(
    x: np.ndarray,
    capacity_slack: Callable[[np.ndarray], float],
    log_lower: np.ndarray,
    shrink: float = 0.85,
    max_iter: int = 200,
) -> np.ndarray:
    """Shrink tiles geometrically toward the lower bound until MU fits."""
    for _ in range(max_iter):
        if capacity_slack(x) >= 0:
            return x
        x = log_lower + shrink * (x - log_lower)
    return log_lower.copy()


def _quantize(value: int, quantum: int, lo: int, hi: int) -> int:
    """Round down to a multiple of ``quantum`` within [lo, hi] if possible.

    Degenerate bounds are resolved toward the *extent* side: an empty range
    (``lo > hi``, e.g. a micro-kernel minimum above a small loop's extent)
    yields ``hi`` — the whole loop — rather than a candidate above the
    extent, and a quantum that cannot fit between the bounds falls back to
    the clamped unaligned value (a feasible unaligned tile beats none).
    """
    if lo > hi:
        return hi
    if quantum <= 1:
        return max(lo, min(hi, value))
    snapped = (value // quantum) * quantum
    if snapped < lo:
        snapped = ((lo + quantum - 1) // quantum) * quantum
    if snapped > hi:
        snapped = (hi // quantum) * quantum
    if snapped < lo:  # quantum does not fit between the bounds at all
        return max(lo, min(hi, value))
    return snapped


def _lattice_values(
    continuous: Mapping[str, float],
    names: Sequence[str],
    lower: np.ndarray,
    upper: np.ndarray,
    quanta: Mapping[str, int],
) -> List[List[int]]:
    """Per-loop candidate tiles: quantized floor/ceil/minimum (vectorized
    ``_quantize`` outcome, deduplicated and clamped to ``[lo, hi]``)."""
    candidate_values: List[List[int]] = []
    for idx, name in enumerate(names):
        lo, hi = int(lower[idx]), int(upper[idx])
        quantum = quanta.get(name, 1)
        raw = continuous[name]
        options = {
            _quantize(int(math.floor(raw)), quantum, lo, hi),
            _quantize(int(math.ceil(raw)), quantum, lo, hi),
            _quantize(lo, quantum, lo, hi),
        }
        if quantum > hi:
            # No aligned tile exists below the extent: the whole loop is
            # the canonical choice (remainder handling covers the short
            # tile either way), so make sure it is on the lattice.
            options.add(hi)
        # Never propose a tile outside [lo, hi]: quantized candidates must
        # not exceed the loop extent (or the parent level's tile).
        candidate_values.append(sorted({max(lo, min(hi, v)) for v in options}))
    return candidate_values


def _coordinate_candidates(lo: int, hi: int, quantum: int) -> List[int]:
    """Every aligned tile for one loop, ascending (``_quantize`` semantics:
    an empty or quantum-defeating range degrades to the whole loop)."""
    if lo > hi:
        return [hi]
    if quantum <= 1:
        return list(range(lo, hi + 1))
    first = ((lo + quantum - 1) // quantum) * quantum
    values = list(range(first, hi + 1, quantum))
    if not values:  # quantum does not fit between the bounds at all
        return [hi]
    return values


def _canonical_descent(
    model: MovementModel,
    tiles: Dict[str, int],
    capacity: float,
    names: Sequence[str],
    lower: np.ndarray,
    upper: np.ndarray,
    quanta: Mapping[str, int],
    constraints: Sequence[ConstraintFn],
    evaluator=None,
    max_passes: int = 16,
) -> Tuple[float, float, Dict[str, int]]:
    """Collapse a feasible integer point to its canonical ridge corner.

    The exact (ceil-based) DV is piecewise constant in every tile, so the
    continuous optimum sits on a DV-flat ridge: two converged SLSQP runs
    (e.g. a warm-started solve and the multi-start sweep) can land on
    different ridge points whose floor/ceil lattices disagree — same DV,
    different tiles.  This scan makes the *returned* integer solution a
    function of the ridge, not of the landing point:

    * **single-coordinate passes** cycle over the loops in order and move
      each tile to the feasible aligned value minimizing ``(DV, MU,
      tile)`` with the other tiles held fixed;
    * when those stall, **pairwise passes** jointly minimize each ordered
      loop pair over its full 2-D aligned grid — product-flat valleys
      (e.g. ``m``·``l`` trade-offs where every corner ties in DV) are not
      traversable one coordinate at a time, but every start agrees on a
      2-D grid's global ``(DV, MU, t_i, t_j)`` minimum.  Pairs whose grid
      exceeds a fixed cap are skipped — the cap depends only on bounds
      and quanta, never on the landing point, so skipping is itself
      start-invariant.

    The candidate grids depend only on the bounds and quanta, each
    accepted move strictly decreases the ``(DV, MU, tiles)`` key (so the
    scan terminates), and the scalar and tables engines share the exact
    selection rule — the tables path scores each grid in one batched
    evaluation.
    """
    current = dict(tiles)
    use_tables = isinstance(evaluator, TablesEvaluator)
    names = list(names)
    # Raw aligned grids are a pure function of bounds, quanta and extents —
    # every start sees the same ones, so cap/skip decisions made from them
    # are start-invariant by construction.  With no extra constraints the
    # grids shrink to ceil-bucket lower edges: each movement term is
    # piecewise constant in a multiplier loop's tile (the effective tile is
    # ``extent / trips``) and monotone increasing in footprint-only loops,
    # and MU is monotone, so within one ``ceil(extent / tile)`` bucket the
    # ``(DV, MU, tile)`` key is strictly minimized at the bucket's smallest
    # aligned value — dropping the rest cannot change any scan's argmin.
    # An arbitrary extra constraint could make an edge infeasible while a
    # larger in-bucket tile is feasible, so constrained solves keep the
    # full grids.
    extents = model.chain.loop_extents()

    def _raw_grid(idx: int) -> List[int]:
        candidates = _coordinate_candidates(
            int(lower[idx]), int(upper[idx]), quanta.get(names[idx], 1)
        )
        if constraints:
            return candidates
        extent = int(extents[names[idx]])
        edges: List[int] = []
        last_trips = None
        for tile in candidates:  # ascending, so trips is nonincreasing
            trips = -(-extent // tile)
            if trips != last_trips:
                edges.append(tile)
                last_trips = trips
        return edges

    raw_grids = [_raw_grid(idx) for idx in range(len(names))]

    def grid_for(idx: int) -> List[int]:
        # The current value rides along so its key is scored by the same
        # engine pass as every candidate.
        return sorted(set(raw_grids[idx]) | {current[names[idx]]})

    def score(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(dv, mu, feasible) per row; dv is NaN on infeasible rows (never
        consulted — feasible rows only)."""
        count = rows.shape[0]
        if use_tables:
            mu = evaluator.usage_batch(rows)
            ok = (mu <= capacity) & evaluator.constraints_ok_batch(rows)
            dv = np.full(count, np.nan)
            if ok.any():  # exact DV only where it can be selected
                dv[ok] = evaluator.volume_exact_batch(rows[ok])
            return dv, mu, ok
        dv = np.full(count, np.nan)
        mu = np.empty(count)
        ok = np.zeros(count, dtype=bool)
        for row in range(count):
            trial = dict(current)
            for idx, name in enumerate(names):
                trial[name] = int(rows[row, idx])
            mu[row] = model.usage(trial)
            if mu[row] > capacity or any(
                fn(trial) > 0 for fn in constraints
            ):
                continue
            ok[row] = True
            dv[row] = model.volume(trial, exact=True)
        return dv, mu, ok

    def base_row() -> np.ndarray:
        return np.array([float(current[n]) for n in names], dtype=float)

    def accept(rows: np.ndarray, moved: Sequence[int]) -> bool:
        """Jump to the feasible row minimizing (dv, mu, moved tiles...) if
        it strictly beats the current point's row (always included)."""
        dv, mu, ok = score(rows)
        feasible = np.nonzero(ok)[0]
        if not feasible.size:
            return False
        columns = [rows[feasible, idx] for idx in reversed(moved)]
        order = np.lexsort(tuple(columns) + (mu[feasible], dv[feasible]))
        row = int(feasible[order[0]])
        cur = base_row()
        if all(rows[row, idx] == cur[idx] for idx in moved):
            return False
        cur_rows = np.nonzero((rows == cur).all(axis=1))[0]
        if cur_rows.size and ok[cur_rows[0]]:
            ref = int(cur_rows[0])
            best_key = (dv[row], mu[row]) + tuple(
                rows[row, idx] for idx in moved
            )
            cur_key = (dv[ref], mu[ref]) + tuple(
                rows[ref, idx] for idx in moved
            )
            if not best_key < cur_key:
                return False
        for idx in moved:
            current[names[idx]] = int(rows[row, idx])
        return True

    def pinned(idx: int) -> bool:
        """A coordinate already sitting on its only aligned value cannot
        move, and scanning it re-evaluates rows an earlier (stalled) scan
        already rejected — skipping changes nothing."""
        return (
            len(raw_grids[idx]) == 1
            and raw_grids[idx][0] == current[names[idx]]
        )

    def single_pass() -> bool:
        improved = False
        for idx in range(len(names)):
            if pinned(idx):
                continue
            candidates = grid_for(idx)
            rows = np.tile(base_row(), (len(candidates), 1))
            rows[:, idx] = np.asarray(candidates, dtype=float)
            improved |= accept(rows, [idx])
        return improved

    def pair_pass() -> bool:
        improved = False
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                # The cap is computed from the raw grids so every start
                # skips the same pairs.  A pair with a pinned side is a
                # single-coordinate scan in disguise — already stalled.
                if len(raw_grids[i]) * len(raw_grids[j]) > _PAIR_SCAN_CAP:
                    continue
                if pinned(i) or pinned(j):
                    continue
                grid_i, grid_j = grid_for(i), grid_for(j)
                rows = np.tile(
                    base_row(), (len(grid_i) * len(grid_j), 1)
                )
                mesh_i, mesh_j = np.meshgrid(
                    np.asarray(grid_i, dtype=float),
                    np.asarray(grid_j, dtype=float),
                    indexing="ij",
                )
                rows[:, i] = mesh_i.reshape(-1)
                rows[:, j] = mesh_j.reshape(-1)
                improved |= accept(rows, [i, j])
        return improved

    for _ in range(max_passes):
        if single_pass():
            continue
        if not pair_pass():
            break
    row = base_row().reshape(1, -1)
    dv, mu, _ = score(row)
    return float(dv[0]), float(mu[0]), current


def _integer_refine(
    model: MovementModel,
    continuous: Mapping[str, float],
    capacity: float,
    names: Sequence[str],
    lower: np.ndarray,
    upper: np.ndarray,
    quanta: Mapping[str, int],
    constraints: Sequence[ConstraintFn],
    evaluator=None,
) -> TileSolution:
    """Floor/ceil lattice search around the continuous optimum.

    Under the tables engine the entire lattice is scored in one batched
    DV/MU evaluation; the scalar engine walks it as the reference loop.
    Both paths replicate the same selection rule — first-occurrence
    (in ``itertools.product`` order) strict minimum of DV among feasible
    points, first-occurrence ``(MU, DV)`` minimum as infeasible fallback —
    so they pick the identical lattice point.  Every feasible result is
    then canonicalized by :func:`_canonical_descent`, which erases the
    lattice's dependence on the exact continuous landing point.
    """
    candidate_values = _lattice_values(continuous, names, lower, upper, quanta)

    best: Optional[Tuple[float, float, Dict[str, int]]] = None
    fallback: Optional[Tuple[float, float, Dict[str, int]]] = None
    if isinstance(evaluator, TablesEvaluator):
        # np.meshgrid(..., indexing="ij") flattens in the same
        # lexicographic order itertools.product enumerates.
        grids = np.meshgrid(
            *[np.asarray(v, dtype=float) for v in candidate_values],
            indexing="ij",
        )
        lattice = np.stack([g.reshape(-1) for g in grids], axis=1)
        dv_all = evaluator.volume_exact_batch(lattice)
        mu_all = evaluator.usage_batch(lattice)
        feasible = (mu_all <= capacity) & evaluator.constraints_ok_batch(
            lattice
        )

        def entry_at(row: int) -> Tuple[float, float, Dict[str, int]]:
            combo = (int(v) for v in lattice[row])
            tiles = _full_tiles(model, dict(zip(names, combo)))
            return (float(dv_all[row]), float(mu_all[row]), tiles)

        order = np.lexsort((dv_all, mu_all))
        fallback = entry_at(int(order[0]))
        feasible_rows = np.nonzero(feasible)[0]
        if feasible_rows.size:
            best = entry_at(
                int(feasible_rows[np.argmin(dv_all[feasible_rows])])
            )
    else:
        for combo in itertools.product(*candidate_values):
            tiles = _full_tiles(model, dict(zip(names, combo)))
            mu = model.usage(tiles)
            dv = model.volume(tiles, exact=True)
            entry = (dv, mu, tiles)
            if fallback is None or (mu, dv) < (fallback[1], fallback[0]):
                fallback = entry
            if mu <= capacity and all(fn(tiles) <= 0 for fn in constraints):
                if best is None or dv < best[0]:
                    best = entry

    if best is not None:
        dv, mu, tiles = _canonical_descent(
            model,
            best[2],
            capacity,
            names,
            lower,
            upper,
            quanta,
            constraints,
            evaluator=evaluator,
        )
        return TileSolution(tiles, dv, mu, True, {})

    # No feasible lattice point: shrink the min-MU candidate geometrically.
    assert fallback is not None
    dv, mu, tiles = fallback
    shrunk = dict(tiles)
    for _ in range(64):
        if model.usage(shrunk) <= capacity and all(
            fn(shrunk) <= 0 for fn in constraints
        ):
            dv, mu, shrunk = _canonical_descent(
                model,
                shrunk,
                capacity,
                names,
                lower,
                upper,
                quanta,
                constraints,
                evaluator=evaluator,
            )
            return TileSolution(shrunk, dv, mu, True, {})
        shrunk = {
            n: max(1, t // 2) if n in set(names) else t for n, t in shrunk.items()
        }
    ones = _full_tiles(model, {n: 1 for n in names})
    return TileSolution(
        ones,
        model.volume(ones, exact=True),
        model.usage(ones),
        False,
        {},
    )


def gemm_chain_closed_form(
    m: int,
    n: int,
    k: int,
    l: int,
    capacity_elements: float,
    alpha: float = 8.0,
) -> Dict[str, float]:
    """The paper's Lagrange-multiplier solution for the GEMM chain.

    Under the ``mlkn`` order, ``DV = MK ceil(L/T_L) + (K+N) L ceil(M/T_M) +
    MN ceil(L/T_L)`` and the optimum (Section IV-B) is::

        T_M* = T_L* = -alpha + sqrt(alpha^2 + MC),   T_N* = T_K* = alpha

    where ``alpha`` is the lower bound for the free variables ``T_N, T_K``
    and MC is the memory capacity in elements.

    Returns:
        real-valued tiles keyed by ``m``, ``n``, ``k``, ``l``.
    """
    if capacity_elements <= 0:
        raise ValueError("capacity must be positive")
    t = -alpha + math.sqrt(alpha * alpha + capacity_elements)
    return {
        "m": min(t, m),
        "l": min(t, l),
        "n": min(alpha, n),
        "k": min(alpha, k),
    }
