"""Constrained tile-size optimization (Section IV-B).

For a fixed block execution order the paper minimizes the smooth (real
valued) data movement volume ``DV(S)`` subject to the memory usage bound
``MU(S) <= MemoryCapacity``, solves in the reals (Lagrange multipliers),
then floor-rounds to integers and picks the best feasible integer candidate.

This module implements the same recipe for *arbitrary* chains:

* the continuous problem is solved numerically (SLSQP in log-tile space,
  multiple deterministic starts) — this is the general-purpose stand-in for
  the per-shape Lagrange derivation.  The objective and every constraint
  feed SLSQP *analytic* log-space gradients (Algorithm 1 is a product of
  affine spans, so the partials are closed-form) instead of finite
  differences, which removes the dominant cost of a cold compile;
* DV/MU evaluation goes through :mod:`repro.core.tables` — either the
  scalar reference engine or the compiled tables engine
  (``REPRO_MODEL_ENGINE``).  Both engines execute the same floating-point
  operation sequence, so the solver trajectory — and the returned plan —
  is bit-identical between them;
* the closed-form GEMM-chain solution the paper derives analytically is
  provided separately (:func:`gemm_chain_closed_form`) and used by tests to
  validate the numeric path;
* integer refinement evaluates the floor/ceil lattice around the continuous
  optimum with the *exact* (ceil-based) DV and the exact MU, honouring
  per-loop minimum tiles and quanta imposed by the micro kernels.  Under
  the tables engine the whole lattice is scored in one batched
  ``volume_batch``/``usage_batch`` call.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .movement import MovementModel
from .tables import TablesEvaluator, evaluator_for, resolve_model_engine

ConstraintFn = Callable[[Mapping[str, float]], float]
"""Extra feasibility predicate: returns (usage - capacity); <= 0 is feasible."""

#: Diagnostic escape hatch: set False to emulate the pre-tables solver —
#: SLSQP falls back to finite differences and the constraints are fed in
#: raw byte units (the seed's ill-conditioned scaling).  Benchmarks use it
#: to measure the baseline this PR replaces; production paths must leave
#: it True — both engines share the analytic-gradient trajectory, and that
#: sharing is what makes their plans byte-identical.
_ANALYTIC_JAC = True


@dataclasses.dataclass(frozen=True)
class TileSolution:
    """Result of one tile-size solve.

    Attributes:
        tiles: integer tile per ordering loop (degenerate loops included
            with tile 1).
        dv: exact data movement volume at ``tiles``, bytes.
        mu: exact memory usage at ``tiles``, bytes.
        feasible: whether ``mu`` (and all extra constraints) fit capacity.
        continuous: the pre-rounding real-valued solution, for diagnostics.
    """

    tiles: Dict[str, int]
    dv: float
    mu: float
    feasible: bool
    continuous: Dict[str, float]


def _feasible(
    model: MovementModel,
    tiles: Mapping[str, float],
    capacity: float,
    constraints: Sequence[ConstraintFn],
) -> bool:
    if model.usage(tiles) > capacity:
        return False
    return all(fn(tiles) <= 0 for fn in constraints)


def _full_tiles(model: MovementModel, tiles: Mapping[str, int]) -> Dict[str, int]:
    """Extend solved tiles with tile=1 for degenerate (omitted) loops."""
    extents = model.chain.loop_extents()
    full = {name: 1 for name in extents}
    full.update({name: int(t) for name, t in tiles.items()})
    return full


def solve_tiles(
    model: MovementModel,
    capacity: float,
    *,
    min_tiles: Optional[Mapping[str, int]] = None,
    quanta: Optional[Mapping[str, int]] = None,
    constraints: Sequence[ConstraintFn] = (),
    max_parent: Optional[Mapping[str, int]] = None,
    starts: int = 4,
    hard_min_tiles: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
) -> TileSolution:
    """Minimize DV(S) s.t. MU(S) <= capacity for one movement model.

    Args:
        model: precompiled Algorithm-1 model (chain + order).
        capacity: per-block memory capacity in bytes.
        min_tiles: *soft* lower bound per loop (micro-kernel minimums; the
            paper's ``alpha`` for free variables).  Automatically relaxed
            when even the minimum point exceeds capacity — an unaligned
            feasible schedule beats an infeasible aligned one.  A minimum
            above a loop's extent means "take the whole loop": it is
            clamped to the extent, never treated as infeasible.
        quanta: tile sizes are rounded to multiples of these (e.g. 16 for
            tensor-core loops); bounds are respected first.
        constraints: extra feasibility functions (e.g. the NPU Unified
            Buffer bound on the intermediate footprint).  A constraint
            exposing a ``gradient(tiles)`` method gets an analytic SLSQP
            jacobian; others fall back to finite differences.
        max_parent: per-loop upper bounds below the loop extent — used for
            inner memory levels, whose tiles nest inside the parent level's.
        starts: number of deterministic multi-start points for SLSQP.
        hard_min_tiles: lower bounds that are never relaxed (the outer-level
            pins on producer-private reductions).
        engine: model evaluation engine (``scalar``/``tables``); ``None``
            defers to ``REPRO_MODEL_ENGINE``.  Both engines return
            bit-identical solutions.

    Returns:
        the best feasible integer solution found; ``feasible=False`` with
        all-ones tiles if even the smallest legal tiles exceed capacity.
    """
    engine = resolve_model_engine(engine)
    chain = model.chain
    extents = chain.loop_extents()
    names = [n for n in model.perm]
    min_tiles = dict(min_tiles or {})
    hard_min_tiles = dict(hard_min_tiles or {})
    quanta = dict(quanta or {})
    evaluator = evaluator_for(model, names, constraints, engine)

    upper_src = max_parent or {}
    upper = np.array(
        [max(1, min(extents[n], upper_src.get(n, extents[n]))) for n in names],
        dtype=float,
    )

    def lower_for(softs: Mapping[str, int]) -> np.ndarray:
        values = []
        for n in names:
            low = max(1, softs.get(n, 1), hard_min_tiles.get(n, 1))
            values.append(min(low, extents[n]))
        # Parent bounds win over micro-kernel minimums: a child tile can
        # never exceed its parent tile.
        return np.minimum(np.array(values, dtype=float), upper)

    if not names:
        tiles = _full_tiles(model, {})
        dv = model.volume(tiles, exact=True)
        mu = model.usage(tiles)
        return TileSolution(
            tiles, dv, mu, _feasible(model, tiles, capacity, constraints), {}
        )

    def fits_vector(values: np.ndarray) -> bool:
        if evaluator.usage(values) > capacity:
            return False
        return all(
            evaluator.constraint(i, values) <= 0
            for i in range(len(constraints))
        )

    lower = lower_for(min_tiles)
    if min_tiles and not fits_vector(lower):
        # Soft minimums don't fit: relax them and keep only the hard pins.
        lower = lower_for({})

    size = len(names)

    # SLSQP evaluates the objective, the capacity slack, and their
    # jacobians at the same point in turn; share one exp(x) per point so
    # every closure hands the evaluator the identical values array (which
    # also lets the tables evaluator reuse its expanded row).
    point_key: List[Optional[bytes]] = [None]
    point_values: List[Optional[np.ndarray]] = [None]

    def values_at(x: np.ndarray) -> np.ndarray:
        key = x.tobytes()
        if key != point_key[0]:
            point_key[0] = key
            point_values[0] = np.exp(x)
        return point_values[0]

    def objective(x: np.ndarray) -> Tuple[float, np.ndarray]:
        # Log the objective for conditioning: DV spans many decades.  The
        # gradient is chained through tiles = exp(x); below DV = 1 the
        # clamp makes the objective flat, so the gradient is zero there.
        values = values_at(x)
        volume, grad = evaluator.volume_smooth_gradient(values)
        if volume > 1.0:
            return math.log(volume), grad * values / volume
        return 0.0, np.zeros(size)

    # Constraints are fed to SLSQP in *relative* units (fraction of the
    # capacity) so the merit function sees an O(1) violation scale next to
    # the O(1) log-volume objective.  Raw byte-valued slacks (~1e5..1e8)
    # make SLSQP's L1 penalty wildly ill-conditioned and its line search
    # backtrack for most of the iteration budget.  The seed-emulation
    # baseline keeps the raw scale (together with finite differences).
    inv_capacity = 1.0 / capacity if capacity > 0 and _ANALYTIC_JAC else 1.0

    def capacity_slack(x: np.ndarray) -> float:
        return (capacity - evaluator.usage(values_at(x))) * inv_capacity

    def capacity_slack_jac(x: np.ndarray) -> np.ndarray:
        values = values_at(x)
        _, grad = evaluator.usage_gradient(values)
        return -grad * values * inv_capacity

    cons: List[Dict] = [
        {"type": "ineq", "fun": capacity_slack, "jac": capacity_slack_jac}
    ]
    for idx in range(len(constraints)):
        entry: Dict = {
            "type": "ineq",
            "fun": lambda x, i=idx: (
                -evaluator.constraint(i, values_at(x)) * inv_capacity
            ),
        }
        if evaluator.constraint_has_gradient(idx):
            entry["jac"] = lambda x, i=idx: (
                -evaluator.constraint_gradient(i, values_at(x))
                * values_at(x)
                * inv_capacity
            )
        cons.append(entry)
    if not _ANALYTIC_JAC:  # finite-difference baseline (benchmarks only)
        cons = [
            {k: v for k, v in entry.items() if k != "jac"} for entry in cons
        ]

    log_lower, log_upper = np.log(lower), np.log(upper)
    bounds = list(zip(log_lower, log_upper))

    best_x: Optional[np.ndarray] = None
    best_val = math.inf
    for start_idx in range(max(1, starts)):
        frac = start_idx / max(1, starts - 1) if starts > 1 else 0.5
        x0 = log_lower + frac * (log_upper - log_lower)
        x0 = _project_feasible(x0, capacity_slack, log_lower)
        try:
            if _ANALYTIC_JAC:
                res = optimize.minimize(
                    objective,
                    x0,
                    jac=True,
                    method="SLSQP",
                    bounds=bounds,
                    constraints=cons,
                    options={"maxiter": 200, "ftol": 1e-9},
                )
            else:
                res = optimize.minimize(
                    lambda x: math.log(
                        max(evaluator.volume_smooth(np.exp(x)), 1.0)
                    ),
                    x0,
                    method="SLSQP",
                    bounds=bounds,
                    constraints=cons,
                    options={"maxiter": 200, "ftol": 1e-9},
                )
        except (ValueError, RuntimeError):
            continue
        if res.x is None:
            continue
        x = np.clip(res.x, log_lower, log_upper)
        if capacity_slack(x) < -1e-6 * capacity * inv_capacity:
            continue
        val = objective(x)[0]
        if val < best_val:
            best_val, best_x = val, x

    if best_x is None:
        best_x = _project_feasible(
            (log_lower + log_upper) / 2, capacity_slack, log_lower
        )

    continuous = {n: float(v) for n, v in zip(names, np.exp(best_x))}
    solution = _integer_refine(
        model,
        continuous,
        capacity,
        names,
        lower,
        upper,
        quanta,
        constraints,
        evaluator=evaluator,
    )
    return dataclasses.replace(solution, continuous=continuous)


def _project_feasible(
    x: np.ndarray,
    capacity_slack: Callable[[np.ndarray], float],
    log_lower: np.ndarray,
    shrink: float = 0.85,
    max_iter: int = 200,
) -> np.ndarray:
    """Shrink tiles geometrically toward the lower bound until MU fits."""
    for _ in range(max_iter):
        if capacity_slack(x) >= 0:
            return x
        x = log_lower + shrink * (x - log_lower)
    return log_lower.copy()


def _quantize(value: int, quantum: int, lo: int, hi: int) -> int:
    """Round down to a multiple of ``quantum`` within [lo, hi] if possible.

    Degenerate bounds are resolved toward the *extent* side: an empty range
    (``lo > hi``, e.g. a micro-kernel minimum above a small loop's extent)
    yields ``hi`` — the whole loop — rather than a candidate above the
    extent, and a quantum that cannot fit between the bounds falls back to
    the clamped unaligned value (a feasible unaligned tile beats none).
    """
    if lo > hi:
        return hi
    if quantum <= 1:
        return max(lo, min(hi, value))
    snapped = (value // quantum) * quantum
    if snapped < lo:
        snapped = ((lo + quantum - 1) // quantum) * quantum
    if snapped > hi:
        snapped = (hi // quantum) * quantum
    if snapped < lo:  # quantum does not fit between the bounds at all
        return max(lo, min(hi, value))
    return snapped


def _lattice_values(
    continuous: Mapping[str, float],
    names: Sequence[str],
    lower: np.ndarray,
    upper: np.ndarray,
    quanta: Mapping[str, int],
) -> List[List[int]]:
    """Per-loop candidate tiles: quantized floor/ceil/minimum (vectorized
    ``_quantize`` outcome, deduplicated and clamped to ``[lo, hi]``)."""
    candidate_values: List[List[int]] = []
    for idx, name in enumerate(names):
        lo, hi = int(lower[idx]), int(upper[idx])
        quantum = quanta.get(name, 1)
        raw = continuous[name]
        options = {
            _quantize(int(math.floor(raw)), quantum, lo, hi),
            _quantize(int(math.ceil(raw)), quantum, lo, hi),
            _quantize(lo, quantum, lo, hi),
        }
        if quantum > hi:
            # No aligned tile exists below the extent: the whole loop is
            # the canonical choice (remainder handling covers the short
            # tile either way), so make sure it is on the lattice.
            options.add(hi)
        # Never propose a tile outside [lo, hi]: quantized candidates must
        # not exceed the loop extent (or the parent level's tile).
        candidate_values.append(sorted({max(lo, min(hi, v)) for v in options}))
    return candidate_values


def _integer_refine(
    model: MovementModel,
    continuous: Mapping[str, float],
    capacity: float,
    names: Sequence[str],
    lower: np.ndarray,
    upper: np.ndarray,
    quanta: Mapping[str, int],
    constraints: Sequence[ConstraintFn],
    evaluator=None,
) -> TileSolution:
    """Floor/ceil lattice search around the continuous optimum.

    Under the tables engine the entire lattice is scored in one batched
    DV/MU evaluation; the scalar engine walks it as the reference loop.
    Both paths replicate the same selection rule — first-occurrence
    (in ``itertools.product`` order) strict minimum of DV among feasible
    points, first-occurrence ``(MU, DV)`` minimum as infeasible fallback —
    so they pick the identical lattice point.
    """
    candidate_values = _lattice_values(continuous, names, lower, upper, quanta)

    best: Optional[Tuple[float, float, Dict[str, int]]] = None
    fallback: Optional[Tuple[float, float, Dict[str, int]]] = None
    if isinstance(evaluator, TablesEvaluator):
        # np.meshgrid(..., indexing="ij") flattens in the same
        # lexicographic order itertools.product enumerates.
        grids = np.meshgrid(
            *[np.asarray(v, dtype=float) for v in candidate_values],
            indexing="ij",
        )
        lattice = np.stack([g.reshape(-1) for g in grids], axis=1)
        dv_all = evaluator.volume_exact_batch(lattice)
        mu_all = evaluator.usage_batch(lattice)
        feasible = (mu_all <= capacity) & evaluator.constraints_ok_batch(
            lattice
        )

        def entry_at(row: int) -> Tuple[float, float, Dict[str, int]]:
            combo = (int(v) for v in lattice[row])
            tiles = _full_tiles(model, dict(zip(names, combo)))
            return (float(dv_all[row]), float(mu_all[row]), tiles)

        order = np.lexsort((dv_all, mu_all))
        fallback = entry_at(int(order[0]))
        feasible_rows = np.nonzero(feasible)[0]
        if feasible_rows.size:
            best = entry_at(
                int(feasible_rows[np.argmin(dv_all[feasible_rows])])
            )
    else:
        for combo in itertools.product(*candidate_values):
            tiles = _full_tiles(model, dict(zip(names, combo)))
            mu = model.usage(tiles)
            dv = model.volume(tiles, exact=True)
            entry = (dv, mu, tiles)
            if fallback is None or (mu, dv) < (fallback[1], fallback[0]):
                fallback = entry
            if mu <= capacity and all(fn(tiles) <= 0 for fn in constraints):
                if best is None or dv < best[0]:
                    best = entry

    if best is not None:
        dv, mu, tiles = best
        return TileSolution(tiles, dv, mu, True, {})

    # No feasible lattice point: shrink the min-MU candidate geometrically.
    assert fallback is not None
    dv, mu, tiles = fallback
    shrunk = dict(tiles)
    for _ in range(64):
        if model.usage(shrunk) <= capacity and all(
            fn(shrunk) <= 0 for fn in constraints
        ):
            dv = model.volume(shrunk, exact=True)
            return TileSolution(shrunk, dv, model.usage(shrunk), True, {})
        shrunk = {
            n: max(1, t // 2) if n in set(names) else t for n, t in shrunk.items()
        }
    ones = _full_tiles(model, {n: 1 for n in names})
    return TileSolution(
        ones,
        model.volume(ones, exact=True),
        model.usage(ones),
        False,
        {},
    )


def gemm_chain_closed_form(
    m: int,
    n: int,
    k: int,
    l: int,
    capacity_elements: float,
    alpha: float = 8.0,
) -> Dict[str, float]:
    """The paper's Lagrange-multiplier solution for the GEMM chain.

    Under the ``mlkn`` order, ``DV = MK ceil(L/T_L) + (K+N) L ceil(M/T_M) +
    MN ceil(L/T_L)`` and the optimum (Section IV-B) is::

        T_M* = T_L* = -alpha + sqrt(alpha^2 + MC),   T_N* = T_K* = alpha

    where ``alpha`` is the lower bound for the free variables ``T_N, T_K``
    and MC is the memory capacity in elements.

    Returns:
        real-valued tiles keyed by ``m``, ``n``, ``k``, ``l``.
    """
    if capacity_elements <= 0:
        raise ValueError("capacity must be positive")
    t = -alpha + math.sqrt(alpha * alpha + capacity_elements)
    return {
        "m": min(t, m),
        "l": min(t, l),
        "n": min(alpha, n),
        "k": min(alpha, k),
    }
