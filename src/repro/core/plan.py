"""Fusion plan data model.

A :class:`FusionPlan` is Chimera's inter-block optimization result: per
memory level, the block execution order and the decomposition parameters,
together with the analytically predicted movement volume, memory usage and
per-level cost.  Plans are consumed by code generation, by the simulator and
by the reporting layer.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Tuple

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain


@dataclasses.dataclass(frozen=True)
class LevelSchedule:
    """Block order and tile sizes targeting one on-chip memory level.

    Attributes:
        level: memory level name (e.g. ``"L2"``).
        order: loop permutation, outermost first; loops with extent 1 are
            omitted (they never cause movement).
        tiles: tile size per ordered loop.
        predicted_dv: Algorithm 1 data movement volume into this level, bytes.
        predicted_mu: peak per-block footprint at this level, bytes.
        capacity: per-block capacity used as the MU constraint, bytes.
        bandwidth: fill bandwidth of this level's outer boundary, bytes/s.
    """

    level: str
    order: Tuple[str, ...]
    tiles: Mapping[str, int]
    predicted_dv: float
    predicted_mu: float
    capacity: float
    bandwidth: float

    @property
    def cost(self) -> float:
        """Data movement cost of Eq. 2: ``DV_d / bw_d`` seconds."""
        return self.predicted_dv / self.bandwidth

    def describe(self) -> str:
        tiles = ", ".join(f"{n}={self.tiles[n]}" for n in self.order)
        return (
            f"{self.level}: order {'/'.join(self.order)} tiles [{tiles}] "
            f"DV={self.predicted_dv / 1e6:.2f}MB MU={self.predicted_mu / 1024:.1f}KB "
            f"cost={self.cost * 1e6:.1f}us"
        )


@dataclasses.dataclass(frozen=True)
class CorePartition:
    """Block-to-core sharding attached to a partitioned plan.

    Records how a fused chain was split over ``cores`` cores along one
    spatial ``loop``, and the inter-core traffic that split causes.  The
    byte and step counts are exact integers (computed identically by the
    scalar and tables engines), so two engines agreeing on a partition
    agree bit-for-bit.

    Attributes:
        cores: number of cores the chain is sharded over (p).
        loop: name of the partitioned spatial loop.
        full_extent: the loop's original extent.
        shard_extent: per-core extent, ``ceil(full_extent / cores)``.
        comm_bytes: total link bytes per chain execution (replicated
            inputs, gathered intermediates, halo overlap).
        comm_steps: latency-bearing exchange steps on the link.
    """

    cores: int
    loop: str
    full_extent: int
    shard_extent: int
    comm_bytes: int
    comm_steps: int

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("partition needs at least one core")
        if self.shard_extent < 1 or self.full_extent < self.shard_extent:
            raise ValueError(
                f"invalid shard {self.shard_extent}/{self.full_extent} "
                f"for loop {self.loop!r}"
            )
        if self.comm_bytes < 0 or self.comm_steps < 0:
            raise ValueError("communication terms must be non-negative")

    def describe(self) -> str:
        return (
            f"{self.cores} cores along {self.loop} "
            f"({self.full_extent} -> {self.shard_extent}/core), "
            f"comm {self.comm_bytes / 1e6:.2f}MB in {self.comm_steps} steps"
        )


@dataclasses.dataclass(frozen=True)
class FusionPlan:
    """Complete inter-block optimization result for one chain.

    Attributes:
        chain: the (already fused) operator chain.  For partitioned plans
            this is the *sharded* chain — one core's slice.
        hardware: target machine model.
        levels: one schedule per on-chip level, innermost first — mirroring
            ``HardwareSpec.on_chip_levels``.
        fused: False when the planner decided fusion is not profitable and
            the chain should run as separate kernels.
        micro_kernel: name of the selected replaceable micro kernel
            implementation, once intra-block optimization ran.
        compute_efficiency: fraction of peak the selected micro kernel
            sustains (1.0 before intra-block optimization).
        notes: free-form diagnostics from the optimizer.
        partition: block-to-core sharding, or ``None`` for the aggregate
            single-chip model.  ``None`` keeps every timing formula
            byte-identical to the pre-partitioning model.
    """

    chain: OperatorChain
    hardware: HardwareSpec
    levels: Tuple[LevelSchedule, ...]
    fused: bool = True
    micro_kernel: Optional[str] = None
    compute_efficiency: float = 1.0
    executed_flops: Optional[float] = None
    notes: Tuple[str, ...] = ()
    partition: Optional[CorePartition] = None

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a fusion plan needs at least one level schedule")

    @property
    def outer(self) -> LevelSchedule:
        """The schedule facing DRAM (drives off-chip traffic)."""
        return self.levels[-1]

    @property
    def inner(self) -> LevelSchedule:
        """The schedule closest to the compute units."""
        return self.levels[0]

    def level(self, name: str) -> LevelSchedule:
        for sched in self.levels:
            if sched.level == name:
                return sched
        raise KeyError(f"plan has no schedule for level {name!r}")

    @property
    def movement_cost(self) -> float:
        """The slowest data movement stage across levels (Eq. 3 objective).

        Partitioned plans price each boundary at one shard's share of its
        bandwidth: a shared source level (or DRAM) serves the ``p``
        resident shards concurrently, so each sees ``bw / p``; a private
        source level is one of ``num_cores`` per-core slices of the
        chip-aggregate bandwidth the level declares.
        """
        if self.partition is None:
            return max(sched.cost for sched in self.levels)
        p = self.partition.cores
        worst = 0.0
        for index, sched in enumerate(self.levels):
            source = self.hardware.levels[index + 1]
            scale = (
                p if (source.shared or source.is_unbounded)
                else self.hardware.num_cores
            )
            worst = max(worst, scale * sched.cost)
        return worst

    @property
    def unified_buffer_cost(self) -> float:
        """Staging time of fused intermediates through the Unified Buffer.

        The paper identifies the Ascend UB as the NPU's fusion bottleneck:
        every fused intermediate passes through it once on produce and once
        on consume.  Zero on hardware without a UB or for unfused kernels.
        Partitioned plans stage one shard's intermediates through a single
        core's UB (the bandwidth is per-core: chip aggregate / num_cores).
        """
        if self.hardware.unified_buffer is None or not self.fused:
            return 0.0
        inter_bytes = sum(
            self.chain.tensors[t].nbytes
            for t in self.chain.intermediate_tensors()
        )
        cost = 2 * inter_bytes / self.hardware.unified_buffer_bandwidth
        if self.partition is not None:
            cost *= self.hardware.num_cores
        return cost

    @property
    def compute_time(self) -> float:
        flops = (
            self.executed_flops
            if self.executed_flops is not None
            else self.chain.total_flops()
        )
        if self.partition is not None:
            # One shard on one core: a core sustains peak / num_cores, so
            # the shard's flops cost num_cores x the aggregate rate.  At
            # p == num_cores this recovers the whole-chip estimate.
            flops *= self.hardware.num_cores
        return self.hardware.compute_time(flops, self.compute_efficiency)

    @property
    def comm_time(self) -> float:
        """Inter-core link time of a partitioned plan (0 when aggregate)."""
        if self.partition is None:
            return 0.0
        link = self.hardware.link
        if link is None or self.partition.cores <= 1:
            return 0.0
        return (
            self.partition.comm_bytes / link.bandwidth
            + self.partition.comm_steps * link.step_time()
        )

    @property
    def predicted_time(self) -> float:
        """Roofline execution estimate: pipeline stages overlap (max).

        Inter-core communication is charged additively — collectives
        synchronize the shards, so the model conservatively refuses to
        hide them behind compute or movement.
        """
        launches = 1 if self.fused else len(self.chain.ops)
        return (
            max(self.movement_cost, self.compute_time,
                self.unified_buffer_cost)
            + self.comm_time
            + launches * self.hardware.kernel_launch_overhead
        )

    def describe(self) -> str:
        lines = [
            f"FusionPlan for {self.chain.name} on {self.hardware.name} "
            f"({'fused' if self.fused else 'unfused'})"
        ]
        for sched in reversed(self.levels):
            lines.append("  " + sched.describe())
        if self.partition is not None:
            lines.append("  partition: " + self.partition.describe())
        if self.micro_kernel:
            lines.append(
                f"  micro kernel: {self.micro_kernel} "
                f"(eff {self.compute_efficiency:.2f})"
            )
        lines.append(
            f"  predicted: compute {self.compute_time * 1e6:.1f}us, "
            f"movement {self.movement_cost * 1e6:.1f}us, "
            f"total {self.predicted_time * 1e6:.1f}us"
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def with_micro_kernel(
        self, name: str, efficiency: float
    ) -> "FusionPlan":
        """Attach the intra-block optimization result."""
        return dataclasses.replace(
            self, micro_kernel=name, compute_efficiency=efficiency
        )
