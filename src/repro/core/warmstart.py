"""Warm-start hints: reusing a neighboring shape's plan to speed a solve.

The shape-generalizing plan cache maps a cache miss to the nearest cached
plan with the same chain structure (same operators, accesses, hardware and
config — only the loop extents differ).  That neighbor's plan seeds the
optimizer through the types here:

* :class:`LevelHint` — one memory level's winning block order plus its
  integer tile vector;
* :class:`PlanHint` — the per-level hints of one fused (or single-op)
  plan, keyed by level name;
* :class:`ChainHints` — everything a ``decide_fusion`` run can reuse: the
  fused plan's hint plus one per-operator hint for the unfused
  alternatives, keyed by operator name.

Hints change **how fast** the optimizer runs, never **what it returns**:

* an ``incumbent_hint`` (the neighbor's winning order) only *reorders* the
  candidate solve sequence — the hinted order is solved first, so the
  admissible DV lower bound prunes against a near-optimal incumbent
  immediately.  The candidate set itself is untouched and pruning remains
  exact, so the winner under the ``(infeasible, dv, order)`` total order
  is unchanged;
* an ``x0_hint`` (the neighbor's tiles) replaces the solver's deterministic
  multi-start sweep with a single SLSQP run from the projected-feasible
  hint point.  The continuous problem is geometric-programming-like in
  log-tile space (posynomial DV against monotone constraints), so a
  converged solve reaches the same optimal DV *value* regardless of
  start — but not necessarily the same tile *point*: the exact
  ceil-based DV is piecewise constant, so the optimum sits on a DV-flat
  ridge and different starts land on different ridge points.  The
  solver's canonical descent (``repro.core.solver._canonical_descent``)
  collapses every ridge point to the same integer solution, which is
  what makes a hinted solve return byte-for-byte what the multi-start
  sweep returns; if the hinted run fails to converge, the solver falls
  back to the full sweep.

Because hints cannot change results, they stay **out** of every memo and
cache key — the same stance the search policy and model engine take.

An adversarial (wrong-neighbor) hint therefore degrades gracefully: an
order that matches no candidate is ignored, and tiles from an unrelated
shape merely start SLSQP somewhere unhelpful.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class LevelHint:
    """One memory level of a neighboring plan: its order and tiles."""

    order: Tuple[str, ...]
    tiles: Mapping[str, int]


@dataclasses.dataclass(frozen=True)
class PlanHint:
    """Per-level hints extracted from one serialized fusion plan."""

    levels: Mapping[str, LevelHint]

    def level(self, name: str) -> Optional[LevelHint]:
        return self.levels.get(name)


@dataclasses.dataclass(frozen=True)
class ChainHints:
    """Hints for a full fuse-or-not decision on one chain.

    Attributes:
        fused: hint for the whole-chain fused plan (``None`` when the
            neighbor entry carried no fused plan, e.g. a fallback).
        unfused: per-operator hints for the unfused alternatives, keyed by
            operator name (single-op chains are named after their op).
    """

    fused: Optional[PlanHint] = None
    unfused: Mapping[str, PlanHint] = dataclasses.field(default_factory=dict)

    def for_op(self, name: str) -> Optional[PlanHint]:
        return self.unfused.get(name)


def plan_hint_from_dict(data: Optional[Dict[str, Any]]) -> Optional[PlanHint]:
    """Extract a :class:`PlanHint` from a serialized plan dict.

    Tolerant by design — hints are advisory, so a malformed or
    foreign-format payload yields ``None`` (or skips the bad level)
    instead of raising.
    """
    if not isinstance(data, dict):
        return None
    levels: Dict[str, LevelHint] = {}
    for sched in data.get("levels") or ():
        try:
            name = sched["level"]
            order = tuple(str(loop) for loop in sched["order"])
            tiles = {
                str(loop): int(tile) for loop, tile in sched["tiles"].items()
            }
        except (KeyError, TypeError, ValueError, AttributeError):
            continue
        levels[name] = LevelHint(order=order, tiles=tiles)
    if not levels:
        return None
    return PlanHint(levels=levels)


def hints_from_entry(entry: Dict[str, Any]) -> Optional[ChainHints]:
    """Build :class:`ChainHints` from a cached service entry.

    The fused hint comes from ``entry["fused_plan"]``; unfused hints are
    keyed by each single-op plan's chain name (== the operator name).
    Returns ``None`` when the entry carries nothing usable.
    """
    if not isinstance(entry, dict):
        return None
    fused = plan_hint_from_dict(entry.get("fused_plan"))
    unfused: Dict[str, PlanHint] = {}
    for plan_data in entry.get("unfused_plans") or ():
        hint = plan_hint_from_dict(plan_data)
        if hint is None:
            continue
        try:
            op_name = plan_data["chain"]["name"]
        except (KeyError, TypeError):
            continue
        if isinstance(op_name, str):
            unfused[op_name] = hint
    if fused is None and not unfused:
        return None
    return ChainHints(fused=fused, unfused=unfused)
