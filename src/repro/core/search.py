"""Pruned, memoized, optionally parallel inter-block order search.

The inter-block optimizer enumerates candidate block execution orders and
runs the constrained tile-size solve (:func:`repro.core.solver.solve_tiles`)
on each — the dominant cost of a cold compile.  This module makes that
search fast **without changing its answer**:

* **Pruning** — every candidate gets a cheap *admissible* lower bound on
  the data movement volume any feasible tile assignment can reach
  (:func:`dv_lower_bound`).  DV is coordinatewise non-increasing in the
  tile sizes while MU is non-decreasing, so evaluating DV at each loop's
  capacity-relaxed maximum tile (the largest tile that fits capacity with
  every other loop at its minimum — a relaxation of the joint constraint)
  bounds the solve result from below.  Candidates whose bound cannot beat
  the incumbent are skipped, exactly as analytical schedulers prune
  dominated schedules.
* **Memoization** — solve results are cached under the movement model's
  :meth:`~repro.core.movement.MovementModel.signature` (plus every other
  solve input), so symmetric orders with identical movement terms — and
  repeated compiles of the same chain — are solved once per process.
* **Parallelism** — surviving candidates can be fanned across a process
  pool (``REPRO_SEARCH_WORKERS``).  Results are reduced under the total
  order ``(infeasible, dv, order-tuple)``, so the winner is identical
  regardless of worker count or completion order.
* **Observability** — :class:`SearchStats` counts orders enumerated,
  pruned, memo hits and solves, with per-stage wall time; a process-global
  aggregate backs ``service.stats()`` and the ``repro search-stats`` CLI.

Determinism guarantee: for a fixed candidate list, the (model, solution)
pair returned by :func:`search_tiles` is identical for every combination
of ``prune``/``memoize``/``workers`` — pruning is admissible (a pruned
candidate provably cannot win the total order), memoized entries are keyed
on every input that influences the solve, and the parallel reduce is a
total-order minimum.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import math
import os
import pickle
import threading
import time
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..ir.chain import OperatorChain
from .movement import MovementModel
from .solver import ConstraintFn, TileSolution, solve_tiles
from .tables import (
    ENGINE_TABLES,
    TablesEvaluator,
    resolve_model_engine,
    tables_memo_stats,
)

#: Environment knobs honoured by :meth:`SearchPolicy.from_env`.
ENV_WORKERS = "REPRO_SEARCH_WORKERS"
ENV_PRUNE = "REPRO_SEARCH_PRUNE"
ENV_MEMO = "REPRO_SEARCH_MEMO"


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


@dataclasses.dataclass(frozen=True)
class SearchPolicy:
    """Execution strategy of the order search.

    The policy changes how fast the search runs, never what it returns —
    it is deliberately *not* part of the compilation cache key.

    Attributes:
        prune: skip solves whose DV lower bound cannot beat the incumbent.
        memoize: reuse solve results through the process-global
            :class:`SolveMemo`.
        workers: process-pool width for surviving candidates; ``1`` solves
            serially (and lets the incumbent tighten after every solve,
            which prunes the most).
    """

    prune: bool = True
    memoize: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @staticmethod
    def from_env() -> "SearchPolicy":
        """Policy from ``REPRO_SEARCH_{WORKERS,PRUNE,MEMO}`` (defaults on/1)."""
        try:
            workers = int(os.environ.get(ENV_WORKERS, "1"))
        except ValueError:
            workers = 1
        return SearchPolicy(
            prune=_env_flag(ENV_PRUNE, True),
            memoize=_env_flag(ENV_MEMO, True),
            workers=max(1, workers),
        )

    @staticmethod
    def exhaustive() -> "SearchPolicy":
        """The serial solve-everything baseline the search must reproduce."""
        return SearchPolicy(prune=False, memoize=False, workers=1)


@dataclasses.dataclass
class SearchStats:
    """Counters and per-stage wall time of one or more order searches."""

    searches: int = 0
    orders_enumerated: int = 0
    candidates: int = 0
    bound_evals: int = 0
    pruned: int = 0
    memo_hits: int = 0
    solves: int = 0
    bound_seconds: float = 0.0
    solve_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        for field in dataclasses.fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


_GLOBAL_STATS = SearchStats()
_GLOBAL_STATS_LOCK = threading.Lock()


def record_search_stats(stats: SearchStats) -> None:
    """Fold one search's stats into the process-global aggregate."""
    with _GLOBAL_STATS_LOCK:
        _GLOBAL_STATS.merge(stats)


def search_stats_snapshot() -> Dict[str, Any]:
    """Point-in-time copy of the process-global search counters."""
    with _GLOBAL_STATS_LOCK:
        snap = _GLOBAL_STATS.as_dict()
    snap["memo"] = _GLOBAL_MEMO.stats()
    snap["tables_memo"] = tables_memo_stats()
    return snap


def reset_search_stats() -> None:
    with _GLOBAL_STATS_LOCK:
        global _GLOBAL_STATS
        _GLOBAL_STATS = SearchStats()


# ----------------------------------------------------------------------
# admissible DV lower bound
# ----------------------------------------------------------------------
def chain_digest(chain: OperatorChain) -> str:
    """Content fingerprint of a chain for memo keys.

    Hashes the pickled IR: equal chains built by the same code path hash
    equally; a hash mismatch merely forfeits a memo hit, never correctness.
    """
    return hashlib.sha256(pickle.dumps(chain)).hexdigest()


def _ones(model: MovementModel) -> Dict[str, float]:
    return {name: 1.0 for name in model.chain.loop_extents()}


def _fits(
    model: MovementModel,
    tiles: Mapping[str, float],
    capacity: float,
    constraints: Sequence[ConstraintFn],
) -> bool:
    if model.usage(tiles) > capacity:
        return False
    return all(fn(tiles) <= 0 for fn in constraints)


def upper_tile_bounds(
    model: MovementModel,
    capacity: float,
    constraints: Sequence[ConstraintFn] = (),
    max_parent: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
) -> Optional[Dict[str, int]]:
    """Per-loop capacity-relaxed maximum tiles, or ``None`` if nothing fits.

    For each loop the largest integer tile such that the assignment (that
    tile, every other loop at 1) satisfies the capacity bound and the extra
    constraints.  MU and the constraint functions are coordinatewise
    non-decreasing in the tiles, so for *any* jointly feasible assignment
    ``T``, ``T_l`` cannot exceed this per-loop bound — the bounds form a
    box relaxation of the feasible region.  ``None`` means even all-ones
    tiles violate a constraint: no feasible assignment exists at all.

    Under the tables engine the per-loop binary searches run in lockstep:
    one batched MU evaluation per bisection step covers every still-active
    loop, instead of one scalar MU call per loop per step.  The probe
    points — and therefore the bounds — are identical to the scalar path.
    """
    if resolve_model_engine(engine) == ENGINE_TABLES:
        return _upper_tile_bounds_tables(model, capacity, constraints, max_parent)
    extents = model.chain.loop_extents()
    parent = max_parent or {}
    probe = _ones(model)
    if not _fits(model, probe, capacity, constraints):
        return None
    bounds: Dict[str, int] = {}
    for name in model.perm:
        hi = max(1, min(extents[name], parent.get(name, extents[name])))
        probe[name] = float(hi)
        if _fits(model, probe, capacity, constraints):
            bounds[name] = hi
        else:
            lo = 1
            while hi - lo > 1:  # invariant: lo fits, hi does not
                mid = (lo + hi) // 2
                probe[name] = float(mid)
                if _fits(model, probe, capacity, constraints):
                    lo = mid
                else:
                    hi = mid
            bounds[name] = lo
        probe[name] = 1.0
    return bounds


def _upper_tile_bounds_tables(
    model: MovementModel,
    capacity: float,
    constraints: Sequence[ConstraintFn],
    max_parent: Optional[Mapping[str, int]],
) -> Optional[Dict[str, int]]:
    """Batched twin of the scalar :func:`upper_tile_bounds` loop.

    The per-loop searches are independent, so every bisection step probes
    all still-active loops with one ``(N, L)`` MU batch.  Invariants (lo
    fits, hi does not) and midpoints match the scalar loop exactly.
    """
    extents = model.chain.loop_extents()
    parent = max_parent or {}
    names = list(model.perm)
    width = len(names)
    if not width:
        # Degenerate chain (every loop extent 1): nothing to bound, the
        # all-ones probe alone decides feasibility.
        probe = _ones(model)
        return {} if _fits(model, probe, capacity, constraints) else None
    # Bound probes only use the batched (interpreted numpy) paths, so
    # skip row-kernel codegen: paying per-candidate generation for all
    # enumerated orders — most of which the bound then prunes — used to
    # dominate the whole pruning pass.
    evaluator = TablesEvaluator(model, names, constraints, fast_kernels=False)

    def fits(values: np.ndarray) -> np.ndarray:
        return (
            evaluator.usage_batch(values) <= capacity
        ) & evaluator.constraints_ok_batch(values)

    if not bool(fits(np.ones((1, width)))[0]):
        return None
    hi = np.array(
        [
            max(1, min(extents[n], parent.get(n, extents[n])))
            for n in names
        ],
        dtype=np.int64,
    )
    probes = np.ones((width, width))
    probes[np.arange(width), np.arange(width)] = hi.astype(float)
    fit_hi = fits(probes)
    lo = np.ones(width, dtype=np.int64)
    hi_search = hi.copy()
    active = ~fit_hi
    while True:
        work = np.nonzero(active & (hi_search - lo > 1))[0]
        if not work.size:
            break
        mids = (lo[work] + hi_search[work]) // 2
        rows = np.ones((work.size, width))
        rows[np.arange(work.size), work] = mids.astype(float)
        fit_mid = fits(rows)
        lo[work] = np.where(fit_mid, mids, lo[work])
        hi_search[work] = np.where(fit_mid, hi_search[work], mids)
    return {
        name: int(hi[i]) if fit_hi[i] else int(lo[i])
        for i, name in enumerate(names)
    }


def dv_lower_bound(
    model: MovementModel,
    capacity: float,
    constraints: Sequence[ConstraintFn] = (),
    max_parent: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
) -> float:
    """Admissible lower bound on the DV of any feasible tile assignment.

    DV is coordinatewise non-increasing in the tiles (every multiplier
    ``ceil(L/T)`` shrinks as ``T`` grows and the edge-clamped footprint
    factors cancel the growth), so DV evaluated at the coordinatewise
    upper bounds of the feasible region (:func:`upper_tile_bounds`) is a
    floor under every solution the solver can return.  ``inf`` when the
    order admits no feasible tiles — such candidates only lose to a
    feasible incumbent, so pruning them is exact as well.
    """
    bounds = upper_tile_bounds(
        model, capacity, constraints, max_parent, engine=engine
    )
    if bounds is None:
        return math.inf
    tiles = _ones(model)
    tiles.update({name: float(t) for name, t in bounds.items()})
    return model.volume(tiles, exact=True)


def dv_lower_bounds(
    models: Sequence[MovementModel],
    capacity: float,
    constraints: Sequence[ConstraintFn] = (),
    max_parent: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
) -> List[float]:
    """:func:`dv_lower_bound` across candidate orders (the pruning pass).

    Resolves the engine once; under the tables engine every order's bound
    runs its bisections batched, so the whole pass costs a handful of
    numpy evaluations per order instead of ``O(loops x log(extent))``
    scalar model calls.
    """
    engine = resolve_model_engine(engine)
    return [
        dv_lower_bound(model, capacity, constraints, max_parent, engine=engine)
        for model in models
    ]


# ----------------------------------------------------------------------
# solve memo
# ----------------------------------------------------------------------
class SolveMemo:
    """Process-global LRU of tile-size solve results.

    Keys cover every input that influences :func:`solve_tiles`: the chain
    content, the movement-model signature (equal signatures induce
    bit-identical DV/MU functions — multiplier tuples are stored sorted),
    capacity, bounds, quanta, start count and a caller-provided token for
    non-hashable extra constraints.  Entries whose constraints have no
    token are never cached.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, TileSolution]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Optional[TileSolution]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, solution: TileSolution) -> None:
        with self._lock:
            self._entries[key] = solution
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


_GLOBAL_MEMO = SolveMemo()


def solve_memo() -> SolveMemo:
    """The process-global solve memo (exposed for tests and tooling)."""
    return _GLOBAL_MEMO


def _sorted_items(mapping: Optional[Mapping[str, int]]) -> Tuple:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


def memo_key(
    digest: str,
    model: MovementModel,
    capacity: float,
    *,
    min_tiles: Optional[Mapping[str, int]],
    quanta: Optional[Mapping[str, int]],
    max_parent: Optional[Mapping[str, int]],
    hard_min_tiles: Optional[Mapping[str, int]],
    starts: int,
    constraints_token: Optional[Hashable],
    by_signature: bool = True,
) -> Hashable:
    """The full solve-input key; ``by_signature=False`` keys on the exact
    permutation instead (used by fixed-order ablation paths, where the
    reported order must stay the caller's)."""
    identity = (
        ("sig", model.signature_digest())
        if by_signature
        else ("perm", model.perm, model.reuse_intermediates)
    )
    return (
        digest,
        identity,
        float(capacity),
        _sorted_items(min_tiles),
        _sorted_items(quanta),
        _sorted_items(max_parent),
        _sorted_items(hard_min_tiles),
        int(starts),
        constraints_token,
    )


# ----------------------------------------------------------------------
# the search driver
# ----------------------------------------------------------------------
def _solution_key(
    solution: TileSolution, perm: Tuple[str, ...]
) -> Tuple[int, float, Tuple[str, ...]]:
    """Total order on candidate outcomes: feasible first, best DV, then the
    canonical order tuple — DV ties between distinct orders are broken
    deterministically, independent of enumeration or completion order."""
    return (0 if solution.feasible else 1, solution.dv, perm)


def _best_result(
    results: List[Tuple[MovementModel, TileSolution]]
) -> Tuple[MovementModel, TileSolution]:
    """The eps-aware total-order minimum over solved candidates.

    First minimize ``(infeasible, dv, perm)`` exactly, then — because
    mathematically tied DVs differ by ulps between symmetric orders — give
    the win to the smallest order tuple among results on the same DV
    plateau (within :data:`_DV_TIE_MARGIN` of the minimum, same
    feasibility class).  The plateau representative is independent of the
    solve sequence, which keeps warm-started searches byte-identical to
    cold ones.
    """
    best = min(results, key=lambda pair: _solution_key(pair[1], pair[0].perm))
    feasible_class = best[1].feasible
    ceiling = best[1].dv * (1.0 + _DV_TIE_MARGIN)
    tied = [
        pair
        for pair in results
        if pair[1].feasible == feasible_class and pair[1].dv <= ceiling
    ]
    return min(tied, key=lambda pair: pair[0].perm)


def _solve_payload(payload: Tuple) -> TileSolution:
    """Top-level worker entry (must be picklable for the process pool).

    The engine travels in the payload: worker processes must solve with
    the engine the parent resolved, not re-read their own environment.
    So does the warm-start hint (a plain dict of floats, picklable).
    """
    (model, capacity, min_tiles, quanta, constraints, max_parent, starts,
     hard_min_tiles, engine, x0_hint) = payload
    return solve_tiles(
        model,
        capacity,
        min_tiles=min_tiles,
        quanta=quanta,
        constraints=constraints,
        max_parent=max_parent,
        starts=starts,
        hard_min_tiles=hard_min_tiles,
        engine=engine,
        x0_hint=x0_hint,
    )


class _Solver:
    """Shared solve-once helper: memo lookup, solve, memo fill, counters."""

    def __init__(
        self,
        capacity: float,
        solve_kwargs: Dict[str, Any],
        *,
        policy: SearchPolicy,
        stats: SearchStats,
        digest: Optional[str],
        constraints_token: Optional[Hashable],
        memo: SolveMemo,
        engine: str,
        x0_hint: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.capacity = capacity
        self.kwargs = solve_kwargs
        self.engine = engine
        # The warm-start hint travels to every solve but stays OUT of the
        # memo key: a hinted solve converges somewhere on the same
        # DV-flat ridge as the multi-start sweep, and the solver's
        # canonical descent collapses every ridge point to one integer
        # solution — so, like the engine, the hint changes how fast a
        # solve runs, never what it returns.
        self.x0_hint = dict(x0_hint) if x0_hint else None
        self.policy = policy
        self.stats = stats
        self.memo = memo
        self.constraints_token = constraints_token
        self.digest = digest
        has_constraints = bool(solve_kwargs.get("constraints"))
        self.memo_usable = (
            policy.memoize
            and digest is not None
            and (not has_constraints or constraints_token is not None)
        )

    def key_for(self, model: MovementModel) -> Optional[Hashable]:
        if not self.memo_usable:
            return None
        return memo_key(
            self.digest,
            model,
            self.capacity,
            min_tiles=self.kwargs.get("min_tiles"),
            quanta=self.kwargs.get("quanta"),
            max_parent=self.kwargs.get("max_parent"),
            hard_min_tiles=self.kwargs.get("hard_min_tiles"),
            starts=self.kwargs.get("starts", 4),
            constraints_token=self.constraints_token,
        )

    def cached(self, model: MovementModel) -> Optional[TileSolution]:
        key = self.key_for(model)
        if key is None:
            return None
        solution = self.memo.get(key)
        if solution is not None:
            self.stats.memo_hits += 1
        return solution

    def payload(self, model: MovementModel) -> Tuple:
        return (
            model,
            self.capacity,
            self.kwargs.get("min_tiles"),
            self.kwargs.get("quanta"),
            tuple(self.kwargs.get("constraints") or ()),
            self.kwargs.get("max_parent"),
            self.kwargs.get("starts", 4),
            self.kwargs.get("hard_min_tiles"),
            self.engine,
            self.x0_hint,
        )

    def solve(self, model: MovementModel) -> TileSolution:
        cached = self.cached(model)
        if cached is not None:
            return cached
        started = time.perf_counter()
        solution = _solve_payload(self.payload(model))
        self.stats.solves += 1
        self.stats.solve_seconds += time.perf_counter() - started
        self.store(model, solution)
        return solution

    def store(self, model: MovementModel, solution: TileSolution) -> None:
        key = self.key_for(model)
        if key is not None:
            self.memo.put(key, solution)


#: Relative margin under which two DV values are considered tied.  The
#: lower bound and the solver evaluate DV through different floating-point
#: paths (and symmetric twin orders sum the same terms in different
#: sequences), so mathematically equal DVs differ by a few ulps.  Exact
#: comparisons once made the winner depend on which candidate was solved
#: first: each traversal order pruned the *other's* winner over a one-ulp
#: difference.  DV plateaus in this problem are separated by real gaps
#: (ceil steps), so values within this relative margin are the same
#: plateau — ties are broken by the order tuple, identically from every
#: solve sequence.
_DV_TIE_MARGIN = 1e-9


def _prunable(
    bound: float,
    perm: Tuple[str, ...],
    incumbent: Tuple[MovementModel, TileSolution],
) -> bool:
    """True when a candidate provably cannot win the eps-aware total order.

    The candidate's best conceivable outcome is ``(feasible, bound,
    perm)``; against a *feasible* incumbent it loses when the bound is
    worse than the incumbent's DV by more than the tie margin, or when it
    can at best tie (bound already inside the margin) and its order tuple
    is lexicographically larger — mirroring how :func:`_best_result`
    resolves solved ties, so pruning decisions agree with the winner
    selection no matter which candidate was solved first.
    """
    model, solution = incumbent
    if not solution.feasible:
        return False
    if bound > solution.dv * (1.0 + _DV_TIE_MARGIN):
        return True
    return (
        bound >= solution.dv * (1.0 - _DV_TIE_MARGIN) and perm > model.perm
    )


def _hint_index(
    bounded: List[Tuple[float, MovementModel]],
    incumbent_hint: Sequence[str],
) -> Optional[int]:
    """Position of the candidate the incumbent hint names, or ``None``.

    Exact permutation match first; failing that, the hint's DV *signature*
    (candidates are deduplicated by signature, so the neighbor's exact
    order may be represented by a symmetric twin).  A hint that matches
    nothing — wrong loops, wrong structure, adversarial neighbor — is
    simply ignored.
    """
    hint = tuple(incumbent_hint)
    for index, (_, model) in enumerate(bounded):
        if model.perm == hint:
            return index
    if not bounded:
        return None
    reference = bounded[0][1]
    try:
        digest = MovementModel(
            reference.chain,
            hint,
            reuse_intermediates=reference.reuse_intermediates,
        ).signature_digest()
    except Exception:  # noqa: BLE001 - adversarial hints must not raise
        return None
    for index, (_, model) in enumerate(bounded):
        if model.signature_digest() == digest:
            return index
    return None


def search_tiles(
    models: Sequence[MovementModel],
    capacity: float,
    *,
    min_tiles: Optional[Mapping[str, int]] = None,
    quanta: Optional[Mapping[str, int]] = None,
    constraints: Sequence[ConstraintFn] = (),
    constraints_token: Optional[Hashable] = None,
    max_parent: Optional[Mapping[str, int]] = None,
    starts: int = 4,
    hard_min_tiles: Optional[Mapping[str, int]] = None,
    policy: Optional[SearchPolicy] = None,
    stats: Optional[SearchStats] = None,
    digest: Optional[str] = None,
    executor: Optional[concurrent.futures.Executor] = None,
    engine: Optional[str] = None,
    x0_hint: Optional[Mapping[str, float]] = None,
    incumbent_hint: Optional[Sequence[str]] = None,
) -> Tuple[MovementModel, TileSolution]:
    """Pick the best (model, tile solution) among candidate orders.

    Equivalent to solving every candidate and taking the minimum under
    ``(infeasible, dv, order)`` — but pruned, memoized and parallelized
    according to ``policy``.

    Args:
        models: candidate movement models (one per DV signature).
        capacity: per-block memory capacity in bytes.
        constraints_token: hashable identity of ``constraints`` for the
            memo key; with constraints present but no token, memoization is
            disabled (safe default).
        digest: :func:`chain_digest` of the chain (computed if omitted).
        executor: optional externally managed pool reused across calls;
            otherwise one is created per call when ``policy.workers > 1``.
        stats: accumulator to fill (also folded into the process-global
            aggregate).
        engine: model evaluation engine for bounds and solves; ``None``
            defers to ``REPRO_MODEL_ENGINE``.  Like ``policy``, the engine
            changes how fast the search runs, never what it returns, so it
            stays out of the memo key.
        x0_hint: warm-start tiles forwarded to every candidate's
            :func:`solve_tiles` call (loop names are shared across orders
            of one chain, so a neighbor's tile magnitudes transfer).  The
            solver's canonical descent makes hinted and cold solves
            return the identical integer solution, so the hint changes
            how fast the search runs, never its result.
        incumbent_hint: a neighboring shape's winning order.  The matching
            candidate (exact permutation or DV-signature twin) is solved
            *first*, so the DV lower bound prunes against a near-optimal
            incumbent from the start.  The candidate set is never extended
            and pruning stays admissible, so — like every other knob here —
            the hint changes how fast the search runs, never its winner.
            Unmatched (e.g. adversarial) hints are ignored.

    Returns:
        the winning ``(model, solution)`` pair.
    """
    if not models:
        raise ValueError("search_tiles needs at least one candidate model")
    policy = policy or SearchPolicy.from_env()
    engine = resolve_model_engine(engine)
    local = SearchStats(searches=1, candidates=len(models))
    if digest is None and policy.memoize:
        digest = chain_digest(models[0].chain)
    solve_kwargs = {
        "min_tiles": min_tiles,
        "quanta": quanta,
        "constraints": tuple(constraints),
        "max_parent": max_parent,
        "starts": starts,
        "hard_min_tiles": hard_min_tiles,
    }
    solver = _Solver(
        capacity,
        solve_kwargs,
        policy=policy,
        stats=local,
        digest=digest,
        constraints_token=constraints_token,
        memo=_GLOBAL_MEMO,
        engine=engine,
        x0_hint=x0_hint,
    )

    if policy.prune:
        started = time.perf_counter()
        bounds = dv_lower_bounds(
            models, capacity, constraints, max_parent, engine=engine
        )
        bounded = list(zip(bounds, models))
        local.bound_evals += len(bounded)
        local.bound_seconds += time.perf_counter() - started
        bounded.sort(key=lambda item: (item[0], item[1].perm))
    else:
        bounded = [(-math.inf, model) for model in models]

    if incumbent_hint is not None:
        # Solve the neighbor's winning order first: its solution becomes
        # the incumbent before any other candidate is considered, so the
        # DV bound prunes maximally.  Reordering the solve sequence never
        # changes the reduce's total-order minimum.
        index = _hint_index(bounded, incumbent_hint)
        if index is not None and index > 0:
            bounded.insert(0, bounded.pop(index))

    results: List[Tuple[MovementModel, TileSolution]] = []
    incumbent: Optional[Tuple[MovementModel, TileSolution]] = None

    def push(model: MovementModel, solution: TileSolution) -> None:
        nonlocal incumbent
        results.append((model, solution))
        if incumbent is None or _solution_key(solution, model.perm) < (
            _solution_key(incumbent[1], incumbent[0].perm)
        ):
            incumbent = (model, solution)

    if policy.workers <= 1 or len(bounded) <= 1:
        for bound, model in bounded:
            if (
                policy.prune
                and incumbent is not None
                and _prunable(bound, model.perm, incumbent)
            ):
                local.pruned += 1
                continue
            push(model, solver.solve(model))
    else:
        # Parallel: solve the best-bounded candidate serially to seed the
        # incumbent, prune the rest against it once, then fan the
        # survivors out.  The pruning decision depends only on the leader's
        # result and the reduce is a total-order minimum, so the outcome is
        # independent of worker count and completion order.
        leader_bound, leader = bounded[0]
        push(leader, solver.solve(leader))
        survivors: List[MovementModel] = []
        for bound, model in bounded[1:]:
            if policy.prune and _prunable(bound, model.perm, incumbent):
                local.pruned += 1
                continue
            cached = solver.cached(model)
            if cached is not None:
                push(model, cached)
            else:
                survivors.append(model)
        if survivors:
            own_pool = executor is None
            pool = executor or concurrent.futures.ProcessPoolExecutor(
                max_workers=policy.workers
            )
            try:
                started = time.perf_counter()
                futures = [
                    pool.submit(_solve_payload, solver.payload(model))
                    for model in survivors
                ]
                for model, future in zip(survivors, futures):
                    solution = future.result()
                    local.solves += 1
                    solver.store(model, solution)
                    push(model, solution)
                local.solve_seconds += time.perf_counter() - started
            finally:
                if own_pool:
                    pool.shutdown()

    if stats is not None:
        stats.merge(local)
    record_search_stats(local)
    return _best_result(results)


def memoized_solve_tiles(
    model: MovementModel,
    capacity: float,
    *,
    min_tiles: Optional[Mapping[str, int]] = None,
    quanta: Optional[Mapping[str, int]] = None,
    constraints: Sequence[ConstraintFn] = (),
    constraints_token: Optional[Hashable] = None,
    max_parent: Optional[Mapping[str, int]] = None,
    starts: int = 4,
    hard_min_tiles: Optional[Mapping[str, int]] = None,
    policy: Optional[SearchPolicy] = None,
    digest: Optional[str] = None,
    stats: Optional[SearchStats] = None,
    engine: Optional[str] = None,
    x0_hint: Optional[Mapping[str, float]] = None,
) -> TileSolution:
    """Memo-aware :func:`solve_tiles` for fixed-order solves.

    Keyed on the exact permutation (not the signature), so ablation paths
    that deliberately compare symmetric orders still solve under their own
    order while repeated solves of the same order hit the memo.  The
    engine is not part of the key (both engines return bit-identical
    solutions), and neither is ``x0_hint`` — the solver canonicalizes the
    refined integer point across the DV-flat ridge, so a warm start
    changes solve latency, never the solution.
    """
    policy = policy or SearchPolicy.from_env()
    local = SearchStats()
    solution: Optional[TileSolution] = None
    key: Optional[Hashable] = None
    if (
        policy.memoize
        and (not constraints or constraints_token is not None)
    ):
        if digest is None:
            digest = chain_digest(model.chain)
        key = memo_key(
            digest,
            model,
            capacity,
            min_tiles=min_tiles,
            quanta=quanta,
            max_parent=max_parent,
            hard_min_tiles=hard_min_tiles,
            starts=starts,
            constraints_token=constraints_token,
            by_signature=False,
        )
        solution = _GLOBAL_MEMO.get(key)
        if solution is not None:
            local.memo_hits += 1
    if solution is None:
        started = time.perf_counter()
        solution = solve_tiles(
            model,
            capacity,
            min_tiles=min_tiles,
            quanta=quanta,
            constraints=constraints,
            max_parent=max_parent,
            starts=starts,
            hard_min_tiles=hard_min_tiles,
            engine=engine,
            x0_hint=x0_hint,
        )
        local.solves += 1
        local.solve_seconds += time.perf_counter() - started
        if key is not None:
            _GLOBAL_MEMO.put(key, solution)
    if stats is not None:
        stats.merge(local)
    record_search_stats(local)
    return solution
