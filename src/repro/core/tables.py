"""Compiled movement tables: batched Algorithm-1 DV/MU evaluation.

:class:`repro.core.movement.MovementModel` is the scalar *reference*
engine: every ``volume()``/``usage()`` call walks term objects over a tile
dict.  This module compiles a model once into a :class:`MovementTables`
object — flat per-term tuples of (loop column, coefficient) entries plus
numpy-ready column indices — and evaluates the same formulas either for a
single tile vector (the solver's hot path) or for an ``(N, L)`` candidate
matrix in a handful of numpy calls (the integer-refinement lattice, the
per-order bound probes).

**Bit-for-bit contract.**  The tables engine must return *exactly* the
floats the scalar engine returns, for values and gradients alike, so the
two engines produce byte-identical plans.  Every evaluator below therefore
replays the reference implementation's floating-point operation sequence:

* reductions over terms, dims and loop entries stay sequential Python
  loops (numpy's ``sum``/``dot`` use pairwise summation, which associates
  differently);
* only the candidate axis ``N`` is vectorized — elementwise numpy ops on
  float64 arrays perform the same IEEE-754 operation as Python floats;
* integer inputs (extents, coefficients, byte counts) are exact in double
  precision, so pre-converting them to floats changes nothing.

Engine selection: ``REPRO_MODEL_ENGINE`` (``tables`` by default, ``scalar``
for the reference path); call sites may override per call.  Compiled
tables are memoized per model instance and, across models, in a bounded
process-global LRU keyed by chain identity + ``signature_digest()`` —
permutations with equal signatures share one compilation.

Stitched chains (:mod:`repro.ir.stitch`) compile through the same tables:
each stitched memory-intensive op contributes ordinary MU rows (its tile
footprint joins every access-group usage sum), its bridge tensor has no DV
term at all (it is a chain intermediate), and the unified-buffer capacity
constraint (:class:`_ConstraintTable`, the "capacity row") is what rejects
tilings whose stitched intermediate tile overflows the shared buffer — so
the bit-for-bit scalar/tables contract extends to stitched plans with no
new code paths.
"""

from __future__ import annotations

import itertools
import math
import os
import threading
import weakref
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .movement import MovementModel

#: Environment knob selecting the model evaluation engine.
ENV_MODEL_ENGINE = "REPRO_MODEL_ENGINE"
ENGINE_SCALAR = "scalar"
ENGINE_TABLES = "tables"
_ENGINES = (ENGINE_SCALAR, ENGINE_TABLES)


def resolve_model_engine(engine: Optional[str] = None) -> str:
    """Validated engine name; ``None`` defers to ``REPRO_MODEL_ENGINE``.

    Both engines return bit-identical results — the knob exists so the
    scalar reference path stays exercised (CI) and diagnosable.
    """
    if engine is None:
        engine = os.environ.get(ENV_MODEL_ENGINE, ENGINE_TABLES)
    engine = engine.strip().lower()
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown model engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


def model_engine() -> str:
    """The engine the environment currently selects."""
    return resolve_model_engine(None)


#: Environment knob disabling the generated (unrolled) row kernels.
ENV_TABLES_CODEGEN = "REPRO_TABLES_CODEGEN"


def codegen_enabled() -> bool:
    """Whether compiled tables may specialize row kernels via codegen."""
    value = os.environ.get(ENV_TABLES_CODEGEN, "1").strip().lower()
    return value not in ("0", "false", "off")


# ----------------------------------------------------------------------
# row-kernel code generation
# ----------------------------------------------------------------------
# The solver evaluates DV/MU and their gradients thousands of times per
# tile solve.  The interpreted row kernels below walk nested per-term
# tuples; for solver-facing evaluators we instead *generate* straight-line
# Python source with every loop unrolled — the identical floating-point
# operation sequence, minus all iteration and unpacking overhead — and
# ``exec`` it once per compiled table.  Identity operations the reference
# performs (``x * 1.0``, ``0.0 + x``) are elided, which IEEE-754 makes
# bit-exact for the finite positive values these formulas produce.


def _emit_span(dim, value_of) -> str:
    """Source expression for one dim's span, ``1.0 + sum coeff*(T-1)``.

    The reference accumulates left-associatively starting from ``1.0``;
    a chained ``+`` expression reproduces that exactly.  Entries with a
    negative column add their precomputed constant (pinned loops).
    """
    expr = "1.0"
    for col, coeff in dim:
        if col >= 0:
            expr += f" + {coeff!r} * ({value_of(col)} - 1.0)"
        else:
            expr += f" + {coeff!r}"
    return expr


def _emit_footprint(lines, dims, value_of, prefix) -> str:
    """Emit span locals for ``dims``; return the footprint expression."""
    names = []
    for di, dim in enumerate(dims):
        name = f"{prefix}s{di}"
        lines.append(f"    {name} = {_emit_span(dim, value_of)}")
        names.append(name)
    return " * ".join(names) if names else "1.0"


# ----------------------------------------------------------------------
# compiled tables
# ----------------------------------------------------------------------
class _TermTable:
    """One :class:`MovementTerm` flattened to loop-column entries."""

    __slots__ = ("elem_bytes", "mults", "dims")

    def __init__(
        self,
        elem_bytes: float,
        mults: Tuple[Tuple[int, int], ...],
        dims: Tuple[Tuple[Tuple[int, float], ...], ...],
    ) -> None:
        self.elem_bytes = elem_bytes  # float (exact int value)
        self.mults = mults  # ((column, full extent), ...) sorted as stored
        self.dims = dims  # per dim: ((column, coeff), ...) in terms order


class _AccessTable:
    """One (op, access) MU entry; pinned loops folded to constant addends."""

    __slots__ = ("elem_bytes", "dims")

    def __init__(
        self,
        elem_bytes: float,
        dims: Tuple[Tuple[Tuple[int, float], ...], ...],
    ) -> None:
        self.elem_bytes = elem_bytes
        # Per dim: ((column, coeff), ...) with column -1 meaning "add the
        # stored constant" — a loop the distribution buffer pins at full
        # extent contributes coeff*(extent-1) regardless of the tiles.
        self.dims = dims


class _ConstraintTable:
    """A compiled access-group constraint: sum of footprints - capacity."""

    __slots__ = ("accesses", "capacity", "_k_row", "_k_gradient")

    def __init__(
        self, accesses: Tuple[_AccessTable, ...], capacity: float
    ) -> None:
        self.accesses = accesses
        self.capacity = capacity
        self._k_row: Optional[Callable] = None
        self._k_gradient: Optional[Callable] = None

    def ensure_fast_kernels(self, width: int) -> bool:
        """Generate unrolled row/gradient kernels (see module notes)."""
        if self._k_row is not None:
            return True
        if not codegen_enabled():
            return False
        used = sorted(
            {
                col
                for acc in self.accesses
                for dim in acc.dims
                for col, _ in dim
                if col >= 0
            }
        )
        tile = "t{}".format
        lines = ["def row(t):"]
        for col in used:
            lines.append(f"    t{col} = t[{col}]")
        lines.append("    usage = 0.0")
        for acc in self.accesses:
            footprint = _emit_footprint(lines, acc.dims, tile, "")
            lines.append(f"    usage = usage + ({footprint}) * {acc.elem_bytes!r}")
        lines.append(f"    return usage - {self.capacity!r}")
        source = ["\n".join(lines)]

        lines = ["def gradient(t):"]
        for col in used:
            lines.append(f"    t{col} = t[{col}]")
        for col in used:
            lines.append(f"    g{col} = 0.0")
        for acc in self.accesses:
            footprint = _emit_footprint(lines, acc.dims, tile, "")
            lines.append(f"    fpb = ({footprint}) * {acc.elem_bytes!r}")
            for di, dim in enumerate(acc.dims):
                for col, coeff in dim:
                    if col >= 0:
                        lines.append(
                            f"    g{col} = g{col} + fpb * ({coeff!r} / s{di})"
                        )
        used_set = set(used)
        returned = ", ".join(
            f"g{col}" if col in used_set else "0.0" for col in range(width)
        )
        lines.append(f"    return [{returned}]")
        source.append("\n".join(lines))

        namespace: Dict[str, Any] = {}
        exec(
            compile(
                "\n\n".join(source), "<constraint-table-kernels>", "exec"
            ),
            namespace,
        )
        self._k_gradient = namespace["gradient"]
        self._k_row = namespace["row"]
        return True

    def row(self, t: Sequence[float]) -> float:
        kernel = self._k_row
        if kernel is not None:
            return kernel(t)
        usage = 0.0
        for acc in self.accesses:
            footprint = 1.0
            for dim in acc.dims:
                span = 1.0
                for col, coeff in dim:
                    span += coeff * (t[col] - 1.0)
                footprint *= span
            usage += footprint * acc.elem_bytes
        return usage - self.capacity

    def batch(self, rows: np.ndarray) -> np.ndarray:
        usage = np.zeros(rows.shape[0])
        for acc in self.accesses:
            footprint = None
            for dim in acc.dims:
                span = np.ones(rows.shape[0])
                for col, coeff in dim:
                    span = span + coeff * (rows[:, col] - 1.0)
                footprint = span if footprint is None else footprint * span
            if footprint is None:
                footprint = np.ones(rows.shape[0])
            usage = usage + footprint * acc.elem_bytes
        return usage - self.capacity

    def gradient_row(self, t: Sequence[float]) -> List[float]:
        kernel = self._k_gradient
        if kernel is not None:
            return kernel(t)
        grad = [0.0] * len(t)
        for acc in self.accesses:
            spans = []
            footprint = 1.0
            for dim in acc.dims:
                span = 1.0
                for col, coeff in dim:
                    span += coeff * (t[col] - 1.0)
                spans.append(span)
                footprint *= span
            footprint_bytes = footprint * acc.elem_bytes
            for dim, span in zip(acc.dims, spans):
                for col, coeff in dim:
                    if col >= 0:
                        grad[col] += footprint_bytes * (coeff / span)
        return grad


class MovementTables:
    """A :class:`MovementModel` compiled for vectorized evaluation.

    The loop universe is ``chain.loop_extents()`` in its stable order; a
    tile *row* is a length-``L`` vector over that universe (loops a caller
    does not control sit at 1, exactly like the scalar engine's
    ``tiles.get(name, 1)`` default).  ``*_row`` methods take one row of
    Python floats; ``*_batch`` methods take an ``(N, L)`` float64 matrix.
    """

    def __init__(self, model: MovementModel) -> None:
        self.chain = model.chain
        extents = model.chain.loop_extents()
        self.loop_names: Tuple[str, ...] = tuple(extents)
        self.index: Dict[str, int] = {
            name: col for col, name in enumerate(self.loop_names)
        }
        self.extents: Tuple[int, ...] = tuple(
            extents[name] for name in self.loop_names
        )
        self.terms: Tuple[_TermTable, ...] = tuple(
            _TermTable(
                float(term.elem_bytes),
                tuple(
                    (self.index[name], extent)
                    for name, extent in term.multipliers
                ),
                tuple(
                    tuple(
                        (self.index[name], float(coeff))
                        for name, coeff in dim.terms
                    )
                    for dim in term.access.dims
                ),
            )
            for term in model.terms
        )
        # MU plan mirrors MovementModel._usage_plan: per op, per access,
        # with distribution-buffer overlays folded into constant addends.
        ops: List[Tuple[_AccessTable, ...]] = []
        for entries in model._usage_plan:
            acc_tables: List[_AccessTable] = []
            for access, elem_bytes, overlay in entries:
                pinned = {name: extent for name, extent in overlay}
                dims = tuple(
                    tuple(
                        (-1, float(coeff * (pinned[name] - 1)))
                        if name in pinned
                        else (self.index[name], float(coeff))
                        for name, coeff in dim.terms
                    )
                    for dim in access.dims
                )
                acc_tables.append(_AccessTable(float(elem_bytes), dims))
            ops.append(tuple(acc_tables))
        self.usage_ops: Tuple[Tuple[_AccessTable, ...], ...] = tuple(ops)
        # Flattened gradient plans: one (col, coeff, dim_index) triple per
        # span entry, hoisting the nested dim iteration out of the hot
        # per-SLSQP-iteration gradient kernels.
        self._grad_terms: Tuple[Tuple, ...] = tuple(
            (
                term.elem_bytes,
                term.mults,
                term.dims,
                tuple(
                    (col, coeff, di)
                    for di, dim in enumerate(term.dims)
                    for col, coeff in dim
                ),
            )
            for term in self.terms
        )
        self._usage_grad_ops: Tuple[Tuple[Tuple, ...], ...] = tuple(
            tuple(
                (
                    acc.elem_bytes,
                    acc.dims,
                    tuple(
                        (col, coeff, di)
                        for di, dim in enumerate(acc.dims)
                        for col, coeff in dim
                        if col >= 0
                    ),
                )
                for acc in entries
            )
            for entries in self.usage_ops
        )
        # Generated straight-line kernels (see ensure_fast_kernels); None
        # until a solver-facing evaluator requests them.
        self._kernels_ready = False
        self._k_volume_smooth: Optional[Callable] = None
        self._k_usage: Optional[Callable] = None
        self._k_volume_gradient: Optional[Callable] = None
        self._k_usage_gradient: Optional[Callable] = None

    # -- generated kernels ---------------------------------------------
    def ensure_fast_kernels(self) -> bool:
        """Generate and install the unrolled row kernels (idempotent).

        Called by :class:`TablesEvaluator` — only tables that reach a tile
        solve pay the (one-time, memoized with the tables) generation
        cost; single-shot uses like order probing stay interpreted.
        Returns False when ``REPRO_TABLES_CODEGEN`` disables generation.
        """
        if self._kernels_ready:
            return True
        if not codegen_enabled():
            return False
        namespace: Dict[str, Any] = {}
        exec(
            compile(self._kernel_source(), "<movement-tables-kernels>", "exec"),
            namespace,
        )
        self._k_volume_smooth = namespace["volume_smooth"]
        self._k_usage = namespace["usage"]
        self._k_volume_gradient = namespace["volume_gradient"]
        self._k_usage_gradient = namespace["usage_gradient"]
        self._kernels_ready = True
        return True

    def _kernel_source(self) -> str:
        """Python source for the five unrolled row kernels.

        Each kernel replays the corresponding interpreted method's exact
        operation sequence on a full-universe tile row ``t``.
        """
        width = len(self.loop_names)
        used = sorted(
            {col for term in self.terms for col, _ in term.mults}
            | {
                col
                for term in self.terms
                for dim in term.dims
                for col, _ in dim
            }
            | {
                col
                for entries in self.usage_ops
                for acc in entries
                for dim in acc.dims
                for col, _ in dim
                if col >= 0
            }
        )

        def unpack(lines: List[str]) -> None:
            for col in used:
                lines.append(f"    t{col} = t[{col}]")

        tile = "t{}".format
        source: List[str] = []

        # The exact (ceil-based) volume intentionally has no generated
        # kernel: the solve hot path only evaluates smooth DV, MU, and
        # their gradients row-wise; exact DV runs through the batched
        # numpy path (integer refinement) or the interpreted fallback.

        # volume_smooth: max(extent/T, 1.0) factors, identity multiplies
        # skipped.
        lines = ["def volume_smooth(t):"]
        unpack(lines)
        lines.append("    volume = 0.0")
        for term in self.terms:
            footprint = _emit_footprint(lines, term.dims, tile, "")
            lines.append(f"    dm = ({footprint}) * {term.elem_bytes!r}")
            for col, extent in term.mults:
                lines.append(f"    q = {float(extent)!r} / t{col}")
                lines.append("    if q > 1.0:")
                lines.append("        dm = dm * q")
            lines.append("    volume = volume + dm")
        lines.append("    return volume")
        source.append("\n".join(lines))

        # usage: per-op footprint totals, running peak.
        lines = ["def usage(t):"]
        unpack(lines)
        lines.append("    peak = 0.0")
        for entries in self.usage_ops:
            lines.append("    total = 0.0")
            for acc in entries:
                footprint = _emit_footprint(lines, acc.dims, tile, "")
                if footprint == "1.0":
                    lines.append(f"    total = total + {acc.elem_bytes!r}")
                else:
                    lines.append(
                        f"    total = total + ({footprint}) * {acc.elem_bytes!r}"
                    )
            lines.append("    if total > peak:")
            lines.append("        peak = total")
        lines.append("    return peak")
        source.append("\n".join(lines))

        # volume_gradient: smooth DV plus per-column partials.
        grad_cols = sorted(
            {col for term in self.terms for col, _ in term.mults}
            | {
                col
                for term in self.terms
                for dim in term.dims
                for col, _ in dim
            }
        )
        lines = ["def volume_gradient(t):"]
        unpack(lines)
        lines.append("    volume = 0.0")
        for col in grad_cols:
            lines.append(f"    g{col} = 0.0")
        for elem_bytes, mults, dims, entries in self._grad_terms:
            footprint = _emit_footprint(lines, dims, tile, "")
            lines.append(f"    dm = ({footprint}) * {elem_bytes!r}")
            for col, extent in mults:
                lines.append(f"    q = {float(extent)!r} / t{col}")
                lines.append("    if q > 1.0:")
                lines.append("        dm = dm * q")
            lines.append("    volume = volume + dm")
            for col, coeff, di in entries:
                lines.append(f"    g{col} = g{col} + dm * ({coeff!r} / s{di})")
            for col, extent in mults:
                lines.append(f"    if {float(extent)!r} / t{col} > 1.0:")
                lines.append(f"        g{col} = g{col} - dm / t{col}")
        returned = ", ".join(
            f"g{col}" if col in set(grad_cols) else "0.0"
            for col in range(width)
        )
        lines.append(f"    return volume, [{returned}]")
        source.append("\n".join(lines))

        # usage_gradient: peak op's subgradient (first-argmax selection).
        lines = ["def usage_gradient(t):"]
        unpack(lines)
        lines.append("    peak = 0.0")
        lines.append(f"    out = [0.0] * {width}")
        for accesses in self._usage_grad_ops:
            op_cols = sorted(
                {col for _, _, entries in accesses for col, _, _ in entries}
            )
            lines.append("    total = 0.0")
            for col in op_cols:
                lines.append(f"    og{col} = 0.0")
            for elem_bytes, dims, entries in accesses:
                footprint = _emit_footprint(lines, dims, tile, "")
                lines.append(f"    fpb = ({footprint}) * {elem_bytes!r}")
                lines.append("    total = total + fpb")
                for col, coeff, di in entries:
                    lines.append(
                        f"    og{col} = og{col} + fpb * ({coeff!r} / s{di})"
                    )
            selected = ", ".join(
                f"og{col}" if col in set(op_cols) else "0.0"
                for col in range(width)
            )
            lines.append("    if total > peak:")
            lines.append("        peak = total")
            lines.append(f"        out = [{selected}]")
        lines.append("    return peak, out")
        source.append("\n".join(lines))
        return "\n\n".join(source)

    # -- row (single tile vector) paths --------------------------------
    def row_of(self, tiles: Mapping[str, float]) -> List[float]:
        """A full-universe row from a (possibly partial) tile mapping."""
        return [float(tiles.get(name, 1)) for name in self.loop_names]

    def volume_row(self, t: Sequence[float], *, exact: bool = True) -> float:
        """DV of one tile row — scalar shim over the compiled tables."""
        kernel = None if exact else self._k_volume_smooth
        if kernel is not None:
            return kernel(t)
        volume = 0.0
        for term in self.terms:
            if exact:
                dm = term.elem_bytes
                eff: Dict[int, float] = {}
                for col, extent in term.mults:
                    trips = math.ceil(extent / t[col])
                    eff[col] = extent / trips
                    dm *= trips
                footprint = 1.0
                for dim in term.dims:
                    span = 1.0
                    for col, coeff in dim:
                        value = eff.get(col)
                        if value is None:
                            value = t[col]
                        span += coeff * (value - 1.0)
                    footprint *= span
                volume += dm * footprint
            else:
                footprint = 1.0
                for dim in term.dims:
                    span = 1.0
                    for col, coeff in dim:
                        span += coeff * (t[col] - 1.0)
                    footprint *= span
                dm = footprint * term.elem_bytes
                for col, extent in term.mults:
                    # max(q, 1.0) clamps to an identity multiply; skipping
                    # it is bit-exact (``x * 1.0 == x``).
                    if extent / t[col] > 1.0:
                        dm *= extent / t[col]
                volume += dm
        return volume

    def usage_row(self, t: Sequence[float]) -> float:
        """MU of one tile row — scalar shim over the compiled tables."""
        kernel = self._k_usage
        if kernel is not None:
            return kernel(t)
        peak = 0.0
        for entries in self.usage_ops:
            total = 0.0
            for acc in entries:
                footprint = 1.0
                for dim in acc.dims:
                    span = 1.0
                    for col, coeff in dim:
                        if col >= 0:
                            span += coeff * (t[col] - 1.0)
                        else:
                            span += coeff
                    footprint *= span
                total += footprint * acc.elem_bytes
            peak = max(peak, total)
        return peak

    def volume_smooth_gradient_row(
        self, t: Sequence[float]
    ) -> Tuple[float, List[float]]:
        """Smooth DV and its per-column partials (reference op order).

        Runs the exact operation sequence of
        :meth:`MovementModel.volume_smooth_gradient` over the flattened
        gradient plan; multiplier factors clamped at 1.0 skip their
        (identity) multiply, which is bit-exact since ``x * 1.0 == x``.
        """
        kernel = self._k_volume_gradient
        if kernel is not None:
            return kernel(t)
        volume = 0.0
        grad = [0.0] * len(self.loop_names)
        for elem_bytes, mults, dims, entries in self._grad_terms:
            spans = []
            append = spans.append
            footprint = 1.0
            for dim in dims:
                span = 1.0
                for col, coeff in dim:
                    span += coeff * (t[col] - 1.0)
                append(span)
                footprint *= span
            dm = footprint * elem_bytes
            active = None
            for col, extent in mults:
                if extent / t[col] > 1.0:
                    dm *= extent / t[col]
                    if active is None:
                        active = [col]
                    else:
                        active.append(col)
            volume += dm
            for col, coeff, di in entries:
                grad[col] += dm * (coeff / spans[di])
            if active is not None:
                for col in active:
                    grad[col] -= dm / t[col]
        return volume, grad

    def usage_gradient_row(
        self, t: Sequence[float]
    ) -> Tuple[float, List[float]]:
        """MU and the peak operator's subgradient (reference op order)."""
        kernel = self._k_usage_gradient
        if kernel is not None:
            return kernel(t)
        peak = 0.0
        width = len(self.loop_names)
        peak_grad = [0.0] * width
        for accesses in self._usage_grad_ops:
            total = 0.0
            grad = [0.0] * width
            for elem_bytes, dims, entries in accesses:
                spans = []
                append = spans.append
                footprint = 1.0
                for dim in dims:
                    span = 1.0
                    for col, coeff in dim:
                        if col >= 0:
                            span += coeff * (t[col] - 1.0)
                        else:
                            span += coeff
                    append(span)
                    footprint *= span
                footprint_bytes = footprint * elem_bytes
                total += footprint_bytes
                for col, coeff, di in entries:
                    grad[col] += footprint_bytes * (coeff / spans[di])
            if total > peak:
                peak, peak_grad = total, grad
        return peak, peak_grad

    # -- batched (N, L) paths ------------------------------------------
    def volume_batch(
        self, rows: np.ndarray, *, exact: bool = True
    ) -> np.ndarray:
        """DV for every row of an ``(N, L)`` candidate-tile matrix."""
        count = rows.shape[0]
        volume = np.zeros(count)
        for term in self.terms:
            if exact:
                dm: Any = None
                eff: Dict[int, np.ndarray] = {}
                for col, extent in term.mults:
                    trips = np.ceil(extent / rows[:, col])
                    eff[col] = extent / trips
                    dm = (
                        trips * term.elem_bytes if dm is None else dm * trips
                    )
                footprint = None
                for dim in term.dims:
                    span = np.ones(count)
                    for col, coeff in dim:
                        value = eff.get(col)
                        if value is None:
                            value = rows[:, col]
                        span = span + coeff * (value - 1.0)
                    footprint = (
                        span if footprint is None else footprint * span
                    )
                if footprint is None:
                    footprint = np.ones(count)
                if dm is None:
                    volume = volume + term.elem_bytes * footprint
                else:
                    volume = volume + dm * footprint
            else:
                footprint = None
                for dim in term.dims:
                    span = np.ones(count)
                    for col, coeff in dim:
                        span = span + coeff * (rows[:, col] - 1.0)
                    footprint = (
                        span if footprint is None else footprint * span
                    )
                if footprint is None:
                    footprint = np.ones(count)
                dm = footprint * term.elem_bytes
                for col, extent in term.mults:
                    dm = dm * np.maximum(extent / rows[:, col], 1.0)
                volume = volume + dm
        return volume

    def usage_batch(self, rows: np.ndarray) -> np.ndarray:
        """MU for every row of an ``(N, L)`` candidate-tile matrix."""
        count = rows.shape[0]
        peak = np.zeros(count)
        for entries in self.usage_ops:
            total = np.zeros(count)
            for acc in entries:
                footprint = None
                for dim in acc.dims:
                    span = np.ones(count)
                    for col, coeff in dim:
                        if col >= 0:
                            span = span + coeff * (rows[:, col] - 1.0)
                        else:
                            span = span + coeff
                    footprint = (
                        span if footprint is None else footprint * span
                    )
                if footprint is None:
                    footprint = np.ones(count)
                total = total + footprint * acc.elem_bytes
            peak = np.maximum(peak, total)
        return peak

    def slack_batch(self, rows: np.ndarray, capacity: float) -> np.ndarray:
        """``capacity - MU`` per row (the solver's feasibility margin)."""
        return capacity - self.usage_batch(rows)

    # -- constraint compilation ----------------------------------------
    def compile_constraint(self, fn: Any) -> Optional[_ConstraintTable]:
        """Compile an access-group constraint (e.g. the NPU Unified Buffer
        bound) into batched form, or ``None`` when ``fn`` is not of that
        shape — callers then fall back to the scalar callable, which keeps
        arbitrary :data:`~repro.core.solver.ConstraintFn` objects working.
        """
        accesses = getattr(fn, "accesses", None)
        capacity = getattr(fn, "capacity", None)
        chain = getattr(fn, "chain", None)
        if accesses is None or capacity is None or chain is not self.chain:
            return None
        tables: List[_AccessTable] = []
        try:
            for access in accesses:
                dims = tuple(
                    tuple(
                        (self.index[name], float(coeff))
                        for name, coeff in dim.terms
                    )
                    for dim in access.dims
                )
                elem_bytes = float(
                    self.chain.tensors[access.tensor].dtype.nbytes
                )
                tables.append(_AccessTable(elem_bytes, dims))
        except (KeyError, AttributeError):
            return None
        return _ConstraintTable(tuple(tables), float(capacity))


# ----------------------------------------------------------------------
# memoization
# ----------------------------------------------------------------------
class _TablesMemo:
    """Bounded process-global LRU of compiled :class:`MovementTables`."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, MovementTables]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_compile(
        self, key: Hashable, compile_fn: Callable[[], MovementTables]
    ) -> MovementTables:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        # Compile outside the lock: compilation is pure, and a rare
        # duplicate compile beats serializing every cache miss.
        entry = compile_fn()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


_GLOBAL_TABLES_MEMO = _TablesMemo()

# Chains are not hashable (they hold tensor dicts), so the cross-model memo
# key uses a per-chain token: a counter bound to the chain's lifetime.  The
# token (not ``id()``) guards against address reuse after garbage
# collection; ``signature_digest()`` already covers reuse_intermediates and
# the movement structure, and equal signatures on one chain induce
# bit-identical DV/MU functions — sharing one compilation is exact.
_CHAIN_TOKENS: Dict[int, int] = {}
_CHAIN_TOKEN_LOCK = threading.Lock()
_NEXT_CHAIN_TOKEN = itertools.count()


def _drop_chain_token(address: int) -> None:
    with _CHAIN_TOKEN_LOCK:
        _CHAIN_TOKENS.pop(address, None)


def _chain_token(chain: Any) -> int:
    address = id(chain)
    with _CHAIN_TOKEN_LOCK:
        token = _CHAIN_TOKENS.get(address)
        if token is None:
            token = next(_NEXT_CHAIN_TOKEN)
            _CHAIN_TOKENS[address] = token
            weakref.finalize(chain, _drop_chain_token, address)
        return token


def movement_tables(model: MovementModel) -> MovementTables:
    """Compiled tables for ``model`` (per-instance and LRU memoized)."""
    tables = getattr(model, "_tables", None)
    if tables is not None:
        return tables
    key = (_chain_token(model.chain), model.signature_digest())
    tables = _GLOBAL_TABLES_MEMO.get_or_compile(
        key, lambda: MovementTables(model)
    )
    model._tables = tables  # dropped on pickling (MovementModel.__getstate__)
    return tables


def tables_memo_stats() -> Dict[str, int]:
    """Counters of the process-global tables memo."""
    return _GLOBAL_TABLES_MEMO.stats()


def clear_tables_memo() -> None:
    """Empty the process-global tables memo (tests, benchmarks)."""
    _GLOBAL_TABLES_MEMO.clear()


# ----------------------------------------------------------------------
# solver-facing evaluators
# ----------------------------------------------------------------------
class ScalarEvaluator:
    """Reference engine: dict-based :class:`MovementModel` calls.

    Vectors are tile values over ``names`` (the solve's loop order); loops
    outside ``names`` implicitly sit at 1 via the model's ``tiles.get``
    defaults, exactly as the pre-tables solver behaved.
    """

    engine = ENGINE_SCALAR

    def __init__(
        self,
        model: MovementModel,
        names: Sequence[str],
        constraints: Sequence[Callable[[Mapping[str, float]], float]] = (),
    ) -> None:
        self.model = model
        self.names = list(names)
        self.constraints = list(constraints)

    def _tiles(self, values: Sequence[float]) -> Dict[str, float]:
        return {n: float(v) for n, v in zip(self.names, values)}

    def volume_smooth(self, values: Sequence[float]) -> float:
        return self.model.volume(self._tiles(values), exact=False)

    def volume_exact(self, values: Sequence[float]) -> float:
        return self.model.volume(self._tiles(values), exact=True)

    def usage(self, values: Sequence[float]) -> float:
        return self.model.usage(self._tiles(values))

    def volume_smooth_gradient(
        self, values: Sequence[float]
    ) -> Tuple[float, np.ndarray]:
        volume, grad = self.model.volume_smooth_gradient(self._tiles(values))
        return volume, np.array([grad[n] for n in self.names])

    def usage_gradient(
        self, values: Sequence[float]
    ) -> Tuple[float, np.ndarray]:
        usage, grad = self.model.usage_gradient(self._tiles(values))
        return usage, np.array([grad[n] for n in self.names])

    def constraint(self, i: int, values: Sequence[float]) -> float:
        return self.constraints[i](self._tiles(values))

    def constraint_has_gradient(self, i: int) -> bool:
        return hasattr(self.constraints[i], "gradient")

    def constraint_gradient(
        self, i: int, values: Sequence[float]
    ) -> np.ndarray:
        grad = self.constraints[i].gradient(self._tiles(values))
        return np.array([grad.get(n, 0.0) for n in self.names])


class TablesEvaluator:
    """Compiled engine: row/batch evaluation over the tables."""

    engine = ENGINE_TABLES

    def __init__(
        self,
        model: MovementModel,
        names: Sequence[str],
        constraints: Sequence[Callable[[Mapping[str, float]], float]] = (),
        *,
        fast_kernels: bool = True,
    ) -> None:
        self.model = model
        self.tables = movement_tables(model)
        self.names = list(names)
        self.cols = [self.tables.index[n] for n in self.names]
        self._cols_arr = np.array(self.cols, dtype=np.intp)
        self._width = len(self.tables.loop_names)
        self.constraints = list(constraints)
        self._compiled = [
            self.tables.compile_constraint(fn) for fn in constraints
        ]
        # Solver-facing evaluators run thousands of row evaluations per
        # solve — switch the shared tables to their generated kernels.
        # ``fast_kernels=False`` skips the generation: batch-only users
        # (bound probes) never touch the row kernels, and warm-started
        # solves converge in so few evaluations that interpreted rows beat
        # paying the per-model codegen cost.  The interpreted and generated
        # paths return bit-identical floats (module contract), so this is
        # a latency knob only.
        if fast_kernels:
            self.ensure_fast_kernels()
        # One SLSQP point is evaluated by several closures (objective,
        # capacity slack, jacobians); the solver hands them the *same*
        # values array per point, so the expanded row is cached by object
        # identity.  Values arrays are never mutated, so identity implies
        # equal contents — the cached row is bit-identical to a rebuild.
        self._row_src: Optional[object] = None
        self._row_cache: Optional[List[float]] = None

    def ensure_fast_kernels(self) -> None:
        """Generate the unrolled row kernels for the tables and compiled
        constraints (idempotent; shared across evaluators of one model)."""
        self.tables.ensure_fast_kernels()
        for compiled in self._compiled:
            if compiled is not None:
                compiled.ensure_fast_kernels(self._width)

    def _row(self, values: Sequence[float]) -> List[float]:
        if values is self._row_src:
            return self._row_cache  # type: ignore[return-value]
        row = [1.0] * self._width
        for col, value in zip(self.cols, values):
            row[col] = float(value)
        self._row_src = values
        self._row_cache = row
        return row

    def matrix(self, values: np.ndarray) -> np.ndarray:
        """Expand an ``(N, len(names))`` matrix to full-universe rows."""
        rows = np.ones((values.shape[0], self._width))
        rows[:, self._cols_arr] = values
        return rows

    def volume_smooth(self, values: Sequence[float]) -> float:
        return self.tables.volume_row(self._row(values), exact=False)

    def volume_exact(self, values: Sequence[float]) -> float:
        return self.tables.volume_row(self._row(values), exact=True)

    def usage(self, values: Sequence[float]) -> float:
        return self.tables.usage_row(self._row(values))

    def volume_smooth_gradient(
        self, values: Sequence[float]
    ) -> Tuple[float, np.ndarray]:
        volume, grad = self.tables.volume_smooth_gradient_row(
            self._row(values)
        )
        return volume, np.array([grad[c] for c in self.cols])

    def usage_gradient(
        self, values: Sequence[float]
    ) -> Tuple[float, np.ndarray]:
        usage, grad = self.tables.usage_gradient_row(self._row(values))
        return usage, np.array([grad[c] for c in self.cols])

    def _scalar_tiles(self, values: Sequence[float]) -> Dict[str, float]:
        return {n: float(v) for n, v in zip(self.names, values)}

    def constraint(self, i: int, values: Sequence[float]) -> float:
        compiled = self._compiled[i]
        if compiled is not None:
            return compiled.row(self._row(values))
        return self.constraints[i](self._scalar_tiles(values))

    def constraint_has_gradient(self, i: int) -> bool:
        return hasattr(self.constraints[i], "gradient")

    def constraint_gradient(
        self, i: int, values: Sequence[float]
    ) -> np.ndarray:
        compiled = self._compiled[i]
        if compiled is not None:
            grad = compiled.gradient_row(self._row(values))
            return np.array([grad[c] for c in self.cols])
        grad_map = self.constraints[i].gradient(self._scalar_tiles(values))
        return np.array([grad_map.get(n, 0.0) for n in self.names])

    # -- batched helpers (lattice refinement, bound probes) ------------
    def volume_exact_batch(self, values: np.ndarray) -> np.ndarray:
        return self.tables.volume_batch(self.matrix(values), exact=True)

    def usage_batch(self, values: np.ndarray) -> np.ndarray:
        return self.tables.usage_batch(self.matrix(values))

    def constraints_ok_batch(self, values: np.ndarray) -> np.ndarray:
        """Per-row conjunction ``all(fn(tiles) <= 0)`` over the extras."""
        ok = np.ones(values.shape[0], dtype=bool)
        if not self.constraints:
            return ok
        rows = self.matrix(values)
        for i, fn in enumerate(self.constraints):
            compiled = self._compiled[i]
            if compiled is not None:
                ok &= compiled.batch(rows) <= 0
            else:
                for r in range(values.shape[0]):
                    if ok[r] and fn(self._scalar_tiles(values[r])) > 0:
                        ok[r] = False
        return ok


def evaluator_for(
    model: MovementModel,
    names: Sequence[str],
    constraints: Sequence[Callable[[Mapping[str, float]], float]] = (),
    engine: Optional[str] = None,
    *,
    fast_kernels: bool = True,
):
    """The evaluator implementing ``engine`` for one solve.

    ``fast_kernels=False`` defers row-kernel codegen (tables engine only);
    see :class:`TablesEvaluator`.
    """
    engine = resolve_model_engine(engine)
    if engine == ENGINE_TABLES:
        return TablesEvaluator(
            model, names, constraints, fast_kernels=fast_kernels
        )
    return ScalarEvaluator(model, names, constraints)
