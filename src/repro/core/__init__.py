"""Chimera's primary contribution: analytical inter-block optimization.

* :mod:`repro.core.footprint` — ``getFootprint`` of Algorithm 1.
* :mod:`repro.core.movement` — Algorithm 1 (DV + MU) and executed flops.
* :mod:`repro.core.tables` — compiled (vectorized) movement tables.
* :mod:`repro.core.reordering` — block order enumeration and dedup.
* :mod:`repro.core.solver` — constrained tile-size optimization.
* :mod:`repro.core.search` — pruned/memoized/parallel order search.
* :mod:`repro.core.multilevel` — Eq. 2/3 multi-level hierarchy costs.
* :mod:`repro.core.optimizer` — the end-to-end inter-block pass.
* :mod:`repro.core.multicore` — block-to-core partitioning (scale-out).
* :mod:`repro.core.fusion` — fuse-or-not profitability decisions.
* :mod:`repro.core.plan` — :class:`FusionPlan` data model.
"""

from .footprint import footprint_bytes, footprint_elements, op_footprint_bytes
from .fusion import FusionDecision, decide_fusion, plan_unfused
from .movement import MovementModel, algorithm1, executed_flops
from .multicore import (
    best_partitioned_plan,
    comm_volume_bytes,
    forced_partitions,
    partition_factors,
    partition_loops,
    shard_chain,
)
from .multilevel import (
    boundary_bandwidth,
    minimax_cost,
    movement_cost,
    solve_hierarchy,
)
from .optimizer import ChimeraConfig, ChimeraOptimizer, OptimizeStats
from .plan import CorePartition, FusionPlan, LevelSchedule
from .reordering import (
    OrderSpace,
    chain_reduction_loops,
    producer_private_reductions,
    candidate_models,
    count_orders,
    enumerate_orders,
    loop_classes,
    constrained_count,
    ordering_loops,
)
from .search import (
    SearchPolicy,
    SearchStats,
    dv_lower_bound,
    reset_search_stats,
    search_stats_snapshot,
    search_tiles,
    solve_memo,
    upper_tile_bounds,
)
from .solver import TileSolution, gemm_chain_closed_form, solve_tiles
from .tables import (
    MovementTables,
    clear_tables_memo,
    model_engine,
    movement_tables,
    resolve_model_engine,
    tables_memo_stats,
)

__all__ = [
    "footprint_bytes",
    "footprint_elements",
    "op_footprint_bytes",
    "FusionDecision",
    "decide_fusion",
    "plan_unfused",
    "MovementModel",
    "algorithm1",
    "executed_flops",
    "boundary_bandwidth",
    "minimax_cost",
    "movement_cost",
    "solve_hierarchy",
    "ChimeraConfig",
    "ChimeraOptimizer",
    "OptimizeStats",
    "CorePartition",
    "FusionPlan",
    "LevelSchedule",
    "best_partitioned_plan",
    "comm_volume_bytes",
    "forced_partitions",
    "partition_factors",
    "partition_loops",
    "shard_chain",
    "OrderSpace",
    "chain_reduction_loops",
    "producer_private_reductions",
    "candidate_models",
    "constrained_count",
    "count_orders",
    "enumerate_orders",
    "loop_classes",
    "ordering_loops",
    "SearchPolicy",
    "SearchStats",
    "dv_lower_bound",
    "reset_search_stats",
    "search_stats_snapshot",
    "search_tiles",
    "solve_memo",
    "upper_tile_bounds",
    "TileSolution",
    "gemm_chain_closed_form",
    "solve_tiles",
    "MovementTables",
    "clear_tables_memo",
    "model_engine",
    "movement_tables",
    "resolve_model_engine",
    "tables_memo_stats",
]
