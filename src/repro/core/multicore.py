"""Block-to-core partitioning: the multi-core scale-out axis.

Chimera's Algorithm 1 prices data movement through one core's slice of
the memory hierarchy; ``HardwareSpec.num_cores`` only splits shared-level
capacity.  When a spec declares an :class:`~repro.hardware.InterCoreLink`,
this module opens a second optimization axis: shard a fused chain over
``p`` cores along one spatial loop, and charge what crossing cores costs.

Following FlashFuser (fusion scale grows once inter-core connections are
modeled) and Blockbuster (communication is just another constraint row),
the model is fully analytical:

* **Sharding** (:func:`shard_chain`) rewrites the chain to one core's
  slice: the partitioned loop's extent becomes ``ceil(E / p)``, flops
  scale proportionally, and tensor dims indexed by the loop shrink by
  exactly the iteration-span delta (padding slack is preserved).
* **Communication** (:func:`comm_volume_bytes`) counts the link traffic
  the shard causes — replicated inputs broadcast to every core, gathered
  intermediates a loop-free consumer needs whole, and halo overlap of
  sliding-window reads — as exact integers, evaluated per candidate
  ``p`` either by the scalar reference loop or batched with numpy (the
  tables engine), bit-identically.
* **Placement search** (:func:`best_partitioned_plan`) enumerates
  ``p ∈ {1, 2, 4, ..., num_cores}`` x partitionable loops, pruning with
  an admissible lower bound (compulsory DRAM traffic, shard compute,
  exact communication time) before paying a full per-placement solve;
  shared-level capacity tightens to ``capacity / p`` for the survivors.

Set ``REPRO_CORES=<p>`` to force one partition count (inert on hardware
without a link, so single-core planning stays byte-identical).
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..ir.loops import Loop
from .optimizer import ChimeraConfig, ChimeraOptimizer
from .plan import CorePartition, FusionPlan
from .search import SearchPolicy
from .tables import ENGINE_TABLES, resolve_model_engine

#: Environment knob forcing a single partition count (requires a link).
ENV_CORES = "REPRO_CORES"


def forced_partitions() -> Optional[int]:
    """The ``REPRO_CORES`` override, or ``None`` when unset."""
    raw = os.environ.get(ENV_CORES, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CORES} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{ENV_CORES} must be >= 1, got {value}")
    return value


def partition_factors(hardware: HardwareSpec) -> Tuple[int, ...]:
    """Candidate core counts for ``hardware``: powers of two up to the chip.

    Hardware without a link has no partitioning axis — the answer is
    always ``(1,)`` there, ``REPRO_CORES`` included, which is what keeps
    single-core planning byte-identical under a forced environment.
    """
    if hardware.link is None:
        return (1,)
    n = hardware.num_cores
    forced = forced_partitions()
    if forced is not None:
        return (min(forced, n),)
    factors: List[int] = []
    p = 1
    while p <= n:
        factors.append(p)
        p *= 2
    if factors[-1] != n:
        factors.append(n)
    return tuple(factors)


def partition_loops(chain: OperatorChain) -> Tuple[str, ...]:
    """Loops a chain may shard over cores.

    A loop qualifies when it is spatial in *every* operator that has it
    (sharding a reduction would leave partial sums needing a cross-core
    reduce), its extent admits a split, and every owning operator's
    output is indexed by it (otherwise shards would race on the write).
    Operators *without* the loop are replicated per shard; intermediates
    they consume whole are charged as gather traffic by the comm model.
    """
    extents = chain.loop_extents()
    result: List[str] = []
    for name in chain.independent_loops():
        if extents[name] < 2:
            continue
        qualified = True
        for op in chain.ops_with_loop(name):
            if op.loop(name).is_reduction:
                qualified = False
                break
            if not all(write.uses(name) for write in op.writes):
                qualified = False
                break
        if qualified:
            result.append(name)
    return tuple(result)


def shard_extent(full: int, cores: int) -> int:
    """Per-core extent of a loop split ``cores`` ways: ``ceil(full/p)``."""
    return -(-full // cores)


def shard_chain(
    chain: OperatorChain, loop_name: str, cores: int
) -> OperatorChain:
    """One core's slice of ``chain`` sharded ``cores`` ways along a loop.

    Every operator owning the loop gets the shard extent and a
    proportional flop count; tensor dims indexed by the loop shrink by
    exactly the iteration-span delta (a dim with padding slack keeps
    it).  Tensors no access indexes by the loop are untouched — those
    are the replicated ones.
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    extents = chain.loop_extents()
    if loop_name not in extents:
        raise KeyError(f"chain {chain.name!r} has no loop {loop_name!r}")
    full = extents[loop_name]
    new_extent = shard_extent(full, cores)
    if new_extent == full:
        return chain
    sharded_extents = dict(extents)
    sharded_extents[loop_name] = new_extent

    ops = []
    for op in chain.ops:
        if not op.has_loop(loop_name):
            ops.append(op)
            continue
        loops = tuple(
            Loop(l.name, new_extent if l.name == loop_name else l.extent,
                 l.kind)
            for l in op.loops
        )
        flops = op.flops * new_extent // full
        ops.append(dataclasses.replace(op, loops=loops, flops=flops))

    tensors = {}
    for name, spec in chain.tensors.items():
        accesses = [
            a
            for op in chain.ops
            for a in op.all_accesses()
            if a.tensor == name
        ]
        shape = []
        for d, size in enumerate(spec.shape):
            touched = [a.dims[d] for a in accesses if a.dims[d].coeff(loop_name)]
            if not touched:
                shape.append(size)
                continue
            delta = max(
                expr.extent(extents) - expr.extent(sharded_extents)
                for expr in touched
            )
            shape.append(max(1, size - delta))
        tensors[name] = dataclasses.replace(spec, shape=tuple(shape))

    return OperatorChain(
        name=f"{chain.name}@p{cores}", ops=tuple(ops), tensors=tensors
    )


# ----------------------------------------------------------------------
# communication volume
# ----------------------------------------------------------------------
def _comm_components(chain: OperatorChain, loop_name: str):
    """Static ingredients of the comm model for one partitioned loop.

    Returns ``(replicated_bytes, gathered_bytes, halo_terms)`` where
    ``halo_terms`` is a list of ``(elem_bytes, dims)`` per sliding-window
    consumer read, each dim as ``(base, coeff)`` so a shard's span along
    it is ``base + coeff * (E' - 1)``.
    """
    extents = chain.loop_extents()
    inputs = set(chain.input_tensors())
    intermediates = set(chain.intermediate_tensors())

    uses_loop: Dict[str, bool] = {name: False for name in chain.tensors}
    read_without_loop: Dict[str, bool] = {name: False for name in chain.tensors}
    for op in chain.ops:
        for access in op.reads:
            if access.uses(loop_name):
                uses_loop[access.tensor] = True
            else:
                read_without_loop[access.tensor] = True
        for access in op.writes:
            if access.uses(loop_name):
                uses_loop[access.tensor] = True

    # Inputs no access indexes by the loop exist identically on every
    # shard: broadcast once per extra core.
    replicated = sum(
        chain.tensors[t].nbytes for t in inputs if not uses_loop[t]
    )
    # Intermediates produced loop-sharded but consumed whole by an
    # operator without the loop: an all-gather reassembles them.
    gathered = sum(
        chain.tensors[t].nbytes
        for t in intermediates
        if uses_loop[t] and read_without_loop[t]
    )
    # Sliding-window reads of sharded intermediates overlap between
    # neighboring shards: the overlap is produced on one core and read
    # on another.
    halo_terms = []
    for t in sorted(intermediates):
        if not uses_loop[t]:
            continue
        elem = chain.tensors[t].dtype.nbytes
        for op in chain.ops:
            for access in op.reads:
                if access.tensor != t or not access.uses(loop_name):
                    continue
                dims = []
                for expr in access.dims:
                    coeff = expr.coeff(loop_name)
                    base = 1 + expr.offset
                    for name, c in expr.terms:
                        if name != loop_name:
                            base += c * (extents[name] - 1)
                    dims.append((base, coeff))
                halo_terms.append((elem, tuple(dims)))
    return replicated, gathered, halo_terms


def _halo_overlap_scalar(term, full_extent: int, p: int) -> int:
    """Overlap elements of one sliding-window read at partition ``p``."""
    elem, dims = term
    eprime = shard_extent(full_extent, p)
    shard_elems = 1
    full_elems = 1
    for base, coeff in dims:
        shard_elems *= base + coeff * (eprime - 1)
        full_elems *= base + coeff * (full_extent - 1)
    return elem * max(0, p * shard_elems - full_elems)


def comm_volume_bytes(
    chain: OperatorChain,
    loop_name: str,
    cores: Sequence[int],
    engine: Optional[str] = None,
) -> Tuple[int, ...]:
    """Total link bytes per candidate partition count.

    The scalar engine loops over ``cores``; the tables engine evaluates
    the whole candidate row batched in numpy — same integer arithmetic,
    bit-identical results (the equivalence gates rely on it).
    """
    replicated, gathered, halo_terms = _comm_components(chain, loop_name)
    full = chain.loop_extents()[loop_name]
    if resolve_model_engine(engine) == ENGINE_TABLES:
        ps = np.asarray(list(cores), dtype=np.int64)
        totals = (ps - 1) * np.int64(replicated + gathered)
        eprime = -(-np.int64(full) // ps)
        for elem, dims in halo_terms:
            shard_elems = np.ones_like(ps)
            full_elems = np.int64(1)
            for base, coeff in dims:
                shard_elems = shard_elems * (base + coeff * (eprime - 1))
                full_elems = full_elems * np.int64(
                    base + coeff * (full - 1)
                )
            overlap = np.maximum(np.int64(0), ps * shard_elems - full_elems)
            totals = totals + np.int64(elem) * overlap
        return tuple(int(v) for v in totals)
    results = []
    for p in cores:
        total = (p - 1) * (replicated + gathered)
        for term in halo_terms:
            total += _halo_overlap_scalar(term, full, p)
        results.append(total)
    return tuple(results)


def comm_steps(
    chain: OperatorChain,
    loop_name: str,
    hardware: HardwareSpec,
    p: int,
    comm_bytes: int,
) -> int:
    """Latency-bearing exchange steps for one placement.

    One collective sweep of the topology per traffic class present
    (broadcast of replicated inputs, gather of whole intermediates,
    neighbor halo exchange).
    """
    link = hardware.link
    if link is None or p <= 1 or comm_bytes <= 0:
        return 0
    replicated, gathered, halo_terms = _comm_components(chain, loop_name)
    full = chain.loop_extents()[loop_name]
    phases = int(replicated > 0) + int(gathered > 0)
    if any(_halo_overlap_scalar(t, full, p) > 0 for t in halo_terms):
        phases += 1
    return phases * link.collective_steps(p)


# ----------------------------------------------------------------------
# placement search
# ----------------------------------------------------------------------
def partition_lower_bound(
    shard: OperatorChain,
    hardware: HardwareSpec,
    p: int,
    comm_time: float,
) -> float:
    """Admissible lower bound on a placement's predicted time.

    Every term underestimates its counterpart in
    :attr:`FusionPlan.predicted_time`: DV at the DRAM boundary is at
    least the compulsory IO bytes, a shard's flops run on one core at
    ``peak / num_cores`` and efficiency <= 1, communication is exact,
    and a fused plan launches once.  Pruning on it never discards a
    winning placement.
    """
    compute = shard.total_flops() * hardware.num_cores / hardware.peak_flops
    movement = p * shard.io_bytes() / hardware.dram_bandwidth
    return (
        max(compute, movement)
        + comm_time
        + hardware.kernel_launch_overhead
    )


def best_partitioned_plan(
    chain: OperatorChain,
    hardware: HardwareSpec,
    config: Optional[ChimeraConfig] = None,
    policy: Optional[SearchPolicy] = None,
    engine: Optional[str] = None,
    incumbent_time: float = math.inf,
) -> Optional[FusionPlan]:
    """Best block-to-core placement of the fused chain, or ``None``.

    Enumerates candidate core counts x partitionable loops.  For each
    placement the comm term is computed exactly (batched across the
    whole candidate row by the tables engine), an admissible lower bound
    prunes placements that cannot beat the incumbent, and survivors pay
    a full per-level solve with shared capacity tightened to the
    ``1/p`` share.  Ties keep the earlier candidate (smaller ``p``,
    earlier loop), so the search is deterministic.

    Args:
        incumbent_time: predicted time of the aggregate (unpartitioned)
            fused plan; placements must beat it strictly.
    """
    link = hardware.link
    if link is None:
        return None
    factors = [p for p in partition_factors(hardware) if p > 1]
    if not factors:
        return None
    loops = partition_loops(chain)
    if not loops:
        return None

    extents = chain.loop_extents()
    optimizer = ChimeraOptimizer(hardware, config, policy=policy,
                                 engine=engine)
    best: Optional[FusionPlan] = None
    best_time = incumbent_time
    for loop_name in loops:
        volumes = comm_volume_bytes(chain, loop_name, factors, engine)
        for p, volume in zip(factors, volumes):
            steps = comm_steps(chain, loop_name, hardware, p, volume)
            comm_time = (
                volume / link.bandwidth + steps * link.step_time()
            )
            shard = shard_chain(chain, loop_name, p)
            bound = partition_lower_bound(shard, hardware, p, comm_time)
            if bound >= best_time:
                continue
            plan = optimizer.optimize(shard, partitions=p)
            partition = CorePartition(
                cores=p,
                loop=loop_name,
                full_extent=extents[loop_name],
                shard_extent=shard_extent(extents[loop_name], p),
                comm_bytes=int(volume),
                comm_steps=steps,
            )
            plan = dataclasses.replace(
                plan,
                partition=partition,
                notes=plan.notes
                + (f"partitioned over {p} cores along {loop_name}",),
            )
            time = plan.predicted_time
            if time < best_time:
                best = plan
                best_time = time
    return best
