"""Tuning-based baseline (Ansor-like).

Ansor explores tile configurations by profiling candidates on hardware and
training a cost model.  The reproduction's analogue samples random tile
configurations, evaluates each by *simulated profiling* (the exact DV/MU of
the analytical machinery, which is what the hardware would measure), and
keeps the best — converging toward the optimum as trials grow, at a compile
cost proportional to the trial count.  The paper's overhead comparison
(Section VI-E: Chimera is ~22x faster to optimize and still 1.39x faster at
runtime) reproduces directly from this trade-off.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.movement import MovementModel, executed_flops
from ..core.reordering import producer_private_reductions
from ..core.plan import FusionPlan, LevelSchedule
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from .base import default_order


def _random_tiles(
    rng: random.Random,
    order: Tuple[str, ...],
    extents: Dict[str, int],
    parent: Optional[Dict[str, int]],
    reductions: frozenset,
    innermost: bool,
) -> Dict[str, int]:
    tiles: Dict[str, int] = {}
    for name in extents:
        bound = extents[name]
        if parent is not None:
            bound = min(bound, parent.get(name, bound))
        if name in reductions and not innermost:
            tiles[name] = bound
            continue
        # Real tuners never propose degenerate single-iteration tiles; the
        # candidate grid starts at a vectorizable size.
        choices = [t for t in (8, 16, 32, 64, 128, 256, 512) if t <= bound]
        choices.append(bound)
        tiles[name] = rng.choice(choices)
    return tiles


def tuned_plan(
    chain: OperatorChain,
    hardware: HardwareSpec,
    trials: int = 64,
    seed: int = 0,
    *,
    randomize_order: bool = False,
) -> Tuple[FusionPlan, int]:
    """Random-search tiling in the natural order.

    Args:
        chain: the kernel to tune (one segment — the tuner does not fuse
            compute-intensive chains, matching Ansor's behaviour).
        hardware: target machine.
        trials: candidate schedules "profiled".
        seed: RNG seed (deterministic benchmarks).
        randomize_order: additionally draw the block order at random (the
            ablation's no-cost-model configuration, where nothing guides
            the order choice).

    Returns:
        (best plan found, trials consumed).
    """
    rng = random.Random(seed)
    if randomize_order:
        names = list(default_order(chain))
        rng.shuffle(names)
        order = tuple(names)
    else:
        order = default_order(chain)
    model = MovementModel(chain, order)
    extents = chain.loop_extents()
    reductions = frozenset(producer_private_reductions(chain))
    on_chip = hardware.on_chip_levels

    schedules_outer_first: List[LevelSchedule] = []
    parent: Optional[Dict[str, int]] = None
    per_level_trials = max(1, trials // max(len(on_chip), 1))
    for offset, level in enumerate(reversed(on_chip)):
        level_index = len(on_chip) - 1 - offset
        capacity = float(hardware.per_block_capacity(level))
        best: Optional[Tuple[float, Dict[str, int]]] = None
        innermost = level_index == 0
        for _ in range(per_level_trials):
            tiles = _random_tiles(rng, order, extents, parent, reductions, innermost)
            if model.usage(tiles) > capacity:
                continue
            dv = model.volume(tiles)
            if best is None or dv < best[0]:
                best = (dv, tiles)
        if best is None:
            tiles = {name: 1 for name in extents}
            best = (model.volume(tiles), tiles)
        dv, tiles = best
        schedules_outer_first.append(
            LevelSchedule(
                level=level.name,
                order=order,
                tiles=tiles,
                predicted_dv=dv,
                predicted_mu=model.usage(tiles),
                capacity=capacity,
                bandwidth=hardware.levels[level_index + 1].bandwidth,
            )
        )
        parent = dict(tiles)

    schedules = tuple(reversed(schedules_outer_first))
    flops = executed_flops(chain, order, schedules[0].tiles)
    plan = FusionPlan(
        chain=chain,
        hardware=hardware,
        levels=schedules,
        fused=True,
        executed_flops=flops,
        notes=(f"tuned with {trials} trials",),
    )
    return plan, trials
