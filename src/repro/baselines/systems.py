"""The comparator systems of the paper's evaluation.

Each profile encodes how the paper characterizes that system's behaviour on
compute-intensive operator chains (Sections II-B, VI-B and Table II):

* **PyTorch** — hand-tuned vendor kernels (MKL/oneDNN, cuBLAS/cuDNN) with
  excellent per-shape tiling, but a dynamic-graph runtime dispatching one
  kernel per operator.
* **oneDNN** (CPU) — static library kernels with element-wise post-ops; its
  generic batch-GEMM blocking is not shape-specialized.
* **Relay** — hand-written template schedules, element-wise fusion, no
  compute-intensive fusion, no softmax fusion.
* **Ansor** — per-operator tuning (1000 profiling trials in the paper's
  setup) that approaches optimal single-kernel schedules; still no
  compute-intensive fusion and no softmax fusion.
* **TASO** (GPU) — graph substitutions over backend kernels; cannot fuse
  dependent compute-intensive operators.
* **TensorRT** (GPU) — fast graph runtime with template kernels; the paper
  notes it cannot fuse softmax and handles irregular batch GEMMs poorly.
* **TVM+CUTLASS / BOLT** (GPU) — fuses GEMM chains through CUTLASS
  templates, but with a single fixed block execution order and template
  blocking.
* **TBE/CANN** (NPU) — hand-optimized per-operator library; no GEMM-chain
  fusion.
* **AKG** (NPU) — polyhedral per-operator schedules close to optimal, with
  memory-intensive fusion; GEMM-chain fusion unexplored.
* **Chimera** — this paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hardware.spec import HardwareSpec
from .base import BaselineSystem, SystemProfile

PROFILES: Dict[str, SystemProfile] = {
    "pytorch": SystemProfile(
        name="PyTorch",
        fusion="none",
        tiling="template",
        efficiency_factor=0.92,
        launch_factor=3.0,
        template_tile=96,
        backends=("cpu", "gpu"),
    ),
    "onednn": SystemProfile(
        name="oneDNN",
        fusion="epilogue",
        tiling="template",
        efficiency_factor=0.95,
        launch_factor=1.0,
        template_tile=48,
        backends=("cpu",),
    ),
    "relay": SystemProfile(
        name="Relay",
        fusion="epilogue",
        tiling="template",
        efficiency_factor=0.88,
        launch_factor=1.0,
        template_tile=32,
        backends=("cpu", "gpu"),
    ),
    "ansor": SystemProfile(
        name="Ansor",
        fusion="epilogue",
        tiling="tuned",
        efficiency_factor=0.92,
        launch_factor=1.0,
        tune_trials=1000,
        backends=("cpu", "gpu"),
    ),
    "taso": SystemProfile(
        name="TASO",
        fusion="none",
        tiling="template",
        efficiency_factor=0.90,
        launch_factor=2.0,
        backends=("gpu",),
    ),
    "tensorrt": SystemProfile(
        name="TensorRT",
        fusion="epilogue",
        tiling="template",
        efficiency_factor=0.95,
        launch_factor=0.6,
        template_tile=128,
        backends=("gpu",),
    ),
    "cudnn": SystemProfile(
        name="CuDNN",
        fusion="none",
        tiling="template",
        efficiency_factor=0.95,
        launch_factor=1.0,
        template_tile=96,
        backends=("gpu",),
    ),
    "tvm-cutlass": SystemProfile(
        name="TVM+Cutlass",
        fusion="fixed-order",
        tiling="template",
        efficiency_factor=0.92,
        launch_factor=1.0,
        backends=("gpu",),
    ),
    "tbe": SystemProfile(
        name="TBE",
        fusion="none",
        tiling="template",
        efficiency_factor=0.85,
        launch_factor=2.0,
        template_tile=48,
        backends=("npu",),
    ),
    "akg": SystemProfile(
        name="AKG",
        fusion="epilogue",
        tiling="optimal",
        efficiency_factor=0.92,
        launch_factor=1.0,
        backends=("npu",),
    ),
    "chimera": SystemProfile(
        name="Chimera",
        fusion="chimera",
        tiling="optimal",
        efficiency_factor=1.0,
        launch_factor=1.0,
    ),
}


def get_system(key: str) -> BaselineSystem:
    """Build the system registered under ``key``.

    Raises:
        KeyError: listing the known keys.
    """
    try:
        profile = PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown system {key!r}; known: {sorted(PROFILES)}"
        ) from None
    return BaselineSystem(profile)


def systems_for(hardware: HardwareSpec, keys: Tuple[str, ...] = ()) -> List[BaselineSystem]:
    """All systems (or the requested subset) available on a backend."""
    chosen = keys or tuple(PROFILES)
    systems = []
    for key in chosen:
        system = get_system(key)
        if system.supports(hardware):
            systems.append(system)
    return systems
