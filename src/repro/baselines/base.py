"""Baseline system machinery.

Every comparator system (PyTorch, Relay, Ansor, TensorRT, TVM+CUTLASS,
TBE, AKG, ...) is described by a :class:`SystemProfile` capturing the four
axes on which the paper differentiates them:

* **fusion scope** — none, element-wise epilogues only, fixed-order
  compute-intensive fusion (BOLT-style), or full Chimera fusion;
* **tiling quality** — analytically optimal, fixed templates, or tuned by
  (simulated) trial search;
* **kernel quality** — a multiplier on the micro kernel's sustained
  efficiency;
* **dispatch cost** — a multiplier on launch overhead (dynamic frameworks
  pay more, graph runtimes less).

The driver compiles a chain into a kernel sequence per the profile, runs it
through the shared memory-hierarchy simulator, and reports time — the same
measurement harness for every system, so comparisons are apples-to-apples.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import microkernel
from ..core.movement import MovementModel, executed_flops
from ..core.reordering import producer_private_reductions
from ..core.optimizer import ChimeraConfig, ChimeraOptimizer
from ..core.plan import FusionPlan, LevelSchedule
from ..hardware.spec import HardwareSpec
from ..ir.chain import OperatorChain
from ..ir.operator import OperatorSpec
from ..sim.hierarchy import SimConfig
from ..sim.profiler import SimReport, simulate_sequence

ELEMENTWISE_TAGS = ("relu", "bias_add", "gelu")


@dataclasses.dataclass(frozen=True)
class SystemProfile:
    """Behavioural description of one system under comparison.

    Attributes:
        name: display name used in benchmark tables.
        fusion: ``"none"`` (every operator its own kernel), ``"epilogue"``
            (element-wise ops folded into the preceding kernel; softmax
            stays separate), ``"fixed-order"`` (whole-chain fusion with one
            hard-coded block order), or ``"chimera"`` (analytical fusion
            with fuse-or-not decision).
        tiling: ``"optimal"`` | ``"template"`` | ``"tuned"``.
        efficiency_factor: multiplier on micro-kernel efficiency.
        launch_factor: multiplier on per-kernel launch overhead.
        template_tile: base tile for template tiling.
        tune_trials: nominal hardware-profiling trials (tuned tiling);
            reported by the optimization-overhead benchmark.
        backends: backends this system exists on.
    """

    name: str
    fusion: str
    tiling: str
    efficiency_factor: float = 1.0
    launch_factor: float = 1.0
    template_tile: int = 64
    tune_trials: int = 0
    backends: Tuple[str, ...] = ("cpu", "gpu", "npu")

    def __post_init__(self) -> None:
        if self.fusion not in ("none", "epilogue", "fixed-order", "chimera"):
            raise ValueError(f"unknown fusion mode {self.fusion!r}")
        if self.tiling not in ("optimal", "template", "tuned"):
            raise ValueError(f"unknown tiling mode {self.tiling!r}")


@dataclasses.dataclass(frozen=True)
class SystemResult:
    """Outcome of running one system on one workload."""

    system: str
    chain: str
    report: SimReport
    plans: Tuple[FusionPlan, ...]
    compile_seconds: float = 0.0
    tune_trials: int = 0

    @property
    def time(self) -> float:
        return self.report.time


def segment_chain(
    chain: OperatorChain, fusion: str
) -> List[OperatorChain]:
    """Split a chain into per-kernel sub-chains for a fusion mode.

    ``"none"`` yields one kernel per operator; ``"epilogue"`` folds
    element-wise operators into the kernel of their producer (softmax is a
    kernel of its own); other modes keep the whole chain.
    """
    if fusion in ("fixed-order", "chimera"):
        return [chain]
    groups: List[List[OperatorSpec]] = []
    for op in chain.ops:
        fold = (
            fusion == "epilogue"
            and op.tag in ELEMENTWISE_TAGS
            and groups
        )
        if fold:
            groups[-1].append(op)
        else:
            groups.append([op])
    return [subchain(chain, ops) for ops in groups]


def subchain(chain: OperatorChain, ops: Sequence[OperatorSpec]) -> OperatorChain:
    """A chain over a contiguous subset of operators."""
    touched = {
        access.tensor: chain.tensors[access.tensor]
        for op in ops
        for access in op.all_accesses()
    }
    name = "+".join(op.name for op in ops)
    return OperatorChain(name=name, ops=tuple(ops), tensors=touched)


def default_order(chain: OperatorChain) -> Tuple[str, ...]:
    """The natural nesting order: loops in first-appearance order.

    This is what a non-reordering code generator emits — output loops of
    the first operator outermost, reductions innermost-ish.
    """
    extents = chain.loop_extents()
    spatial = []
    reductions = []
    for op in chain.ops:
        for loop in op.loops:
            if extents[loop.name] <= 1:
                continue
            target = reductions if loop.is_reduction else spatial
            if loop.name not in spatial and loop.name not in reductions:
                target.append(loop.name)
    return tuple(spatial + reductions)


def template_plan(
    chain: OperatorChain,
    hardware: HardwareSpec,
    base_tile: int = 64,
    order: Optional[Tuple[str, ...]] = None,
) -> FusionPlan:
    """A plan with fixed template tiles (no shape-specific optimization).

    Every level uses the natural order; tiles start at ``base_tile`` for
    each loop (clamped to extents and to the parent) and are halved
    uniformly until the level's memory usage fits.
    """
    if order is None:
        order = default_order(chain)
    model = MovementModel(chain, order)
    extents = chain.loop_extents()
    reductions = set(producer_private_reductions(chain))
    schedules: List[LevelSchedule] = []
    parent: Optional[Dict[str, int]] = None
    on_chip = hardware.on_chip_levels
    for offset, level in enumerate(reversed(on_chip)):
        level_index = len(on_chip) - 1 - offset
        inner_most = level_index == 0
        capacity = float(hardware.per_block_capacity(level))
        tile = base_tile
        tiles = _clamped_tiles(order, extents, tile, parent, reductions, inner_most)
        while model.usage(tiles) > capacity and tile > 1:
            tile //= 2
            tiles = _clamped_tiles(order, extents, tile, parent, reductions, inner_most)
        schedules.append(
            LevelSchedule(
                level=level.name,
                order=tuple(order),
                tiles=tiles,
                predicted_dv=model.volume(tiles),
                predicted_mu=model.usage(tiles),
                capacity=capacity,
                bandwidth=hardware.levels[level_index + 1].bandwidth,
            )
        )
        parent = dict(tiles)
    schedules.reverse()
    flops = executed_flops(chain, order, schedules[0].tiles)
    return FusionPlan(
        chain=chain,
        hardware=hardware,
        levels=tuple(schedules),
        fused=True,  # one kernel, whatever the chain length
        executed_flops=flops,
        notes=(f"template tiles base {base_tile}",),
    )


def _clamped_tiles(
    order: Sequence[str],
    extents: Mapping[str, int],
    tile: int,
    parent: Optional[Mapping[str, int]],
    reductions: frozenset = frozenset(),
    innermost: bool = True,
) -> Dict[str, int]:
    tiles = {}
    for name in extents:
        bound = extents[name]
        if parent is not None:
            bound = min(bound, parent.get(name, bound))
        if name in reductions and not innermost:
            # Reductions iterate only at the innermost level (see the
            # optimizer); templates follow the same discipline.
            tiles[name] = bound
        else:
            tiles[name] = max(1, min(tile, bound))
    return tiles


class BaselineSystem:
    """Compiles and measures chains per a :class:`SystemProfile`."""

    def __init__(self, profile: SystemProfile) -> None:
        self.profile = profile

    @property
    def name(self) -> str:
        return self.profile.name

    def supports(self, hardware: HardwareSpec) -> bool:
        return hardware.backend in self.profile.backends

    # ------------------------------------------------------------------
    def plan(
        self, chain: OperatorChain, hardware: HardwareSpec
    ) -> Tuple[List[FusionPlan], int]:
        """Build the kernel sequence; returns (plans, tune trials used)."""
        from .autotuner import tuned_plan  # local import to avoid a cycle

        profile = self.profile
        trials = 0

        if profile.fusion == "chimera":
            from ..core.fusion import decide_fusion

            micro = microkernel.lower_for_chain(hardware, chain)
            config = ChimeraConfig(
                min_tiles=microkernel.chain_min_tiles(chain, micro),
                quanta=microkernel.chain_quanta(chain, micro),
            )
            decision = decide_fusion(chain, hardware, config)
            plans = [
                self._attach_kernel(plan, hardware, profile)
                for plan in decision.chosen
            ]
            return plans, trials

        kernels = segment_chain(chain, profile.fusion)
        plans = []
        for sub in kernels:
            if profile.fusion == "fixed-order":
                plan = _force_fixed_order(sub, hardware, profile)
            elif profile.tiling == "optimal":
                micro = microkernel.lower_for_chain(hardware, sub)
                config = ChimeraConfig(
                    min_tiles=microkernel.chain_min_tiles(sub, micro),
                    quanta=microkernel.chain_quanta(sub, micro),
                )
                plan = ChimeraOptimizer(hardware, config).optimize(sub)
            elif profile.tiling == "template":
                plan = template_plan(sub, hardware, profile.template_tile)
            else:  # tuned
                plan, used = tuned_plan(
                    sub, hardware, trials=max(profile.tune_trials, 1)
                )
                trials += used
            plans.append(self._attach_kernel(plan, hardware, profile))
        return plans, trials

    def _attach_kernel(
        self,
        plan: FusionPlan,
        hardware: HardwareSpec,
        profile: SystemProfile,
    ) -> FusionPlan:
        micro = microkernel.lower_for_chain(hardware, plan.chain)
        efficiency = (
            microkernel.chain_efficiency(
                plan.chain, micro, dict(plan.inner.tiles)
            )
            * profile.efficiency_factor
        )
        return plan.with_micro_kernel(micro.name, min(1.0, max(efficiency, 1e-3)))

    def run(
        self,
        chain: OperatorChain,
        hardware: HardwareSpec,
        *,
        sim_config: Optional[SimConfig] = None,
    ) -> SystemResult:
        """Plan, simulate, and report this system on one chain."""
        import time as _time

        if not self.supports(hardware):
            raise ValueError(
                f"{self.name} does not support backend {hardware.backend!r}"
            )
        started = _time.perf_counter()
        plans, trials = self.plan(chain, hardware)
        compile_seconds = _time.perf_counter() - started
        report = simulate_sequence(
            plans,
            name=f"{self.name}:{chain.name}",
            config=sim_config,
            launch_overhead_factor=self.profile.launch_factor,
        )
        return SystemResult(
            system=self.name,
            chain=chain.name,
            report=report,
            plans=tuple(plans),
            compile_seconds=compile_seconds,
            tune_trials=trials,
        )


def fixed_fusion_order(chain: OperatorChain) -> Tuple[str, ...]:
    """The hard-coded block order of a template fusion library.

    CUTLASS B2B / BOLT persistent kernels are *output-stationary*: the
    threadblock grid partitions the final output's spatial dimensions, and
    the remaining loops run inside in chain order.  This is one fixed
    choice — the exact thing the paper contrasts with Chimera's analytical
    order selection.
    """
    extents = chain.loop_extents()
    final = chain.ops[-1]
    order = [
        loop.name
        for loop in final.loops
        if not loop.is_reduction and extents[loop.name] > 1
    ]
    for op in chain.ops:
        for loop in op.loops:
            if extents[loop.name] > 1 and loop.name not in order:
                order.append(loop.name)
    return tuple(order)


def _force_fixed_order(
    chain: OperatorChain,
    hardware: HardwareSpec,
    profile: SystemProfile,
) -> FusionPlan:
    """BOLT/CUTLASS-style whole-chain fusion at one hard-coded order.

    Tile sizes come from the template policy — the template library has
    one blocking scheme, not a per-shape analytical solve.
    """
    return template_plan(
        chain, hardware, profile.template_tile, order=fixed_fusion_order(chain)
    )
