"""Comparator systems (library and compiler baselines)."""

from .autotuner import tuned_plan
from .base import (
    BaselineSystem,
    SystemProfile,
    SystemResult,
    default_order,
    fixed_fusion_order,
    segment_chain,
    subchain,
    template_plan,
)
from .systems import PROFILES, get_system, systems_for

__all__ = [
    "tuned_plan",
    "BaselineSystem",
    "SystemProfile",
    "SystemResult",
    "default_order",
    "fixed_fusion_order",
    "segment_chain",
    "subchain",
    "template_plan",
    "PROFILES",
    "get_system",
    "systems_for",
]
