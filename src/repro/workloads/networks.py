"""Whole-network graphs: Transformer, Bert, ViT (Figure 9 / Table I).

Each encoder layer contributes:

* the QKV projection and output projection (compute-intensive GEMMs),
* the attention score/softmax/value operators (stitched into one fused
  chain by the partitioner — the paper's Figure 2 workload),
* the two FFN GEMMs with a GELU between,
* residual LayerNorms (memory-intensive).

The graph carries each operator as its own node; it is
:func:`repro.ir.graph.partition_graph` that decides what fuses.  With
stitching on, attention compiles as one chain with softmax on-chip, and
the FFN/LayerNorm glue rides along with the adjacent GEMMs.
:func:`network_time` times the partition's chain nodes and remainder
nodes with independently chosen systems, mirroring the paper's
Relay+Chimera end-to-end setup.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..baselines.systems import get_system
from ..hardware.spec import HardwareSpec
from ..ir import builders
from ..ir.dtypes import FP16
from ..ir.graph import (
    ComputeDAG,
    GraphBuilder,
    GraphNode,
    GraphPartition,
    is_fusable,
    partition_graph,
)


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Transformer-family network hyperparameters.

    Attributes:
        name: display name (e.g. ``"Bert-Base"``).
        layers: encoder layer count.
        heads: attention heads (the batch of the BMM chain).
        seq: sequence length (tokens or patches).
        head_dim: per-head dimension.
        ffn_mult: FFN expansion factor.
    """

    name: str
    layers: int
    heads: int
    seq: int
    head_dim: int
    ffn_mult: int = 4

    def __post_init__(self) -> None:
        # Degenerate configs (layers=1, heads=1, tiny seq) are legitimate —
        # tests and ablations use them — but non-positive hyperparameters
        # would otherwise surface as obscure loop-extent errors deep in the
        # builders.  Fail here, naming the field.
        for field in ("layers", "heads", "seq", "head_dim", "ffn_mult"):
            value = getattr(self, field)
            if value < 1:
                raise ValueError(
                    f"network {self.name!r}: {field} must be >= 1, "
                    f"got {value}"
                )

    @property
    def hidden(self) -> int:
        return self.heads * self.head_dim


NETWORKS: Dict[str, NetworkConfig] = {
    "TF-Small": NetworkConfig("TF-Small", 6, 8, 512, 64),
    "TF-Base": NetworkConfig("TF-Base", 12, 12, 512, 64),
    "TF-Large": NetworkConfig("TF-Large", 24, 16, 512, 64),
    "Bert-Small": NetworkConfig("Bert-Small", 4, 8, 512, 64),
    "Bert-Base": NetworkConfig("Bert-Base", 12, 12, 512, 64),
    "Bert-Large": NetworkConfig("Bert-Large", 24, 16, 512, 64),
    "ViT-Base/14": NetworkConfig("ViT-Base/14", 12, 12, 256, 64),
    "ViT-Large/14": NetworkConfig("ViT-Large/14", 24, 16, 256, 64),
    "ViT-Huge/14": NetworkConfig("ViT-Huge/14", 32, 16, 256, 80),
}


def network_config(name: str) -> NetworkConfig:
    """Look up a network preset (case-insensitive).

    Raises:
        KeyError: listing known names.
    """
    config = NETWORKS.get(name)
    if config is None:
        folded = {key.lower(): cfg for key, cfg in NETWORKS.items()}
        config = folded.get(name.lower())
    if config is None:
        raise KeyError(
            f"unknown network {name!r}; known: {sorted(NETWORKS)}"
        )
    return config


def build_network(config: NetworkConfig) -> ComputeDAG:
    """One encoder layer's graph, with ``repeat=layers`` on every node."""
    builder = GraphBuilder(config.name)
    seq, hidden = config.seq, config.hidden
    repeat = config.layers

    qkv_op, qkv_tensors = builders.gemm(
        "qkv_proj", seq, hidden, 3 * hidden, dtype=FP16
    )
    qkv = builder.add_op(qkv_op, qkv_tensors, repeat=repeat)

    # Attention as three graph nodes (QK^T, softmax, AV).  The stitching
    # partitioner merges them back into one fused chain — softmax rides
    # inside the batch-GEMM block schedule instead of round-tripping its
    # (heads, seq, seq) score matrix through DRAM.
    score_op, score_tensors = builders.batch_gemm(
        "attention_score", config.heads, seq, config.head_dim, seq
    )
    score = builder.add_op(score_op, score_tensors, deps=[qkv], repeat=repeat)

    sm_op, sm_tensors = builders.softmax(
        "attention_softmax", (config.heads, seq, seq)
    )
    sm = builder.add_op(sm_op, sm_tensors, deps=[score], repeat=repeat)

    value_op, value_tensors = builders.batch_gemm(
        "attention_value", config.heads, seq, seq, config.head_dim
    )
    attn = builder.add_op(value_op, value_tensors, deps=[sm], repeat=repeat)

    out_op, out_tensors = builders.gemm("out_proj", seq, hidden, hidden)
    out = builder.add_op(out_op, out_tensors, deps=[attn], repeat=repeat)

    ln1_op, ln1_tensors = builders.layer_norm("ln1", (seq, hidden))
    ln1 = builder.add_op(ln1_op, ln1_tensors, deps=[out], repeat=repeat)

    ffn1_op, ffn1_tensors = builders.gemm(
        "ffn1", seq, hidden, config.ffn_mult * hidden
    )
    ffn1 = builder.add_op(ffn1_op, ffn1_tensors, deps=[ln1], repeat=repeat)

    gelu_op, gelu_tensors = builders.gelu(
        "ffn_gelu", (seq, config.ffn_mult * hidden)
    )
    act = builder.add_op(gelu_op, gelu_tensors, deps=[ffn1], repeat=repeat)

    ffn2_op, ffn2_tensors = builders.gemm(
        "ffn2", seq, config.ffn_mult * hidden, hidden
    )
    ffn2 = builder.add_op(ffn2_op, ffn2_tensors, deps=[act], repeat=repeat)

    ln2_op, ln2_tensors = builders.layer_norm("ln2", (seq, hidden))
    builder.add_op(ln2_op, ln2_tensors, deps=[ffn2], repeat=repeat)

    return builder.build()


def pack_networks(
    dags: Sequence[ComputeDAG],
    *,
    name: Optional[str] = None,
    interleave: bool = True,
) -> ComputeDAG:
    """Combine several networks into one multi-tenant graph.

    The serving scenario behind graph-level scheduling: one box hosts
    several tenants' networks, compiled and executed as a single DAG.
    Node names get a ``t{i}.`` tenant prefix (deps rewritten to match);
    chains are shared untouched, so identical tenants still hit the same
    plan-cache entries.

    Args:
        dags: the tenant graphs, one entry per tenant.
        interleave: emit nodes round-robin across tenants (the order a
            naive scheduler executes them in, keeping every tenant's
            working set live at once — the baseline the memory-minimizing
            scheduler improves on).  ``False`` concatenates tenant by
            tenant instead.  Both orders are valid topological orders;
            per-tenant relative order is preserved either way.

    Raises:
        ValueError: for an empty tenant list.
    """
    if not dags:
        raise ValueError("pack_networks needs at least one network")
    packed_name = name or "+".join(dag.name for dag in dags)
    per_tenant: List[List[GraphNode]] = []
    for index, dag in enumerate(dags):
        prefix = f"t{index}."
        per_tenant.append(
            [
                GraphNode(
                    name=prefix + node.name,
                    chain=node.chain,
                    deps=tuple(prefix + dep for dep in node.deps),
                    repeat=node.repeat,
                )
                for node in dag.nodes
            ]
        )
    nodes: List[GraphNode] = []
    if interleave:
        depth = max(len(tenant) for tenant in per_tenant)
        for step in range(depth):
            for tenant in per_tenant:
                if step < len(tenant):
                    nodes.append(tenant[step])
    else:
        for tenant in per_tenant:
            nodes.extend(tenant)
    return ComputeDAG(packed_name, tuple(nodes))


def build_multibranch_network(
    *,
    branches: int = 8,
    seq: int = 512,
    width: int = 2048,
    reduce_dim: int = 64,
    name: Optional[str] = None,
) -> ComputeDAG:
    """A synthetic wide graph: one stem fanning into parallel GEMM branches.

    Each branch expands the stem activation to a ``seq x width`` working
    tensor and immediately reduces it back to ``seq x reduce_dim``; a head
    GEMM joins every branch result.  The graph is emitted breadth-first
    (all expands, then all reduces) — the naive topological order, which
    keeps every branch's wide intermediate live simultaneously.  A
    depth-first schedule retires each branch before starting the next, so
    the peak drops by roughly the branch count: the stress shape for the
    graph-level scheduler benchmarks.

    Raises:
        ValueError: for a non-positive branch count.
    """
    if branches < 1:
        raise ValueError(f"branches must be >= 1, got {branches}")
    builder = GraphBuilder(name or f"MultiBranch-{branches}x")
    stem_op, stem_tensors = builders.gemm(
        "stem", seq, reduce_dim, reduce_dim, dtype=FP16
    )
    stem = builder.add_op(stem_op, stem_tensors)
    expands = []
    for index in range(branches):
        op, tensors = builders.gemm(
            f"b{index}.expand", seq, reduce_dim, width, dtype=FP16
        )
        expands.append(builder.add_op(op, tensors, deps=[stem]))
    reduces = []
    for index in range(branches):
        op, tensors = builders.gemm(
            f"b{index}.reduce", seq, width, reduce_dim, dtype=FP16
        )
        reduces.append(builder.add_op(op, tensors, deps=[expands[index]]))
    head_op, head_tensors = builders.gemm(
        "head", seq, branches * reduce_dim, reduce_dim, dtype=FP16
    )
    builder.add_op(head_op, head_tensors, deps=reduces)
    return builder.build()


def is_fusable_chain(node: GraphNode) -> bool:
    """Whether a node is a compute-intensive chain (Chimera's target).

    Delegates to :func:`repro.ir.graph.is_fusable`, the predicate the
    network-level partitioner uses, so the two classifications can never
    drift apart.
    """
    return is_fusable(node.chain)


@dataclasses.dataclass(frozen=True)
class NetworkTiming:
    """Per-node measured times for one (network, system pairing) run."""

    network: str
    node_times: Mapping[str, float] = dataclasses.field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.node_times.values())


def network_time(
    dag: ComputeDAG,
    hardware: HardwareSpec,
    *,
    base_system: str,
    chain_system: Optional[str] = None,
    chain_times: Optional[Mapping[str, float]] = None,
    partition: Optional[GraphPartition] = None,
    schedule: Optional[Any] = None,
) -> "NetworkTiming":
    """Time a network with one system for chains and one for the rest.

    This mirrors the paper's Figure 9 setup, where Relay hosts the graph
    and the attention batch GEMM chain kernels come from TensorRT, cuDNN,
    Ansor or Chimera.

    Args:
        dag: the network graph.
        hardware: machine model to time on.
        base_system: registry key timing the non-chain nodes.
        chain_system: registry key timing the fusable chains analytically.
        chain_times: per-execution chain times by *partition* node name —
            typically ``{n.name: n.time for n in network_plan.nodes}``
            from a compiled :class:`repro.runtime.NetworkPlan`, replacing
            the analytic chain model with plan-backed timings.  Exactly
            one of ``chain_system`` / ``chain_times`` must be given.
        partition: the graph partition to time (defaults to
            ``partition_graph(dag)``, which stitches MI glue under
            ``REPRO_STITCH``).  Pass the partition a plan was compiled
            from so ``chain_times`` keys line up with stitched node
            names.
        schedule: a :class:`repro.runtime.scheduler.GraphSchedule` (or
            anything with its ``residency`` records); each evicted
            intermediate's spill/recompute overhead is charged to its
            producer node, so the timing reflects the scheduled
            residency, not free infinite memory.

    Raises:
        ValueError: when neither or both chain sources are given, when
            ``chain_times`` misses a fusable chain node, or when
            ``schedule`` charges a node the partition does not have.
    """
    if (chain_system is None) == (chain_times is None):
        raise ValueError(
            "pass exactly one of chain_system= or chain_times="
        )
    if partition is None:
        partition = partition_graph(dag)
    base = get_system(base_system)
    chain_sys = None if chain_system is None else get_system(chain_system)
    chain_names = {node.name for node in partition.chains}
    node_times: Dict[str, float] = {}
    for node in partition.all_nodes():
        if node.name in chain_names:
            if chain_sys is not None:
                per_exec = chain_sys.run(node.chain, hardware).time
            else:
                if node.name not in chain_times:
                    raise ValueError(
                        f"chain_times misses fusable chain node "
                        f"{node.name!r}"
                    )
                per_exec = chain_times[node.name]
        else:
            per_exec = base.run(node.chain, hardware).time
        node_times[node.name] = per_exec * node.repeat
    if schedule is not None:
        for record in schedule.residency:
            if record.overhead_time == 0:
                continue
            if record.producer not in node_times:
                raise ValueError(
                    f"schedule charges node {record.producer!r} which the "
                    f"partition of {dag.name!r} does not have"
                )
            # overhead_time is per network run with repeats folded in.
            node_times[record.producer] += record.overhead_time
    return NetworkTiming(network=dag.name, node_times=node_times)
