"""Evaluation workloads: Tables I, IV, V and the Figure 9 networks."""

from .breakdown import Breakdown, model_breakdown
from .conv_chains import (
    TABLE_V,
    ConvChainConfig,
    all_conv_chains,
    conv_chain_config,
)
from .gemm_chains import (
    TABLE_IV,
    GemmChainConfig,
    all_gemm_chains,
    gemm_chain_config,
)
from .networks import (
    NETWORKS,
    NetworkConfig,
    NetworkTiming,
    build_multibranch_network,
    build_network,
    is_fusable_chain,
    network_config,
    network_time,
    pack_networks,
)

__all__ = [
    "Breakdown",
    "model_breakdown",
    "TABLE_V",
    "ConvChainConfig",
    "all_conv_chains",
    "conv_chain_config",
    "TABLE_IV",
    "GemmChainConfig",
    "all_gemm_chains",
    "gemm_chain_config",
    "NETWORKS",
    "NetworkConfig",
    "NetworkTiming",
    "build_multibranch_network",
    "build_network",
    "is_fusable_chain",
    "network_config",
    "network_time",
    "pack_networks",
]
