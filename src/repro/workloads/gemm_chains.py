"""Table IV: the batch GEMM chain configurations G1-G12.

``(batch, M, K) x (batch, K, L)`` is the first batch GEMM;
``(batch, M, L) x (batch, L, N)`` is the second.  G1-G9 come from
Bert/ViT attention layers, G10-G12 from MLP-Mixer token mixing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..ir.chain import OperatorChain
from ..ir.chains import batch_gemm_chain
from ..ir.dtypes import DType, FP16


@dataclasses.dataclass(frozen=True)
class GemmChainConfig:
    """One row of Table IV."""

    name: str
    batch: int
    m: int
    n: int
    k: int
    l: int
    network: str

    def build(
        self,
        *,
        with_softmax: bool = False,
        batch_override: Optional[int] = None,
        dtype: DType = FP16,
    ) -> OperatorChain:
        """Instantiate the chain (``batch_override=1`` for the NPU runs)."""
        batch = batch_override if batch_override is not None else self.batch
        chain = batch_gemm_chain(
            batch,
            self.m,
            self.n,
            self.k,
            self.l,
            with_softmax=with_softmax,
            dtype=dtype,
        )
        suffix = "+softmax" if with_softmax else ""
        return chain.with_name(f"{self.name}{suffix}")


TABLE_IV: Tuple[GemmChainConfig, ...] = (
    GemmChainConfig("G1", 8, 512, 64, 64, 512, "Bert-Small"),
    GemmChainConfig("G2", 12, 512, 64, 64, 512, "Bert-Base"),
    GemmChainConfig("G3", 16, 512, 64, 64, 512, "Bert-Large"),
    GemmChainConfig("G4", 12, 256, 64, 64, 256, "ViT-Base/14"),
    GemmChainConfig("G5", 16, 256, 64, 64, 256, "ViT-Large/14"),
    GemmChainConfig("G6", 16, 256, 80, 80, 256, "ViT-Huge/14"),
    GemmChainConfig("G7", 12, 208, 64, 64, 208, "ViT-Base/16"),
    GemmChainConfig("G8", 16, 208, 64, 64, 208, "ViT-Large/16"),
    GemmChainConfig("G9", 16, 208, 80, 80, 208, "ViT-Huge/16"),
    GemmChainConfig("G10", 1, 512, 64, 64, 256, "MLP-Mixer"),
    GemmChainConfig("G11", 1, 768, 64, 64, 384, "MLP-Mixer"),
    GemmChainConfig("G12", 1, 1024, 64, 64, 512, "MLP-Mixer"),
)

_BY_NAME: Dict[str, GemmChainConfig] = {c.name: c for c in TABLE_IV}


def gemm_chain_config(name: str) -> GemmChainConfig:
    """Look up a Table IV row by name (``"G1"`` .. ``"G12"``).

    Raises:
        KeyError: listing the known names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown GEMM chain {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def all_gemm_chains(
    *,
    with_softmax: bool = False,
    batch_override: Optional[int] = None,
) -> Tuple[OperatorChain, ...]:
    """All of G1-G12 as chains."""
    return tuple(
        config.build(with_softmax=with_softmax, batch_override=batch_override)
        for config in TABLE_IV
    )
