"""Table I: execution-time breakdown of ML models.

The paper motivates Chimera by showing that memory-bound attention batch
GEMMs take 26-40% of model time under a library runtime.  The breakdown
here times every operator of a network as its own library kernel
(PyTorch-style) and buckets the time:

* ``%BMM`` — the attention batch GEMMs (memory-bound),
* ``%CI``  — all other compute-intensive operators,
* ``%MI``  — memory-intensive operators (softmax, LayerNorm, GELU, ...).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..baselines.systems import get_system
from ..hardware.spec import HardwareSpec
from ..ir.chain import single_op_chain
from .networks import NetworkConfig, build_network


@dataclasses.dataclass(frozen=True)
class Breakdown:
    """One row of Table I."""

    network: str
    mi_fraction: float
    ci_fraction: float
    bmm_fraction: float

    def describe(self) -> str:
        return (
            f"{self.network}: %MI={self.mi_fraction * 100:.2f} "
            f"%CI={self.ci_fraction * 100:.2f} "
            f"%BMM={self.bmm_fraction * 100:.2f}"
        )


def _bucket(tag: str) -> str:
    if tag == "batch_gemm":
        return "bmm"
    if tag in ("gemm", "conv2d"):
        return "ci"
    return "mi"


def model_breakdown(
    config: NetworkConfig,
    hardware: HardwareSpec,
    *,
    system: str = "pytorch",
) -> Breakdown:
    """Time every operator as a separate kernel and bucket the shares."""
    dag = build_network(config)
    runner = get_system(system)
    totals: Dict[str, float] = {"mi": 0.0, "ci": 0.0, "bmm": 0.0}
    for node in dag.nodes:
        for op in node.chain.ops:
            sub = single_op_chain(op, node.chain.tensors)
            result = runner.run(sub, hardware)
            totals[_bucket(op.tag)] += result.time * node.repeat
    grand = sum(totals.values())
    return Breakdown(
        network=config.name,
        mi_fraction=totals["mi"] / grand,
        ci_fraction=totals["ci"] / grand,
        bmm_fraction=totals["bmm"] / grand,
    )
