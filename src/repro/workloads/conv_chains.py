"""Table V: the convolution chain configurations C1-C8.

The first convolution is ``(batch, IC, H, W) x (OC1, IC, k1, k1)`` with
stride ``st1``; the second reads its output with ``(OC2, OC1, k2, k2)`` and
stride ``st2``.  The layers come from SqueezeNet, Yolo, ResNet and
Inception-style CNNs; C6 (1x1 then 3x3 from ResNet) is the paper's example
of a compute-bound second convolution where fusion does not pay off.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..ir.chain import OperatorChain
from ..ir.chains import conv_chain
from ..ir.dtypes import DType, FP16


@dataclasses.dataclass(frozen=True)
class ConvChainConfig:
    """One row of Table V."""

    name: str
    ic: int
    h: int
    w: int
    oc1: int
    oc2: int
    st1: int
    st2: int
    k1: int
    k2: int

    def build(
        self,
        *,
        batch: int = 1,
        with_relu: bool = False,
        dtype: DType = FP16,
    ) -> OperatorChain:
        chain = conv_chain(
            batch,
            self.ic,
            self.h,
            self.w,
            self.oc1,
            self.oc2,
            self.st1,
            self.st2,
            self.k1,
            self.k2,
            with_relu=with_relu,
            dtype=dtype,
        )
        suffix = "+relu" if with_relu else ""
        return chain.with_name(f"{self.name}{suffix}")


TABLE_V: Tuple[ConvChainConfig, ...] = (
    ConvChainConfig("C1", 64, 112, 112, 192, 128, 2, 1, 3, 1),
    ConvChainConfig("C2", 32, 147, 147, 64, 80, 2, 1, 3, 1),
    ConvChainConfig("C3", 64, 56, 56, 128, 64, 1, 1, 3, 1),
    ConvChainConfig("C4", 128, 28, 28, 256, 128, 1, 1, 3, 1),
    ConvChainConfig("C5", 16, 227, 227, 64, 16, 4, 1, 3, 1),
    ConvChainConfig("C6", 64, 56, 56, 64, 64, 1, 1, 1, 3),
    ConvChainConfig("C7", 64, 56, 56, 64, 64, 1, 1, 1, 1),
    ConvChainConfig("C8", 256, 56, 56, 256, 64, 1, 1, 1, 1),
)

_BY_NAME: Dict[str, ConvChainConfig] = {c.name: c for c in TABLE_V}


def conv_chain_config(name: str) -> ConvChainConfig:
    """Look up a Table V row by name (``"C1"`` .. ``"C8"``).

    Raises:
        KeyError: listing the known names.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown conv chain {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def all_conv_chains(
    *, batch: int = 1, with_relu: bool = False
) -> Tuple[OperatorChain, ...]:
    """All of C1-C8 as chains."""
    return tuple(
        config.build(batch=batch, with_relu=with_relu) for config in TABLE_V
    )
