"""Tests for the roofline classification (Section II-A / VI-B story)."""

import pytest

from repro.analysis import (
    chain_roofline,
    fusion_prognosis,
    operator_roofline,
)
from repro.hardware import a100, xeon_gold_6240
from repro.workloads import conv_chain_config, gemm_chain_config


class TestRoofline:
    def test_attention_bmms_are_memory_bound_on_a100(self):
        """Table I's motivation: the attention batch GEMMs cannot reach
        peak on high-balance machines."""
        chain = gemm_chain_config("G1").build()
        _, per_op, promising = fusion_prognosis(chain, a100())
        assert all(p.memory_bound for p in per_op)
        assert promising

    def test_fused_chain_clears_the_ridge(self):
        # Fusing doubles the flops over the same IO bytes: the chain's AI
        # exceeds each operator's.
        chain = gemm_chain_config("G1").build()
        hw = a100()
        chain_point = chain_roofline(chain, hw)
        for op in chain.compute_intensive_ops():
            assert (
                chain_point.arithmetic_intensity
                > operator_roofline(op, chain, hw).arithmetic_intensity
            )

    def test_c6_second_conv_is_compute_bound(self):
        """Section VI-B: C6's 3x3 consumer is compute-bound — the case
        where fusion does not pay."""
        chain = conv_chain_config("C6").build(batch=8)
        _, per_op, _ = fusion_prognosis(chain, a100())
        by_name = {p.name: p for p in per_op}
        assert by_name["conv1"].memory_bound
        assert not by_name["conv2"].memory_bound

    def test_pointwise_consumers_are_memory_bound(self):
        # C7/C8: both convs 1x1 — classic fusion targets.
        chain = conv_chain_config("C7").build(batch=8)
        _, per_op, promising = fusion_prognosis(chain, a100())
        assert all(p.memory_bound for p in per_op)
        assert promising

    def test_machine_balance_ordering(self):
        # The same kernel is "more memory bound" on higher-balance machines.
        chain = gemm_chain_config("G1").build()
        cpu_point = chain_roofline(chain, xeon_gold_6240())
        gpu_point = chain_roofline(chain, a100())
        assert cpu_point.machine_balance < gpu_point.machine_balance
        assert cpu_point.attainable_fraction >= gpu_point.attainable_fraction

    def test_attainable_flops_capped_by_peak(self):
        chain = gemm_chain_config("G1").build()
        point = chain_roofline(chain, xeon_gold_6240())
        assert point.attainable_flops <= xeon_gold_6240().peak_flops

    def test_describe(self):
        chain = gemm_chain_config("G1").build()
        text = chain_roofline(chain, a100()).describe()
        assert "flop/B" in text and "bound" in text
