"""Tests for the replaceable micro kernel subsystem."""

import pytest

from repro import microkernel
from repro.hardware import a100, ascend_910, xeon_gold_6240
from repro.hardware.spec import VectorUnit
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.ir.dtypes import FP16, FP32
from repro.microkernel.base import (
    MicroKernelSpec,
    ReplaceableMicroKernel,
    get_micro_kernel,
    matmul_loop_roles,
)
from repro.microkernel.cpu import arithmetic_intensity, search_parameters
from repro.microkernel.gpu import fragment_reuse_ai
from repro.microkernel.npu import cube_ai


class TestCpuKernel:
    def test_paper_cascadelake_parameters(self):
        # 32 ZMM registers + pipeline depth 24 -> MI=6, NI=4, MII=2.
        unit = VectorUnit(num_registers=32, register_bits=512,
                          fma_pipeline_depth=24)
        assert search_parameters(unit) == (6, 4, 2)

    def test_register_budget_respected(self):
        unit = VectorUnit(16, 512, 8)
        mi, ni, mii = search_parameters(unit)
        assert mi * ni + ni + mii <= 16

    def test_ai_formula(self):
        # AI = MI*NI*KI / (KI*(MI+NI) + 2*MI*NI)
        assert arithmetic_intensity(6, 4, 64) == pytest.approx(
            6 * 4 * 64 / (64 * 10 + 2 * 24)
        )

    def test_narrow_n_workload_caps_ni(self):
        unit = VectorUnit(32, 512, 24)
        mi, ni, _ = search_parameters(unit, max_ni=2)
        assert ni <= 2
        assert mi * ni >= 24

    def test_infeasible_raises(self):
        unit = VectorUnit(num_registers=4, register_bits=512,
                          fma_pipeline_depth=24)
        with pytest.raises(ValueError):
            search_parameters(unit)

    def test_lowered_kernel_source_has_fma_schedule(self):
        kernel = microkernel.build_cpu_micro_kernel(xeon_gold_6240())
        assert "vfmadd231ph" in kernel.source
        assert "vpbroadcastw" in kernel.source
        assert len(kernel.source.splitlines()) > 100  # ~140 asm lines

    def test_lanes_depend_on_dtype(self):
        k16 = microkernel.build_cpu_micro_kernel(xeon_gold_6240(), FP16)
        k32 = microkernel.build_cpu_micro_kernel(xeon_gold_6240(), FP32)
        assert k16.params["lanes"] == 32
        assert k32.params["lanes"] == 16


class TestGpuKernel:
    def test_2x2_fragment_reuse_doubles_ai(self):
        assert fragment_reuse_ai(1, 1) == pytest.approx(0.5)
        assert fragment_reuse_ai(2, 2) == pytest.approx(1.0)

    def test_lowered_kernel(self):
        kernel = microkernel.build_gpu_micro_kernel(a100())
        assert kernel.tile_m == 32 and kernel.tile_n == 32
        assert "mma_sync" in kernel.source
        assert kernel.source.count("mma_sync") == 4  # 2x2 grid

    def test_small_extent_shrinks_grid(self):
        kernel = microkernel.build_gpu_micro_kernel(a100(), n_extent=16)
        assert kernel.params["tiles_n"] == 1

    def test_requires_matrix_unit(self):
        with pytest.raises(ValueError):
            microkernel.build_gpu_micro_kernel(xeon_gold_6240())


class TestNpuKernel:
    def test_cube_ai_formula(self):
        assert cube_ai(4, 16, 4, 16) == pytest.approx(
            (64 * 64) / (64 + 64)
        )

    def test_lanes_pinned_to_cube(self):
        kernel = microkernel.build_npu_micro_kernel(ascend_910())
        assert kernel.params["M2"] == 16 and kernel.params["N2"] == 16
        assert "mad" in kernel.source

    def test_extent_hints_cap_fractal_grid(self):
        kernel = microkernel.build_npu_micro_kernel(
            ascend_910(), m_extent=64, n_extent=64
        )
        assert kernel.tile_m <= 64 and kernel.tile_n <= 64


class TestRegistry:
    def test_lower_matmul_dispatches_by_backend(self):
        assert microkernel.lower_matmul(xeon_gold_6240()).backend == "cpu"
        assert microkernel.lower_matmul(a100()).backend == "gpu"
        assert microkernel.lower_matmul(ascend_910()).backend == "npu"

    def test_unregistered_backend_raises(self):
        kernel = ReplaceableMicroKernel(MicroKernelSpec("empty", ""))
        with pytest.raises(KeyError, match="empty"):
            kernel.lower(xeon_gold_6240())

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="matmul"):
            get_micro_kernel("conv-winograd")

    def test_register_rejects_bad_backend(self):
        kernel = ReplaceableMicroKernel(MicroKernelSpec("x", ""))
        with pytest.raises(ValueError):
            kernel.register("fpga", lambda hw, dt: None)


class TestChainIntegration:
    def test_matmul_roles_for_gemm(self):
        chain = batch_gemm_chain(2, 32, 16, 8, 24)
        roles = matmul_loop_roles(chain.op("gemm2"))
        assert roles == {"m": "m", "n": "n", "k": "l"}

    def test_matmul_roles_for_conv(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10)
        roles = matmul_loop_roles(chain.op("conv2"))
        assert roles["n"] == "oc2"
        assert roles["k"] == "oc1"

    def test_chain_min_tiles_capped_by_extents(self):
        chain = batch_gemm_chain(2, 32, 16, 8, 24)
        kernel = microkernel.lower_for_chain(ascend_910(), chain)
        mins = microkernel.chain_min_tiles(chain, kernel)
        extents = chain.loop_extents()
        for name, value in mins.items():
            assert value <= extents[name]

    def test_efficiency_penalizes_misalignment(self):
        chain = batch_gemm_chain(2, 64, 64, 64, 64)
        kernel = microkernel.lower_for_chain(a100(), chain)
        aligned = microkernel.chain_efficiency(
            chain, kernel, {"b": 2, "m": 64, "n": 64, "k": 64, "l": 64}
        )
        misaligned = microkernel.chain_efficiency(
            chain, kernel, {"b": 2, "m": 17, "n": 64, "k": 64, "l": 64}
        )
        assert misaligned < aligned

    def test_quanta_follow_granules(self):
        chain = batch_gemm_chain(2, 64, 64, 64, 64)
        kernel = microkernel.lower_for_chain(a100(), chain)
        quanta = microkernel.chain_quanta(chain, kernel)
        assert quanta["m"] == 16 and quanta["n"] == 16

    def test_efficiency_for_tiles_zero_guard(self):
        kernel = microkernel.lower_matmul(a100())
        assert kernel.efficiency_for_tiles(0, 16, 16) == 0.0
