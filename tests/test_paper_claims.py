"""The paper's headline claims, distilled as slow end-to-end tests.

`pytest tests/ -m slow -k paper_claims` demonstrates the reproduction
without running the full benchmark suite.
"""

import time

import pytest

from repro.baselines import get_system
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import a100, ascend_910, xeon_gold_6240
from repro.workloads import gemm_chain_config

pytestmark = pytest.mark.slow


class TestHeadlineClaims:
    def test_cpu_beats_tuned_compiler_on_bmm_chains(self):
        """Figure 5(a): Chimera over Ansor, geomean ~1.4x in the paper."""
        hw = xeon_gold_6240()
        ratios = []
        for name in ("G1", "G6", "G10"):
            chain = gemm_chain_config(name).build()
            chimera = get_system("chimera").run(chain, hw)
            ansor = get_system("ansor").run(chain, hw)
            ratios.append(ansor.time / chimera.time)
        geomean = 1.0
        for r in ratios:
            geomean *= r
        geomean **= 1 / len(ratios)
        assert geomean > 1.15

    def test_gpu_beats_fixed_order_fusion(self):
        """Figure 6(a): analytical ordering over BOLT-style fixed order
        (paper: 1.51x)."""
        hw = a100()
        chain = gemm_chain_config("G1").build()
        chimera = get_system("chimera").run(chain, hw)
        bolt = get_system("tvm-cutlass").run(chain, hw)
        assert chimera.time < bolt.time

    def test_npu_unified_buffer_caps_large_gemms(self):
        """Figure 7: the largest MLP-Mixer chain gains (almost) nothing
        over AKG — the UB staging bounds the fused kernel."""
        hw = ascend_910()
        small = gemm_chain_config("G1").build(batch_override=1)
        large = gemm_chain_config("G12").build(batch_override=1)
        gains = {}
        for label, chain in (("small", small), ("large", large)):
            chimera = get_system("chimera").run(chain, hw)
            akg = get_system("akg").run(chain, hw)
            gains[label] = akg.time / chimera.time
        assert gains["small"] > gains["large"]
        assert gains["large"] < 1.15  # essentially no gain

    def test_optimization_is_fast(self):
        """Section VI-E: analytical optimization takes seconds, not the
        tuner's profiling hours."""
        hw = xeon_gold_6240()
        chain = gemm_chain_config("G2").build()
        started = time.perf_counter()
        optimizer = ChimeraOptimizer(hw)
        optimizer.optimize(chain)
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0
        assert optimizer.last_stats.orders_scanned >= 24

    def test_fused_softmax_kernel_count(self):
        """Section VI-B: Relay/Ansor need three kernels for the softmax
        chain; Chimera needs one."""
        hw = a100()
        chain = gemm_chain_config("G4").build(with_softmax=True)
        chimera = get_system("chimera").run(chain, hw)
        relay = get_system("relay").run(chain, hw)
        assert chimera.report.launches == 1
        assert relay.report.launches == 3
        assert chimera.time < relay.time
