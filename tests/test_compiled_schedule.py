"""Equivalence suite for the compiled-schedule fast paths.

The compiled schedule and its consumers (compiled executor, materialized
trace, vectorized line simulator) must be *indistinguishable* from the
interpreted/scalar reference paths: identical traces, field-by-field equal
cache counters, allclose numerics.  Random chains, orders and tilings
across every chain family exercise the clamped-edge, halo and
partial-reduction corners.
"""

import random

import numpy as np
import pytest

from repro.codegen import (
    compile_schedule,
    execute_program,
    execute_reference,
    lower_schedule,
    program_digest,
    random_inputs,
)
from repro.codegen.program import LevelSpec, lower_levels
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, separable_chain
from repro.sim.cache import RegionCache
from repro.sim.hierarchy import MemoryHierarchySim
from repro.sim.linecache import measure_movement_lines, simulate_movement_lines
from repro.sim.trace import (
    materialize_trace,
    trace_program,
    trace_program_interpreted,
)

from tests.test_fuzz_chains import _random_chain, _random_order_and_tiles

HW = xeon_gold_6240()


def _random_program(rng: random.Random, chain):
    """A random single- or two-level block program for ``chain``."""
    order, tiles = _random_order_and_tiles(rng, chain)
    if rng.random() < 0.5:
        return lower_schedule(chain, order, tiles)
    outer = {name: tile * rng.choice([2, 4]) for name, tile in tiles.items()}
    return lower_levels(
        chain,
        [LevelSpec(order=order, tiles=outer), LevelSpec(order=order, tiles=tiles)],
    )


def _family_programs(seed: int):
    """One random program per chain family."""
    rng = random.Random(seed)
    chains = [
        _random_chain(rng),  # random gemm or conv family
        batch_gemm_chain(
            2, 12, 8, 8, 12,
            with_softmax=rng.random() < 0.7,
            qkt_layout=rng.random() < 0.5,
        ),
        separable_chain(1, rng.choice([4, 6]), 10, 10, 4, kernel=3,
                        with_relu=rng.random() < 0.5),
        conv_chain(1, 4, 10, 10, 6, 4, k1=3, k2=rng.choice([1, 3])),
    ]
    return [(chain, _random_program(rng, chain)) for chain in chains]


@pytest.mark.parametrize("seed", range(6))
def test_fuzzed_compiled_executor_matches_legacy_and_reference(seed):
    for chain, program in _family_programs(seed):
        inputs = random_inputs(chain, seed)
        compiled = execute_program(program, inputs, engine="compiled")
        legacy = execute_program(program, inputs, engine="legacy")
        reference = execute_reference(chain, inputs)
        for name, expected in reference.items():
            np.testing.assert_allclose(
                compiled[name], legacy[name], rtol=1e-9, atol=1e-11,
                err_msg=f"seed {seed} engines diverge on {chain.name}",
            )
            np.testing.assert_allclose(
                compiled[name], expected, rtol=1e-9, atol=1e-11,
                err_msg=f"seed {seed} compiled vs reference on {chain.name}",
            )


@pytest.mark.parametrize("seed", range(6))
def test_fuzzed_trace_matches_interpreted(seed):
    for _, program in _family_programs(seed):
        assert list(trace_program(program)) == list(
            trace_program_interpreted(program)
        )


@pytest.mark.parametrize("seed", range(4))
def test_fuzzed_line_sim_stats_exactly_equal(seed):
    for chain, program in _family_programs(seed):
        fast = simulate_movement_lines(chain, HW, program, engine="fast")
        scalar = simulate_movement_lines(chain, HW, program, engine="scalar")
        assert list(fast) == list(scalar)
        for name in scalar:
            assert fast[name] == scalar[name], (
                f"seed {seed} {chain.name} level {name}: "
                f"{fast[name]} != {scalar[name]}"
            )


@pytest.mark.parametrize("seed", range(4))
def test_fuzzed_boundary_query_engines_agree(seed):
    rng = random.Random(1000 + seed)
    chain = _random_chain(rng)
    program = _random_program(rng, chain)
    for level in [lv.name for lv in HW.on_chip_levels]:
        fast = measure_movement_lines(chain, HW, program, level, engine="fast")
        scalar = measure_movement_lines(
            chain, HW, program, level, engine="scalar"
        )
        assert fast == scalar


@pytest.mark.parametrize("seed", range(4))
def test_fuzzed_region_sim_matches_interpreted_replay(seed):
    for chain, program in _family_programs(seed):
        fast_sim = MemoryHierarchySim(HW)
        for access in materialize_trace(program):
            if access.write:
                fast_sim.write(access.key, access.nbytes)
            else:
                fast_sim.read(access.key, access.nbytes)
        fast_sim.flush()

        ref_sim = MemoryHierarchySim(HW)
        for access in trace_program_interpreted(program):
            if access.write:
                ref_sim.write(access.key, access.nbytes)
            else:
                ref_sim.read(access.key, access.nbytes)
        ref_sim.flush()

        assert fast_sim.boundary_traffic() == ref_sim.boundary_traffic()
        for name, stats in ref_sim.stats().items():
            assert fast_sim.stats()[name] == stats


@pytest.mark.parametrize("seed", range(6))
def test_block_count_matches_compiled_and_traversal(seed):
    for _, program in _family_programs(seed):
        schedule = compile_schedule(program)
        walked = len(list(program.iterate_blocks()))
        assert program.block_count() == schedule.n_blocks == walked
        assert sum(t.blocks for t in schedule.tables) == schedule.n_blocks


def test_schedule_memoized_per_instance_and_digest():
    chain = batch_gemm_chain(2, 12, 8, 8, 12, with_softmax=True)
    program = lower_schedule(chain, ("b", "m", "l"), {"b": 1, "m": 4, "l": 4})
    relowered = lower_schedule(chain, ("b", "m", "l"), {"b": 1, "m": 4, "l": 4})
    assert program is not relowered
    assert program_digest(program) == program_digest(relowered)
    # Same instance: same object.  Re-lowered: digest memo returns the
    # already-built schedule.
    assert compile_schedule(program) is compile_schedule(program)
    assert compile_schedule(relowered) is compile_schedule(program)
    other = lower_schedule(chain, ("b", "m", "l"), {"b": 1, "m": 4, "l": 8})
    assert program_digest(other) != program_digest(program)


def test_materialized_trace_cached_on_schedule():
    chain = batch_gemm_chain(2, 12, 8, 8, 12)
    program = lower_schedule(chain, ("b", "m"), {"b": 1, "m": 4})
    first = materialize_trace(program)
    assert materialize_trace(program) is first
    # A re-lowered equal program shares the schedule, hence the trace.
    relowered = lower_schedule(chain, ("b", "m"), {"b": 1, "m": 4})
    assert materialize_trace(relowered) is first


def test_compiled_schedule_describe_and_table_lookup():
    chain = batch_gemm_chain(2, 12, 8, 8, 12)
    program = lower_schedule(chain, ("b", "m"), {"b": 1, "m": 4})
    schedule = compile_schedule(program)
    text = schedule.describe()
    assert str(schedule.n_blocks) in text
    for op in chain.ops:
        assert schedule.table_for(op.name).op.name == op.name
    with pytest.raises(KeyError):
        schedule.table_for("nonexistent")


def test_executor_rejects_unknown_engine():
    chain = batch_gemm_chain(1, 8, 8, 8, 8)
    program = lower_schedule(chain, ("m",), {"m": 4})
    with pytest.raises(ValueError, match="unknown executor engine"):
        execute_program(program, random_inputs(chain, 0), engine="bogus")


def test_line_sim_rejects_unknown_engine():
    chain = batch_gemm_chain(1, 8, 8, 8, 8)
    program = lower_schedule(chain, ("m",), {"m": 4})
    with pytest.raises(ValueError, match="unknown line-sim engine"):
        simulate_movement_lines(chain, HW, program, engine="bogus")


def test_region_cache_eviction_chaining_is_public():
    spills = []
    inner = RegionCache("inner", 64)
    assert inner.on_evict is None
    inner.on_evict = lambda key, nbytes, dirty: spills.append(
        (key, nbytes, dirty)
    )
    inner.access("a", 48, write=True)
    inner.access("b", 48)  # evicts dirty "a"
    assert spills == [("a", 48, True)]
    assert inner.on_evict is not None


def test_hierarchy_chains_evictions_without_private_pokes():
    sim = MemoryHierarchySim(HW)
    for index, cache in enumerate(sim.caches):
        if index < len(sim.caches) - 1:
            assert cache.on_evict is not None
        else:
            assert cache.on_evict is None
