"""Tests for the MLP chain (GEMM -> GELU -> GEMM)."""

import numpy as np
import pytest

from repro.codegen import execute_program, execute_reference, random_inputs
from repro.codegen.program import lower_schedule
from repro.core.fusion import decide_fusion
from repro.hardware import xeon_gold_6240
from repro.ir.chains import mlp_chain


class TestMlpChain:
    def test_structure(self):
        chain = mlp_chain(128, 64, 256, 64)
        assert [op.tag for op in chain.ops] == ["gemm", "gelu", "gemm"]
        assert set(chain.independent_loops()) == {"m", "h", "k", "n"}
        assert chain.io_tensors() == ("X", "W1", "W2", "Y")
        assert set(chain.intermediate_tensors()) == {"H", "A"}

    def test_without_gelu(self):
        chain = mlp_chain(64, 32, 128, 32, with_gelu=False)
        assert [op.tag for op in chain.ops] == ["gemm", "gemm"]

    def test_private_loops(self):
        chain = mlp_chain(128, 64, 256, 64)
        assert chain.private_loops(chain.op("fc1")) == ("k",)
        assert chain.private_loops(chain.op("fc2")) == ("n",)

    def test_numerical_correctness(self):
        chain = mlp_chain(32, 16, 48, 16)
        order = ("m", "h", "k", "n")
        program = lower_schedule(
            chain, order, {"m": 8, "h": 16, "k": 8, "n": 8}
        )
        inputs = random_inputs(chain, 4)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["Y"], ref["Y"], rtol=1e-9, atol=1e-11)

    def test_gelu_not_idempotent_still_correct_under_split_h(self):
        # h (the intermediate's column dim) split across blocks: gelu runs
        # once per region, never twice.
        chain = mlp_chain(16, 16, 64, 16)
        program = lower_schedule(
            chain, ("m", "h", "k", "n"), {"m": 8, "h": 8, "k": 16, "n": 16}
        )
        inputs = random_inputs(chain, 2)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["Y"], ref["Y"], rtol=1e-9, atol=1e-11)

    @pytest.mark.slow
    def test_fusion_profitable_for_memory_bound_mlp(self):
        # Thin MLP (small n/k) is memory-bound: fusing saves the hidden
        # activation round trip.
        chain = mlp_chain(2048, 64, 2048, 64)
        decision = decide_fusion(chain, xeon_gold_6240())
        assert decision.predicted_speedup > 1.0
