"""Sharded plan cache: routing, byte-accounted LRU, compaction, fuzz."""

import json
import os
import threading
import time

import pytest

from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain
from repro.runtime.serialization import FORMAT_VERSION
from repro.service import (
    CompileRequest,
    CompileService,
    PlanCache,
    ServiceMetrics,
    ShardedPlanCache,
    detect_shards,
    entry_bytes,
    open_cache,
    shard_index,
)
from repro.service.cache import SHARD_DIR_FORMAT

HW = xeon_gold_6240()


def make_entry(key, pad=0):
    return {
        "format_version": FORMAT_VERSION,
        "key": key,
        "chain": "c",
        "hardware": "h",
        "use_fusion": True,
        "fused_plan": {"stub": True, "pad": "x" * pad},
        "unfused_plans": [],
    }


def hexkey(i):
    """Deterministic 64-char hex keys shaped like real digests."""
    return f"{i:08x}" + "0" * 56


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestShardRouting:
    def test_deterministic_and_in_range(self):
        for i in range(64):
            key = hexkey(i)
            index = shard_index(key, 4)
            assert 0 <= index < 4
            assert shard_index(key, 4) == index

    def test_spreads_across_shards(self):
        indices = {shard_index(hexkey(i), 4) for i in range(64)}
        assert indices == {0, 1, 2, 3}

    def test_non_hex_keys_still_route(self):
        assert 0 <= shard_index("not-hex-at-all", 4) < 4

    def test_single_shard_maps_everything_to_zero(self):
        assert shard_index(hexkey(123), 1) == 0


# ----------------------------------------------------------------------
# the sharded facade
# ----------------------------------------------------------------------
class TestShardedPlanCache:
    def test_round_trip_and_shard_dirs(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=4)
        keys = [hexkey(i) for i in range(16)]
        for key in keys:
            cache.put(key, make_entry(key))
        for key in keys:
            assert cache.get(key)["key"] == key
        dirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
        assert dirs == [SHARD_DIR_FORMAT.format(i) for i in range(4)]
        assert sorted(cache.disk_keys()) == sorted(keys)

    def test_entries_land_on_their_routed_shard(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=4)
        key = hexkey(7)
        cache.put(key, make_entry(key))
        shard_dir = tmp_path / SHARD_DIR_FORMAT.format(shard_index(key, 4))
        assert (shard_dir / f"{key}.plan.json").exists()

    def test_stats_shape_and_per_shard_counts(self, tmp_path):
        metrics = ServiceMetrics()
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2, metrics=metrics)
        for i in range(8):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        stats = cache.stats()
        assert stats["shards"] == 2
        assert stats["disk_entries"] == 8
        assert stats["memory_entries"] == 8
        assert stats["disk_bytes"] > 0
        assert stats["memory_bytes"] > 0
        assert len(stats["per_shard"]) == 2
        assert sum(s["disk_entries"] for s in stats["per_shard"]) == 8
        assert sum(s["disk_bytes"] for s in stats["per_shard"]) == (
            stats["disk_bytes"]
        )

    def test_memory_byte_accounting_matches_entries(self):
        cache = ShardedPlanCache(shards=2)
        total = 0
        for i in range(6):
            entry = make_entry(hexkey(i), pad=100 * i)
            cache.put(hexkey(i), entry)
            total += entry_bytes(entry)
        assert cache.memory_bytes() == total

    def test_byte_budget_evicts_lru_first(self):
        metrics = ServiceMetrics()
        # One shard so the LRU order is global and assertable.
        cache = ShardedPlanCache(
            shards=1, metrics=metrics, max_memory_bytes=3000
        )
        for i in range(8):
            cache.put(hexkey(i), make_entry(hexkey(i), pad=800))
        assert cache.memory_bytes() <= 3000
        assert metrics.snapshot()["evictions"] > 0
        # newest entries survive, oldest were dropped
        assert cache.get_with_tier(hexkey(7))[1] == "memory"

    def test_oversized_entry_keeps_at_least_itself(self):
        cache = ShardedPlanCache(shards=1, max_memory_bytes=10)
        cache.put(hexkey(1), make_entry(hexkey(1), pad=500))
        assert cache.stats()["memory_entries"] == 1

    def test_clear_removes_every_shard_entry(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=4)
        for i in range(12):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        assert cache.clear() == 12
        assert cache.disk_keys() == []
        assert cache.stats()["memory_entries"] == 0


# ----------------------------------------------------------------------
# layout detection
# ----------------------------------------------------------------------
class TestOpenCache:
    def test_detects_sharded_layout(self, tmp_path):
        ShardedPlanCache(cache_dir=tmp_path, shards=4).put(
            hexkey(1), make_entry(hexkey(1))
        )
        assert detect_shards(tmp_path) == 4
        cache = open_cache(cache_dir=tmp_path)
        assert isinstance(cache, ShardedPlanCache)
        assert cache.stats()["shards"] == 4
        assert cache.get(hexkey(1)) is not None

    def test_detects_flat_layout(self, tmp_path):
        PlanCache(cache_dir=tmp_path).put(hexkey(1), make_entry(hexkey(1)))
        assert detect_shards(tmp_path) == 0  # no shard-XX/ subdirectories
        cache = open_cache(cache_dir=tmp_path)
        assert cache.stats()["shards"] == 1
        assert cache.get(hexkey(1)) is not None

    def test_explicit_shards_override_detection(self, tmp_path):
        cache = open_cache(cache_dir=tmp_path, shards=3)
        assert cache.stats()["shards"] == 3

    def test_memory_only_defaults_to_flat(self):
        assert open_cache(cache_dir=None).stats()["shards"] == 1


# ----------------------------------------------------------------------
# warm restart + compaction
# ----------------------------------------------------------------------
class TestWarmAndCompact:
    def test_warm_memory_prefers_newest(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=1)
        for i in range(6):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        path = tmp_path / SHARD_DIR_FORMAT.format(0) / f"{hexkey(5)}.plan.json"
        newest = time.time() + 100
        os.utime(path, (newest, newest))

        fresh = ShardedPlanCache(cache_dir=tmp_path, shards=1)
        assert fresh.warm_memory(limit=3) == 3
        assert fresh.get_with_tier(hexkey(5))[1] == "memory"

    def test_warm_memory_respects_byte_budget(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=1)
        for i in range(6):
            cache.put(hexkey(i), make_entry(hexkey(i), pad=800))
        fresh = ShardedPlanCache(
            cache_dir=tmp_path, shards=1, max_memory_bytes=2000
        )
        fresh.warm_memory()
        assert fresh.memory_bytes() <= 2000

    def test_warm_memory_limit_is_global_across_shards(self, tmp_path):
        """Regression: ``limit=N`` used to be applied per shard, loading
        up to ``shards * N`` entries — and dividing it instead would load
        the per-shard newest rather than the globally newest.  The limit
        must select the N globally newest entries."""
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=4)
        for i in range(12):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        # Stamp three entries (landing on different shards) far newer.
        newest = time.time() + 100
        for i in (1, 6, 11):
            path = (
                tmp_path
                / SHARD_DIR_FORMAT.format(shard_index(hexkey(i), 4))
                / f"{hexkey(i)}.plan.json"
            )
            os.utime(path, (newest, newest))

        fresh = ShardedPlanCache(cache_dir=tmp_path, shards=4)
        assert fresh.warm_memory(limit=3) == 3
        assert fresh.memory_len() == 3
        for i in (1, 6, 11):
            assert fresh.get_with_tier(hexkey(i))[1] == "memory"

    def test_warm_memory_tie_break_is_deterministic(self, tmp_path):
        """Equal mtimes (coarse filesystem clocks) break on the key, so
        two processes warming the same directory load the same entries."""
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2)
        for i in range(8):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        stamp = time.time() + 50
        for i in range(8):
            path = (
                tmp_path
                / SHARD_DIR_FORMAT.format(shard_index(hexkey(i), 2))
                / f"{hexkey(i)}.plan.json"
            )
            os.utime(path, (stamp, stamp))

        loads = []
        for _ in range(2):
            fresh = ShardedPlanCache(cache_dir=tmp_path, shards=2)
            assert fresh.warm_memory(limit=4) == 4
            loads.append(
                sorted(
                    key
                    for key in fresh.keys()
                    if fresh.get_with_tier(key)[1] == "memory"
                )
            )
        assert loads[0] == loads[1]
        # ties sort on the key ascending
        assert loads[0] == sorted(hexkey(i) for i in range(4))

    def test_warm_keys_stops_before_evicting_warmed_entries(self, tmp_path):
        """``warm_keys`` must stop *before* inserting past the capacity:
        one insert too many would evict from the LRU front — exactly the
        entries it just warmed."""
        cache = PlanCache(cache_dir=tmp_path, capacity=16)
        for i in range(6):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        fresh = PlanCache(cache_dir=tmp_path, capacity=3)
        loaded = fresh.warm_keys([hexkey(i) for i in range(6)])
        assert loaded == 3
        assert fresh.memory_len() == 3
        # The first three keys offered are the three resident.
        for i in range(3):
            assert fresh.get_with_tier(hexkey(i))[1] == "memory"

    def test_warm_keys_skips_missing_and_duplicate_keys(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path, capacity=8)
        for i in range(3):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        fresh = PlanCache(cache_dir=tmp_path, capacity=8)
        loaded = fresh.warm_keys(
            [hexkey(0), hexkey(0), hexkey(99), hexkey(1)]
        )
        assert loaded == 2
        assert fresh.memory_len() == 2

    def test_compact_removes_corrupt_entries(self, tmp_path):
        metrics = ServiceMetrics()
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2, metrics=metrics)
        for i in range(4):
            cache.put(hexkey(i), make_entry(hexkey(i)))
        victim = (
            tmp_path
            / SHARD_DIR_FORMAT.format(shard_index(hexkey(0), 2))
            / f"{hexkey(0)}.plan.json"
        )
        victim.write_text("{ not json")
        report = cache.compact()
        assert report["removed_corrupt"] == 1
        assert report["kept"] == 3
        assert not victim.exists()

    def test_compact_enforces_age_and_budget(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=1)
        for i in range(6):
            cache.put(hexkey(i), make_entry(hexkey(i), pad=500))
        # age out everything
        report = cache.compact(max_age_seconds=0.0)
        assert report["removed_stale"] == 6
        assert cache.disk_keys() == []

        for i in range(6):
            cache.put(hexkey(i), make_entry(hexkey(i), pad=500))
        per_entry = (tmp_path / SHARD_DIR_FORMAT.format(0)).glob("*.plan.json")
        one_size = max(p.stat().st_size for p in per_entry)
        report = cache.compact(max_disk_bytes=3 * one_size)
        assert report["removed_budget"] >= 3
        stats = cache.stats()
        assert stats["disk_bytes"] <= 3 * one_size

    def test_compact_report_shape(self, tmp_path):
        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2)
        report = cache.compact()
        assert set(report) == {
            "scanned",
            "removed_corrupt",
            "removed_stale",
            "removed_budget",
            "kept",
            "kept_bytes",
        }


# ----------------------------------------------------------------------
# satellite 3: concurrency fuzz over the sharded service
# ----------------------------------------------------------------------
class TestShardedServiceFuzz:
    def test_metrics_invariant_under_racing_threads(self, tmp_path):
        """requests == hits + misses + coalesced, whatever the interleaving.

        Eight threads hammer a sharded, byte-bounded service with a
        mixture of repeated and fresh keys while evictions and coalesced
        compiles race; the counter algebra must survive exactly.
        """
        service = CompileService(
            cache_dir=tmp_path,
            memory_capacity=8,
            shards=4,
            max_memory_bytes=20_000,
        )

        def fake(request, key):
            time.sleep(0.001)
            return make_entry(key, pad=600), "compiled", None, "cold"

        service._compile_with_recovery = fake
        request = CompileRequest(chain=batch_gemm_chain(2, 64, 32, 32, 64),
                                 hardware=HW)
        barrier = threading.Barrier(8)
        errors = []

        def worker(seed):
            barrier.wait()
            try:
                for step in range(60):
                    key = hexkey((seed * 7 + step) % 24)
                    served = service.serve_raw(request, key=key)
                    assert served.ok
                    if step % 9 == 0:
                        service.cache.clear_memory()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        snap = service.metrics.snapshot()
        assert snap["requests"] == 8 * 60
        assert snap["requests"] == (
            snap["hits"] + snap["misses"] + snap["coalesced"]
        )
        assert snap["hits"] == snap["hits_memory"] + snap["hits_disk"]
        # every key was compiled at least once and landed on disk
        assert len(service.cache.disk_keys()) == 24

    def test_invariant_under_async_pipelined_load(self, tmp_path):
        """The same algebra holds when the server multiplexes the load."""
        import asyncio

        from repro.serving import (
            AsyncServingClient,
            BackgroundServer,
            ServerConfig,
        )

        service = CompileService(cache_dir=tmp_path, shards=2)

        def fake(request, key):
            return make_entry(key), "compiled", None, "cold"

        service._compile_with_recovery = fake
        config = ServerConfig(port=0, workers=4, compact_interval=0)
        with BackgroundServer(config, service=service) as bg:

            async def scenario():
                clients = [
                    await AsyncServingClient.open(bg.host, bg.port)
                    for _ in range(3)
                ]
                chains = [
                    batch_gemm_chain(2, 64, 32, 32, 64, name=f"f{i % 5}")
                    for i in range(30)
                ]
                replies = await asyncio.gather(
                    *(
                        clients[i % 3].compile(chain, "xeon-gold-6240")
                        for i, chain in enumerate(chains)
                    )
                )
                for client in clients:
                    await client.close()
                return replies

            replies = asyncio.run(scenario())
        assert all(reply.ok for reply in replies)
        snap = service.metrics.snapshot()
        assert snap["requests"] == 30
        assert snap["requests"] == (
            snap["hits"] + snap["misses"] + snap["coalesced"]
        )
        assert snap["misses"] == 5  # five distinct chains


# ----------------------------------------------------------------------
# on-disk stats through the service facade
# ----------------------------------------------------------------------
class TestServiceCacheStats:
    def test_service_stats_expose_shard_breakdown(self, tmp_path):
        service = CompileService(cache_dir=tmp_path, shards=2)

        def fake(request, key):
            return make_entry(key), "compiled", None, "cold"

        service._compile_with_recovery = fake
        request = CompileRequest(chain=batch_gemm_chain(2, 64, 32, 32, 64),
                                 hardware=HW)
        for i in range(6):
            service.serve_raw(request, key=hexkey(i))
        cache_stats = service.stats()["cache"]
        assert cache_stats["shards"] == 2
        assert cache_stats["disk_entries"] == 6
        assert len(cache_stats["per_shard"]) == 2
