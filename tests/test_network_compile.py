"""Network-level compilation: partitioner, differential execution,
serialization round-trips, and cold/warm/parallel determinism.

The differential suite compiles a 1-layer tiny Transformer, executes every
compiled kernel plan through the block-program interpreter, and checks the
numbers against the whole-operator numpy reference — the end-to-end
analogue of the per-chain correctness tests.
"""

import json
import os
import random

import numpy as np
import pytest

from repro.codegen import execute_reference, random_inputs
from repro.codegen.executor import execute_program
from repro.codegen.program import lower_plan
from repro.hardware import xeon_gold_6240
from repro.ir import builders
from repro.ir.chains import batch_gemm_chain
from repro.ir.graph import (
    ComputeDAG,
    GraphBuilder,
    GraphPartition,
    is_fusable,
    partition_graph,
)
from repro.runtime.network import (
    NetworkCompilationError,
    compile_network,
)
from repro.runtime.serialization import (
    PlanFormatError,
    load_network_plan,
    network_plan_from_dict,
    network_plan_json,
    network_plan_to_dict,
    save_network_plan,
)
from repro.service import CompileService
from repro.workloads import build_network, network_config
from repro.workloads.networks import NetworkConfig

#: Operator tags the numerical executor implements.
EXECUTABLE_TAGS = frozenset(
    ["gemm", "batch_gemm", "conv2d", "depthwise_conv2d",
     "relu", "bias_add", "gelu", "softmax", "layer_norm"]
)

#: The stitched Bert/Transformer partition (see build_network): attention
#: fuses score+softmax+value, the projections pick up their layer norms,
#: and the FFN block fuses end to end.  Only the QKV projection remains.
STITCHED_BERT_CHAINS = [
    "attention_score+attention_softmax+attention_value",
    "out_proj+ln1",
    "ffn1+ffn_gelu+ffn2+ln2",
]

TINY = NetworkConfig("Tiny-TF", layers=1, heads=2, seq=16, head_dim=8)


@pytest.fixture(scope="module", autouse=True)
def _force_stitching():
    """The module's shape/determinism assertions describe the stitched
    partition; pin the knob on so ``REPRO_STITCH=0`` tier-1 runs still
    pass (explicit ``stitch=False`` callers are unaffected)."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_STITCH", "1")
    yield
    mp.undo()


@pytest.fixture(scope="module")
def tiny_plan():
    dag = build_network(TINY)
    return dag, compile_network(dag, xeon_gold_6240())


class TestPartitioner:
    def test_bert_partition_shape(self):
        dag = build_network(network_config("Bert-Small"))
        partition = partition_graph(dag)
        assert [n.name for n in partition.chains] == STITCHED_BERT_CHAINS
        assert [n.name for n in partition.remainder] == ["qkv_proj"]
        # Every original graph node lands in exactly one stitched member set.
        covered = [
            member
            for node in partition.all_nodes()
            for member in partition.members_of(node.name)
        ]
        assert sorted(covered) == sorted(n.name for n in dag.nodes)
        assert partition.total_flops() == dag.total_flops()

    def test_bert_partition_without_stitching(self):
        dag = build_network(network_config("Bert-Small"))
        partition = partition_graph(dag, stitch=False)
        assert partition.stitched == ()
        # The attention matmuls are single-op graph nodes, so nothing in
        # the unstitched Transformer graph forms a fusable chain.
        assert partition.chains == ()
        assert len(partition.remainder) == len(dag.nodes)
        assert partition.total_flops() == dag.total_flops()

    def test_validate_rejects_missing_node(self):
        dag = build_network(TINY)
        partition = partition_graph(dag)
        broken = GraphPartition(
            graph=partition.graph,
            chains=partition.chains,
            remainder=partition.remainder[:-1],
            stitched=partition.stitched,
        )
        with pytest.raises(ValueError, match="misses"):
            broken.validate(dag)

    def test_validate_rejects_duplicates(self):
        dag = build_network(TINY)
        partition = partition_graph(dag)
        broken = GraphPartition(
            graph=partition.graph,
            chains=partition.chains + partition.chains[-1:],
            remainder=partition.remainder,
            stitched=partition.stitched,
        )
        with pytest.raises(ValueError, match="more than one"):
            broken.validate(dag)

    def test_validate_rejects_order_violation(self):
        dag = build_network(TINY)
        partition = partition_graph(dag)
        broken = GraphPartition(
            graph=partition.graph,
            chains=tuple(reversed(partition.chains)),
            remainder=partition.remainder,
            stitched=partition.stitched,
        )
        with pytest.raises(ValueError, match="topological"):
            broken.validate(dag)

    def test_custom_predicate(self):
        dag = build_network(TINY)
        everything = partition_graph(dag, predicate=lambda chain: True)
        assert len(everything.chains) == len(dag.nodes)
        assert everything.remainder == ()


def _random_dag(rng: random.Random, index: int) -> ComputeDAG:
    """A random DAG mixing fusable chains, single ops, and random deps."""
    builder = GraphBuilder(f"fuzz_dag_{index}")
    names = []
    for node_index in range(rng.randint(2, 7)):
        repeat = rng.choice([1, 1, 2, 4])
        deps = rng.sample(names, k=min(len(names), rng.randint(0, 2)))
        kind = rng.random()
        if kind < 0.4:
            chain = batch_gemm_chain(
                rng.choice([1, 2]),
                rng.choice([8, 16]),
                8,
                8,
                rng.choice([8, 16]),
                with_softmax=rng.random() < 0.5,
                name=f"chain{node_index}",
            )
            names.append(
                builder.add_chain(chain, deps=deps, repeat=repeat)
            )
        elif kind < 0.7:
            op, tensors = builders.gemm(
                f"gemm{node_index}", rng.choice([8, 16]), 8, 8
            )
            names.append(
                builder.add_op(op, tensors, deps=deps, repeat=repeat)
            )
        else:
            op, tensors = builders.gelu(f"act{node_index}", (8, 8))
            names.append(
                builder.add_op(op, tensors, deps=deps, repeat=repeat)
            )
    return builder.build()


@pytest.mark.parametrize("seed", range(15))
def test_fuzzed_partition_properties(seed):
    rng = random.Random(seed)
    dag = _random_dag(rng, seed)
    partition = partition_graph(dag)
    partition.validate(dag)

    # Every original graph node belongs to exactly one partition node
    # (stitched nodes expand to their member lists).
    membership = [
        member
        for node in partition.all_nodes()
        for member in partition.members_of(node.name)
    ]
    assert sorted(membership) == sorted(n.name for n in dag.nodes)

    # Both sides preserve topological order (by first stitched member).
    order = {node.name: i for i, node in enumerate(dag.nodes)}
    for side in (partition.chains, partition.remainder):
        firsts = [order[partition.members_of(n.name)[0]] for n in side]
        assert firsts == sorted(firsts)

    # Unstitched chain nodes still satisfy the fusability predicate, and
    # every stitched node folds at least one compute-intensive member.
    stitched_names = {record.node.name for record in partition.stitched}
    for node in partition.chains:
        if node.name not in stitched_names:
            assert is_fusable(node.chain)
        else:
            record = partition.stitched_record(node.name)
            assert len(record.members) >= 2
            assert record.stitched  # at least one glue op was folded
            assert len(node.chain.compute_intensive_ops()) >= 1
    for node in partition.remainder:
        assert node.name not in stitched_names
        assert not is_fusable(node.chain)

    # No flops are lost, and stitching never changes the total.
    assert partition.total_flops() == dag.total_flops()
    unstitched = partition_graph(dag, stitch=False)
    assert unstitched.total_flops() == dag.total_flops()


class TestDifferentialExecution:
    def test_every_executable_node_matches_reference(self, tiny_plan):
        dag, plan = tiny_plan
        executed = []
        for node in plan.nodes:
            for fusion_plan in node.plans:
                chain = fusion_plan.chain
                if not all(op.tag in EXECUTABLE_TAGS for op in chain.ops):
                    continue
                program = lower_plan(fusion_plan)
                inputs = random_inputs(chain, seed=7)
                got = execute_program(program, inputs)
                reference = execute_reference(chain, inputs)
                for name, expected in reference.items():
                    np.testing.assert_allclose(
                        got[name], expected, rtol=1e-6, atol=1e-9,
                        err_msg=f"node {node.name} tensor {name}",
                    )
                executed.append(node.name)
        # The stitched attention chain must be among the verified kernels,
        # and every node in the plan executes (layer norms included).
        assert any("attention" in name for name in executed)
        assert set(executed) == {n.name for n in plan.nodes}

    def test_fused_attention_chain_is_compiled_fused(self, tiny_plan):
        _, plan = tiny_plan
        name = "attention_score+attention_softmax+attention_value"
        attention = plan.node(name)
        assert attention.fusable
        assert attention.kernels == len(attention.plans)
        assert attention.members == (
            "attention_score", "attention_softmax", "attention_value",
        )
        assert [s.tag for s in attention.stitched] == ["softmax"]
        assert [s.role for s in attention.stitched] == ["sandwich"]

    def test_network_time_not_worse_than_unfused(self, tiny_plan):
        _, plan = tiny_plan
        assert plan.total_time <= plan.unfused_total_time * (1 + 1e-12)
        assert plan.total_time > 0
        assert plan.speedup_over_unfused >= 1.0


class TestSerialization:
    def test_round_trip_byte_identical(self, tiny_plan, tmp_path):
        _, plan = tiny_plan
        path = tmp_path / "tiny.network.json"
        save_network_plan(plan, path)
        reloaded = load_network_plan(path)
        assert network_plan_json(reloaded) == network_plan_json(plan)
        # And the file itself is stable across a save-load-save cycle.
        path2 = tmp_path / "tiny2.network.json"
        save_network_plan(reloaded, path2)
        assert path.read_text() == path2.read_text()

    def test_dict_round_trip_preserves_times(self, tiny_plan):
        _, plan = tiny_plan
        reloaded = network_plan_from_dict(network_plan_to_dict(plan))
        assert reloaded.total_time == plan.total_time
        assert reloaded.unfused_total_time == plan.unfused_total_time
        assert [n.name for n in reloaded.nodes] == [
            n.name for n in plan.nodes
        ]
        # Volatile source fields are not serialized.
        assert all(n.source is None for n in reloaded.nodes)

    def test_unknown_version_rejected(self, tiny_plan):
        _, plan = tiny_plan
        data = network_plan_to_dict(plan)
        data["format_version"] = 999
        with pytest.raises(PlanFormatError, match="999"):
            network_plan_from_dict(data)

    def test_missing_field_rejected(self, tiny_plan):
        _, plan = tiny_plan
        data = network_plan_to_dict(plan)
        del data["nodes"][0]["repeat"]
        with pytest.raises(PlanFormatError, match="repeat"):
            network_plan_from_dict(data)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PlanFormatError, match="not valid JSON"):
            load_network_plan(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(PlanFormatError, match="JSON object"):
            load_network_plan(path)


def env_workers():
    """The CI smoke step exercises the pool via REPRO_SEARCH_WORKERS."""
    try:
        return max(1, int(os.environ.get("REPRO_SEARCH_WORKERS", "1")))
    except ValueError:
        return 1


class TestDeterminism:
    """Cold cache, warm cache, and the parallel search must agree byte
    for byte on Bert-Base (extends the test_search_equivalence contract
    to whole networks)."""

    @pytest.fixture(scope="class")
    def bert(self):
        dag = build_network(network_config("Bert-Base"))
        return dag, xeon_gold_6240()

    def test_cold_warm_and_serial_agree(self, bert, tmp_path_factory):
        dag, hw = bert
        cache_dir = tmp_path_factory.mktemp("plans")
        serial = compile_network(dag, hw)

        service = CompileService(cache_dir=cache_dir)
        cold = compile_network(dag, hw, service=service)
        assert service.stats()["misses"] == len(cold.nodes)

        warm = compile_network(dag, hw, service=service)
        assert service.stats()["hits"] == len(cold.nodes)

        fresh = CompileService(cache_dir=cache_dir)  # disk tier
        disk = compile_network(dag, hw, service=fresh)

        baseline = network_plan_json(serial)
        assert network_plan_json(cold) == baseline
        assert network_plan_json(warm) == baseline
        assert network_plan_json(disk) == baseline
        # Cache provenance is visible in memory but never serialized.
        assert all(n.source in ("memory", "disk") for n in warm.nodes)

    def test_parallel_search_agrees(self, bert):
        workers = env_workers()
        if workers <= 1:
            pytest.skip("set REPRO_SEARCH_WORKERS>=2 to exercise the pool")
        from repro.core.search import SearchPolicy, solve_memo

        dag, hw = bert
        solve_memo().clear()
        baseline = compile_network(
            dag, hw, policy=SearchPolicy.exhaustive()
        )
        solve_memo().clear()
        parallel = compile_network(
            dag,
            hw,
            policy=SearchPolicy(prune=True, memoize=True, workers=workers),
        )
        assert network_plan_json(parallel) == network_plan_json(baseline)


class TestFailureIsolation:
    def test_unknown_timing_mode_rejected(self):
        dag = build_network(TINY)
        with pytest.raises(ValueError, match="timing"):
            compile_network(dag, xeon_gold_6240(), timing="exact")

    def test_batch_failure_reports_all_nodes(self, monkeypatch):
        dag = build_network(TINY)
        hw = xeon_gold_6240()
        service = CompileService(retries=0, fallback=False)

        from repro.runtime import pipeline as pipeline_module

        real = pipeline_module.compile_chain

        def exploding(chain, hardware, config=None, **kwargs):
            if "attention" in chain.name:
                raise RuntimeError("boom")
            return real(chain, hardware, config, **kwargs)

        monkeypatch.setattr(pipeline_module, "compile_chain", exploding)
        with pytest.raises(NetworkCompilationError, match="attention"):
            compile_network(dag, hw, service=service)
