"""Tests for block program lowering (loop distribution, hierarchy)."""

import pytest

from repro.codegen.program import (
    BodyNode,
    LevelSpec,
    LoopNode,
    SeqNode,
    lower_levels,
    lower_plan,
    lower_schedule,
)
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


class TestDistribution:
    def test_producer_private_loop_distributes(self):
        chain = gemm_chain(16, 16, 16, 16)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 8, "l": 8, "k": 8, "n": 8}
        )
        # Under (m, l) the k loop (gemm1) and n loop (gemm2) are siblings.
        blocks = list(program.iterate_blocks())
        names = [op.name for op, _ in blocks]
        # Within one (m, l) block: both k blocks before both n blocks.
        assert names[:4] == ["gemm1", "gemm1", "gemm2", "gemm2"]

    def test_producer_runs_before_consumer(self):
        chain = batch_gemm_chain(1, 8, 8, 8, 8, with_softmax=True)
        order = ("m", "l", "k", "n")
        program = lower_schedule(chain, order, {n: 4 for n in order})
        seen_first = {}
        for op, _ in program.iterate_blocks():
            seen_first.setdefault(op.name, len(seen_first))
        assert seen_first["gemm1"] < seen_first["softmax"] < seen_first["gemm2"]

    def test_block_count(self):
        chain = gemm_chain(16, 16, 16, 16)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 8, "l": 8, "k": 8, "n": 8}
        )
        # 2 m-blocks x 2 l-blocks x (2 k-blocks + 2 n-blocks) = 16.
        assert program.block_count() == 16
        assert program.block_count() == len(list(program.iterate_blocks()))
        # block_count derives from the compiled schedule: one traversal,
        # no hand-maintained counting copy to drift.
        from repro.codegen import compile_schedule

        schedule = compile_schedule(program)
        assert program.block_count() == schedule.n_blocks
        assert schedule.n_blocks == len(schedule.block_table)

    def test_unknown_loop_rejected(self):
        chain = gemm_chain(8, 8, 8, 8)
        with pytest.raises(ValueError, match="unknown"):
            lower_schedule(chain, ("m", "z"), {"m": 4})

    def test_ranges_clamped_to_extent(self):
        chain = gemm_chain(10, 8, 8, 8)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 4, "l": 8, "k": 8, "n": 8}
        )
        m_ranges = {block["m"] for op, block in program.iterate_blocks()}
        assert (8, 10) in m_ranges  # the clipped edge block

    def test_describe(self):
        chain = gemm_chain(8, 8, 8, 8)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 4, "l": 4, "k": 4, "n": 4}
        )
        text = program.describe()
        assert "for m" in text and "gemm1 block" in text


class TestHierarchy:
    def test_inner_blocks_clip_to_parent(self):
        chain = gemm_chain(16, 16, 16, 16)
        levels = [
            LevelSpec(("m", "l", "k", "n"), {"m": 10, "l": 16, "k": 16, "n": 16}),
            LevelSpec(("m", "l", "k", "n"), {"m": 4, "l": 16, "k": 16, "n": 16}),
        ]
        program = lower_levels(chain, levels)
        m_ranges = sorted({b["m"] for _, b in program.iterate_blocks()})
        # Parent blocks [0,10) and [10,16); children of 4 clip at both.
        assert (8, 10) in m_ranges and (10, 14) in m_ranges

    def test_order_and_tiles_properties_are_innermost(self):
        chain = gemm_chain(16, 16, 16, 16)
        levels = [
            LevelSpec(("m", "l", "k", "n"), {"m": 16, "l": 16, "k": 16, "n": 16}),
            LevelSpec(("l", "m", "k", "n"), {"m": 4, "l": 4, "k": 4, "n": 4}),
        ]
        program = lower_levels(chain, levels)
        assert program.order == ("l", "m", "k", "n")
        assert program.tiles["m"] == 4

    def test_lower_plan_composes_all_levels(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        plan = ChimeraOptimizer(xeon_gold_6240()).optimize(chain)
        program = lower_plan(plan)
        assert len(program.levels) == len(plan.levels)
        assert program.block_count() > 0

    def test_empty_levels_rejected(self):
        chain = gemm_chain(8, 8, 8, 8)
        with pytest.raises(ValueError, match="level"):
            lower_levels(chain, [])


class TestConvPrograms:
    def test_conv_chain_lowering(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1)
        extents = chain.loop_extents()
        order = tuple(n for n in chain.independent_loops() if extents[n] > 1)
        program = lower_schedule(chain, order, {n: 4 for n in order})
        ops = {op.name for op, _ in program.iterate_blocks()}
        assert ops == {"conv1", "conv2"}
