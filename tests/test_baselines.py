"""Tests for the baseline system machinery."""

import pytest

from repro.baselines import (
    PROFILES,
    SystemProfile,
    default_order,
    get_system,
    segment_chain,
    subchain,
    systems_for,
    template_plan,
    tuned_plan,
)
from repro.hardware import a100, ascend_910, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


@pytest.fixture(scope="module")
def cpu():
    return xeon_gold_6240()


class TestSegmentation:
    def test_none_splits_every_op(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        kernels = segment_chain(chain, "none")
        assert [len(k.ops) for k in kernels] == [1, 1, 1]

    def test_epilogue_folds_elementwise(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, with_relu=True)
        kernels = segment_chain(chain, "epilogue")
        assert [tuple(op.tag for op in k.ops) for k in kernels] == [
            ("conv2d", "relu"),
            ("conv2d", "relu"),
        ]

    def test_epilogue_keeps_softmax_separate(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        kernels = segment_chain(chain, "epilogue")
        assert [tuple(op.tag for op in k.ops) for k in kernels] == [
            ("batch_gemm",),
            ("softmax",),
            ("batch_gemm",),
        ]

    def test_fused_modes_keep_chain_whole(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        assert len(segment_chain(chain, "fixed-order")) == 1
        assert len(segment_chain(chain, "chimera")) == 1

    def test_subchain_io_classification(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        sub = subchain(chain, [chain.op("gemm2")])
        assert "C" in sub.io_tensors()  # intermediate becomes IO


class TestDefaultOrder:
    def test_pure_reductions_last(self):
        # k is a reduction everywhere; l is spatial in gemm1 (appears as a
        # spatial loop first), so only k must trail the spatial loops.
        chain = gemm_chain(32, 32, 32, 32)
        order = default_order(chain)
        assert order.index("k") > order.index("m")
        assert order.index("k") > order.index("n")
        assert order.index("k") > order.index("l")

    def test_degenerate_loops_excluded(self):
        chain = batch_gemm_chain(1, 32, 16, 16, 32)
        assert "b" not in default_order(chain)


class TestTemplatePlan:
    def test_fits_capacity(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        plan = template_plan(chain, cpu, base_tile=64)
        for sched in plan.levels:
            assert sched.predicted_mu <= sched.capacity

    def test_producer_reduction_whole_at_outer_levels(self, cpu):
        # k (the first GEMM's private reduction) stays whole above the
        # innermost level; l (shared) may tile anywhere.
        chain = batch_gemm_chain(2, 128, 64, 64, 128)
        plan = template_plan(chain, cpu, base_tile=64)
        extents = chain.loop_extents()
        for sched in plan.levels[1:]:
            assert sched.tiles["k"] == extents["k"]

    def test_smaller_template_more_movement(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        small = template_plan(chain, cpu, base_tile=16)
        large = template_plan(chain, cpu, base_tile=128)
        assert small.outer.predicted_dv >= large.outer.predicted_dv


class TestTunedPlan:
    def test_deterministic(self, cpu):
        chain = gemm_chain(256, 256, 256, 256)
        plan_a, _ = tuned_plan(chain, cpu, trials=30, seed=5)
        plan_b, _ = tuned_plan(chain, cpu, trials=30, seed=5)
        assert dict(plan_a.inner.tiles) == dict(plan_b.inner.tiles)

    def test_more_trials_never_worse(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        few, _ = tuned_plan(chain, cpu, trials=6, seed=1)
        many, _ = tuned_plan(chain, cpu, trials=300, seed=1)
        assert many.outer.predicted_dv <= few.outer.predicted_dv * 1.001

    def test_trials_reported(self, cpu):
        chain = gemm_chain(64, 64, 64, 64)
        _, used = tuned_plan(chain, cpu, trials=42)
        assert used == 42

    def test_randomized_order_changes_with_seed(self, cpu):
        chain = gemm_chain(256, 256, 256, 256)
        orders = {
            tuned_plan(chain, cpu, trials=5, seed=s, randomize_order=True)[0]
            .outer.order
            for s in range(6)
        }
        assert len(orders) > 1


class TestSystems:
    def test_registry_lookup(self):
        assert get_system("chimera").name == "Chimera"
        with pytest.raises(KeyError, match="chimera"):
            get_system("tvm")

    def test_backend_filtering(self):
        cpu_systems = {s.name for s in systems_for(xeon_gold_6240())}
        assert "TensorRT" not in cpu_systems and "PyTorch" in cpu_systems
        npu_systems = {s.name for s in systems_for(ascend_910())}
        assert npu_systems == {"TBE", "AKG", "Chimera"}

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SystemProfile("x", "magic", "optimal")
        with pytest.raises(ValueError):
            SystemProfile("x", "none", "oracle")

    def test_unsupported_backend_raises(self):
        chain = gemm_chain(64, 64, 64, 64)
        with pytest.raises(ValueError, match="backend"):
            get_system("tensorrt").run(chain, xeon_gold_6240())

    def test_run_produces_result(self, cpu):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        result = get_system("relay").run(chain, cpu)
        assert result.time > 0
        assert result.report.launches == 2  # two unfused GEMM kernels
        assert result.system == "Relay"

    def test_ansor_counts_tune_trials(self, cpu):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        result = get_system("ansor").run(chain, cpu)
        assert result.tune_trials == 2 * PROFILES["ansor"].tune_trials

    def test_chimera_beats_template_baselines(self, cpu):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        chimera = get_system("chimera").run(chain, cpu)
        relay = get_system("relay").run(chain, cpu)
        assert chimera.time < relay.time

    def test_fixed_order_fuses_but_one_kernel(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        result = get_system("tvm-cutlass").run(chain, a100())
        assert result.report.launches == 1
