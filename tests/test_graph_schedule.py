"""Graph-level execution scheduling: order legality, peaks, residency.

Covers the scheduler's contract (ISSUE 9): fuzzed topological legality
and peak dominance over the naive order, determinism under a fixed seed,
rematerialize-vs-spill pricing under a binding budget, serialization
round trips of residency decisions, the ``REPRO_SCHED=0`` escape hatch,
the residency replay cross-check, and the explicit-stack DFS surviving a
5000-node linear chain (the recursive exemplar idiom would blow
``sys.getrecursionlimit()`` there).
"""

import random

import pytest

from repro.analysis.reporting import network_plan_table
from repro.core.movement import spill_round_trip_bytes
from repro.hardware import ascend_910, xeon_gold_6240
from repro.ir import builders
from repro.ir.dtypes import FP16
from repro.ir.graph import GraphBuilder, partition_graph
from repro.runtime.network import compile_network
from repro.runtime.scheduler import (
    GraphSchedule,
    TensorResidency,
    default_memory_budget,
    schedule_partition,
    scheduling_enabled,
)
from repro.runtime.serialization import (
    network_plan_from_dict,
    network_plan_json,
    network_plan_to_dict,
)
from repro.sim.residency import ScheduleReplayError, replay_schedule
from repro.workloads import (
    build_multibranch_network,
    build_network,
    network_config,
    pack_networks,
    network_time,
)

HW = xeon_gold_6240()


@pytest.fixture(autouse=True)
def _scheduling_on(monkeypatch):
    # This suite tests the scheduler; pin it on even when the tier-1
    # run exercises the REPRO_SCHED=0 escape hatch (tests that need the
    # disabled path set the variable themselves).
    monkeypatch.setenv("REPRO_SCHED", "1")


def _random_dag(rng, name="fuzz"):
    """A random GEMM DAG: varied sizes, random deps to earlier nodes."""
    builder = GraphBuilder(name)
    count = rng.randint(3, 12)
    names = []
    for index in range(count):
        size = rng.choice((8, 16, 32))
        op, tensors = builders.gemm(
            f"n{index}", size, size, rng.choice((8, 16, 32)), dtype=FP16
        )
        pool = [n for n in names if rng.random() < 0.4]
        names.append(
            builder.add_op(
                op, tensors, deps=pool, repeat=rng.randint(1, 3)
            )
        )
    return builder.build()


def _assert_legal_order(schedule, partition):
    nodes = [node.name for node in partition.all_nodes()]
    assert sorted(schedule.order) == sorted(nodes)
    position = {name: i for i, name in enumerate(schedule.order)}
    for producer, users in partition.edges().items():
        for user in users:
            assert position[producer] < position[user], (
                f"{user} runs before its producer {producer}"
            )


def test_fuzzed_orders_legal_and_never_worse_than_naive():
    for seed in range(25):
        rng = random.Random(seed)
        dag = _random_dag(rng, name=f"fuzz{seed}")
        partition = partition_graph(dag)
        schedule = schedule_partition(
            partition, HW, seed=seed, anneal_iters=80,
            dag_order=[n.name for n in dag.nodes],
        )
        _assert_legal_order(schedule, partition)
        assert schedule.peak_bytes <= schedule.naive_peak_bytes
        assert len(schedule.live_bytes) == len(schedule.order)
        assert schedule.peak_bytes == max(schedule.live_bytes)


def test_same_seed_same_schedule():
    dag = build_multibranch_network(branches=4, seq=64, width=256,
                                    reduce_dim=32)
    partition = partition_graph(dag)
    first = schedule_partition(partition, HW, seed=11)
    second = schedule_partition(partition, HW, seed=11)
    assert first == second


def test_five_thousand_node_chain_no_recursion_error():
    # A linear chain 5x deeper than the default recursion limit: the
    # explicit-stack DFS and Kahn baseline must both survive it.
    builder = GraphBuilder("deep-chain")
    previous = []
    for index in range(5000):
        op, tensors = builders.gemm(f"n{index}", 4, 4, 4, dtype=FP16)
        previous = [builder.add_op(op, tensors, deps=previous)]
    partition = partition_graph(builder.build(), stitch=False)
    schedule = schedule_partition(partition, HW, anneal_iters=0)
    assert len(schedule.order) == 5000
    # A path graph has exactly one topological order.
    assert schedule.order == tuple(f"n{i}" for i in range(5000))
    assert schedule.peak_bytes == schedule.naive_peak_bytes


def test_default_budget_semantics():
    # xeon L3 is chip-shared: the budget is its capacity, once.
    assert default_memory_budget(HW) == HW.levels[-2].capacity
    # ascend L1 is per-core: sequential graph execution sees all cores.
    ascend = ascend_910()
    assert default_memory_budget(ascend) == (
        ascend.levels[-2].capacity * ascend.num_cores
    )


def test_budget_binding_prefers_cheaper_eviction():
    dag = build_multibranch_network(branches=4, seq=128, width=1024,
                                    reduce_dim=64)
    partition = partition_graph(dag)
    free = schedule_partition(partition, HW)
    budget = int(free.peak_bytes * 0.9)
    # Expensive recompute (100us per node): spilling wins.
    spilled = schedule_partition(
        partition, HW, memory_budget=budget,
        node_times={n.name: 1e-4 for n in partition.all_nodes()},
    )
    assert spilled.evictions
    assert all(r.decision == "spill" for r in spilled.evictions)
    for record in spilled.evictions:
        expected = HW.memory_time(
            spill_round_trip_bytes(record.nbytes, len(record.consumers)),
            "DRAM",
        )
        assert record.overhead_time == pytest.approx(expected)
    # Near-free recompute: rematerialization wins.
    remat = schedule_partition(
        partition, HW, memory_budget=budget,
        node_times={n.name: 1e-12 for n in partition.all_nodes()},
    )
    assert remat.evictions
    assert all(r.decision == "rematerialize" for r in remat.evictions)
    for record in remat.evictions:
        assert record.overhead_time == pytest.approx(
            1e-12 * len(record.consumers)
        )
    # Without node times, rematerialization is unpriceable: spill only.
    no_times = schedule_partition(partition, HW, memory_budget=budget)
    assert no_times.evictions
    assert all(r.decision == "spill" for r in no_times.evictions)
    assert spilled.peak_bytes <= budget


def test_eviction_lowers_peak_and_replay_confirms():
    dag = build_multibranch_network(branches=4, seq=128, width=1024,
                                    reduce_dim=64)
    partition = partition_graph(dag)
    free = schedule_partition(partition, HW)
    bound = schedule_partition(
        partition, HW, memory_budget=int(free.peak_bytes * 0.9)
    )
    assert bound.peak_bytes < free.peak_bytes
    trace = replay_schedule(bound)
    assert trace.peak_bytes == bound.peak_bytes
    assert trace.live_bytes == bound.live_bytes
    assert trace.spill_bytes == sum(
        spill_round_trip_bytes(r.nbytes, len(r.consumers))
        for r in bound.evictions
        if r.decision == "spill"
    )


def test_replay_rejects_corrupt_schedule():
    dag = build_multibranch_network(branches=2, seq=64, width=256,
                                    reduce_dim=32)
    partition = partition_graph(dag)
    schedule = schedule_partition(partition, HW)
    backwards = GraphSchedule(
        graph=schedule.graph,
        order=tuple(reversed(schedule.order)),
        live_bytes=schedule.live_bytes,
        peak_bytes=schedule.peak_bytes,
        naive_peak_bytes=schedule.naive_peak_bytes,
        memory_budget=schedule.memory_budget,
        seed=schedule.seed,
        residency=schedule.residency,
    )
    with pytest.raises(ScheduleReplayError):
        replay_schedule(backwards)


def test_residency_decision_validated():
    with pytest.raises(ValueError, match="unknown residency decision"):
        TensorResidency(
            producer="a", tensor="a.C", nbytes=4, consumers=("b",),
            decision="teleport",
        )


def test_compiled_plan_carries_schedule_and_round_trips():
    dag = build_multibranch_network(branches=3, seq=64, width=256,
                                    reduce_dim=32)
    plan = compile_network(dag, HW, memory_budget=96 * 1024)
    assert plan.schedule is not None
    assert plan.execution_order == plan.schedule.order
    assert tuple(n.name for n in plan.nodes) == plan.schedule.order
    assert plan.peak_memory_bytes == plan.schedule.peak_bytes
    assert plan.memory_budget == 96 * 1024
    rebuilt = network_plan_from_dict(network_plan_to_dict(plan))
    assert rebuilt.schedule == plan.schedule
    assert network_plan_json(rebuilt) == network_plan_json(plan)


def test_spill_overhead_charges_both_sides():
    dag = build_multibranch_network(branches=4, seq=128, width=1024,
                                    reduce_dim=64)
    free = compile_network(dag, HW)
    bound = compile_network(
        dag, HW, memory_budget=int(free.peak_memory_bytes * 0.9)
    )
    assert bound.spill_total_time > 0
    assert bound.total_time > free.total_time
    # The fused-vs-unfused invariant must survive residency charges.
    assert bound.total_time <= bound.unfused_total_time
    charged = {
        r.producer: r.overhead_time for r in bound.schedule.evictions
    }
    for node in bound.nodes:
        assert node.spill_time == charged.get(node.name, 0.0)
        assert node.total_time == (
            node.time * node.repeat + node.spill_time
        )


def test_sched_seed_env_and_disable_env(monkeypatch):
    dag = build_multibranch_network(branches=3, seq=64, width=256,
                                    reduce_dim=32)
    monkeypatch.setenv("REPRO_SCHED_SEED", "7")
    first = compile_network(dag, HW)
    second = compile_network(dag, HW)
    assert first.schedule.seed == 7
    assert network_plan_json(first) == network_plan_json(second)

    monkeypatch.setenv("REPRO_SCHED", "0")
    assert not scheduling_enabled()
    off = compile_network(dag, HW)
    off_again = compile_network(dag, HW)
    assert off.schedule is None
    assert off.peak_memory_bytes is None
    assert network_plan_json(off) == network_plan_json(off_again)
    # Unscheduled plans keep the partition's own node order.
    partition = partition_graph(dag)
    assert tuple(n.name for n in off.nodes) == tuple(
        n.name for n in partition.all_nodes()
    )
    assert all(n.spill_time == 0.0 for n in off.nodes)


def test_simulated_timing_replays_schedule():
    dag = build_multibranch_network(branches=2, seq=32, width=64,
                                    reduce_dim=16)
    plan = compile_network(dag, HW, timing="simulated")
    assert plan.schedule is not None
    trace = replay_schedule(plan.schedule)
    assert trace.peak_bytes == plan.schedule.peak_bytes


def test_network_time_charges_residency_overhead():
    dag = build_multibranch_network(branches=4, seq=128, width=1024,
                                    reduce_dim=64)
    partition = partition_graph(dag)
    free = schedule_partition(partition, HW)
    bound = schedule_partition(
        partition, HW, memory_budget=int(free.peak_bytes * 0.9)
    )
    assert bound.evictions
    base = network_time(dag, HW, base_system="relay", chain_system="chimera",
                        partition=partition)
    timed = network_time(dag, HW, base_system="relay", chain_system="chimera",
                         partition=partition, schedule=bound)
    assert timed.total == pytest.approx(
        base.total + bound.overhead_time
    )
    bad = GraphSchedule(
        graph=bound.graph, order=bound.order, live_bytes=bound.live_bytes,
        peak_bytes=bound.peak_bytes,
        naive_peak_bytes=bound.naive_peak_bytes,
        memory_budget=bound.memory_budget, seed=bound.seed,
        residency=(TensorResidency(
            producer="ghost", tensor="ghost.C", nbytes=8,
            consumers=("head",), decision="spill", overhead_time=1e-6,
        ),),
    )
    with pytest.raises(ValueError, match="ghost"):
        network_time(dag, HW, base_system="relay", chain_system="chimera",
                     partition=partition, schedule=bad)


def test_report_table_has_residency_columns():
    dag = build_multibranch_network(branches=3, seq=64, width=256,
                                    reduce_dim=32)
    plan = compile_network(dag, HW)
    table = network_plan_table(plan)
    for column in ("pos", "live", "residency"):
        assert column in table.splitlines()[0]
    assert "keep" in table
    off = compile_network(dag, HW, schedule=False)
    off_table = network_plan_table(off)
    assert "keep" not in off_table

    described = plan.describe()
    assert "peak" in described and "budget" in described


def test_packed_networks_schedule_beats_interleaved_naive():
    bert = build_network(network_config("Bert-Small"))
    packed = pack_networks([bert] * 2, name="Bert-Small-x2")
    # Tenant prefixes keep node names unique; deps stay tenant-local.
    assert packed.nodes[0].name.startswith("t0.")
    assert all(
        dep.split(".")[0] == node.name.split(".")[0]
        for node in packed.nodes for dep in node.deps
    )
    partition = partition_graph(packed)
    schedule = schedule_partition(
        partition, HW, dag_order=[n.name for n in packed.nodes]
    )
    assert schedule.peak_bytes < schedule.naive_peak_bytes
    assert schedule.peak_reduction >= 1.3
    _assert_legal_order(schedule, partition)


def test_invalid_inputs():
    dag = build_multibranch_network(branches=2, seq=32, width=64,
                                    reduce_dim=16)
    partition = partition_graph(dag)
    with pytest.raises(ValueError, match="memory_budget"):
        schedule_partition(partition, HW, memory_budget=0)
    with pytest.raises(ValueError, match="pack_networks"):
        pack_networks([])
    with pytest.raises(ValueError, match="branches"):
        build_multibranch_network(branches=0)
    with pytest.raises(KeyError):
        schedule_partition(partition, HW).position("nope")
