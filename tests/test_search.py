"""Tests for the pruned/memoized/parallel order search layer."""

import math

import pytest

from repro.core.movement import MovementModel
from repro.core.optimizer import ChimeraOptimizer
from repro.core.reordering import candidate_models
from repro.core.search import (
    SearchPolicy,
    SearchStats,
    SolveMemo,
    chain_digest,
    dv_lower_bound,
    memo_key,
    reset_search_stats,
    search_stats_snapshot,
    search_tiles,
    solve_memo,
    upper_tile_bounds,
)
from repro.core.solver import solve_tiles
from repro.hardware import ascend_910, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, gemm_chain

CAPACITY = 256 * 1024.0


@pytest.fixture(autouse=True)
def clean_search_state():
    solve_memo().clear()
    reset_search_stats()
    yield
    solve_memo().clear()
    reset_search_stats()


@pytest.fixture
def chain():
    return gemm_chain(256, 256, 256, 256)


@pytest.fixture
def models(chain):
    return candidate_models(chain).models


class TestPolicy:
    def test_defaults(self):
        policy = SearchPolicy()
        assert policy.prune and policy.memoize and policy.workers == 1

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SearchPolicy(workers=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_WORKERS", "3")
        monkeypatch.setenv("REPRO_SEARCH_PRUNE", "0")
        monkeypatch.setenv("REPRO_SEARCH_MEMO", "false")
        policy = SearchPolicy.from_env()
        assert policy.workers == 3
        assert not policy.prune and not policy.memoize

    def test_from_env_garbage_is_safe(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_WORKERS", "lots")
        assert SearchPolicy.from_env().workers == 1


class TestBounds:
    def test_upper_bounds_within_extents(self, chain, models):
        extents = chain.loop_extents()
        bounds = upper_tile_bounds(models[0], CAPACITY)
        for name, value in bounds.items():
            assert 1 <= value <= extents[name]

    def test_upper_bounds_respect_parent(self, models):
        bounds = upper_tile_bounds(
            models[0], CAPACITY, max_parent={"m": 17}
        )
        assert bounds["m"] <= 17

    def test_bound_is_admissible(self, models):
        """The bound never exceeds the solver's DV on the same inputs."""
        for model in models:
            bound = dv_lower_bound(model, CAPACITY)
            solution = solve_tiles(model, CAPACITY)
            assert bound <= solution.dv * (1 + 1e-9)

    def test_infeasible_order_bounds_to_inf(self, models):
        tight = dv_lower_bound(models[0], 1.0)
        assert tight == math.inf


class TestMemo:
    def test_hit_returns_identical_solution(self, chain, models):
        model = models[0]
        digest = chain_digest(chain)
        key = memo_key(
            digest,
            model,
            CAPACITY,
            min_tiles=None,
            quanta=None,
            max_parent=None,
            hard_min_tiles=None,
            starts=4,
            constraints_token=None,
        )
        solution = solve_tiles(model, CAPACITY)
        memo = SolveMemo()
        memo.put(key, solution)
        assert memo.get(key) is solution

    def test_symmetric_orders_share_one_entry(self):
        """Equal-signature models produce equal memo keys."""
        chain = batch_gemm_chain(1, 64, 64, 64, 64)
        models = {
            perm: MovementModel(chain, perm)
            for perm in [("m", "l", "k", "n"), ("m", "l", "n", "k")]
        }
        digests = {
            perm: model.signature_digest() for perm, model in models.items()
        }
        a, b = digests.values()
        # n and k are symmetric in the GEMM chain's movement terms.
        assert (a == b) == (
            models[("m", "l", "k", "n")].signature
            == models[("m", "l", "n", "k")].signature
        )

    def test_lru_eviction(self):
        memo = SolveMemo(capacity=2)
        memo.put("a", "A")
        memo.put("b", "B")
        memo.get("a")
        memo.put("c", "C")  # evicts b, the least recently used
        assert memo.get("b") is None
        assert memo.get("a") == "A" and memo.get("c") == "C"

    def test_search_memo_hits_on_repeat(self, models):
        policy = SearchPolicy(prune=False, memoize=True, workers=1)
        stats_cold = SearchStats()
        search_tiles(models, CAPACITY, policy=policy, stats=stats_cold)
        stats_warm = SearchStats()
        search_tiles(models, CAPACITY, policy=policy, stats=stats_warm)
        assert stats_cold.solves == len(models)
        assert stats_warm.solves == 0
        assert stats_warm.memo_hits == len(models)

    def test_constraints_without_token_disable_memo(self, models):
        policy = SearchPolicy(prune=False, memoize=True, workers=1)
        constraint = lambda tiles: -1.0  # noqa: E731 - unkeyable on purpose
        for _ in range(2):
            stats = SearchStats()
            search_tiles(
                models,
                CAPACITY,
                constraints=(constraint,),
                policy=policy,
                stats=stats,
            )
            assert stats.memo_hits == 0
            assert stats.solves == len(models)


class TestStats:
    def test_counters_add_up(self, models):
        stats = SearchStats()
        search_tiles(
            models,
            CAPACITY,
            policy=SearchPolicy(prune=True, memoize=False, workers=1),
            stats=stats,
        )
        assert stats.candidates == len(models)
        assert stats.bound_evals == len(models)
        assert stats.pruned + stats.solves + stats.memo_hits == len(models)

    def test_global_snapshot_accumulates(self, models):
        search_tiles(models, CAPACITY, policy=SearchPolicy.exhaustive())
        snap = search_stats_snapshot()
        assert snap["searches"] == 1
        assert snap["solves"] == len(models)
        assert "memo" in snap

    def test_optimize_stats_surface(self, chain):
        optimizer = ChimeraOptimizer(
            xeon_gold_6240(),
            policy=SearchPolicy(prune=True, memoize=True, workers=1),
        )
        stats = SearchStats()
        optimizer.optimize(chain, stats=stats)
        assert stats.orders_enumerated > 0
        assert stats.solves + stats.memo_hits > 0
        last = optimizer.last_stats
        assert last.pruned == stats.pruned
        assert last.memo_hits == stats.memo_hits


class TestPruningExactness:
    def test_pruned_winner_matches_exhaustive(self):
        """On the preset where pruning bites hardest, answers must agree."""
        chain = gemm_chain(512, 512, 512, 512)
        hw = ascend_910()
        capacity = float(hw.on_chip_levels[-1].capacity) * 0.75
        models = candidate_models(chain).models
        constraints = ChimeraOptimizer(hw).extra_constraints(chain)
        token = ChimeraOptimizer.constraints_token(constraints)
        baseline = search_tiles(
            models,
            capacity,
            constraints=constraints,
            constraints_token=token,
            policy=SearchPolicy.exhaustive(),
        )
        solve_memo().clear()
        stats = SearchStats()
        pruned = search_tiles(
            models,
            capacity,
            constraints=constraints,
            constraints_token=token,
            policy=SearchPolicy(prune=True, memoize=True, workers=1),
            stats=stats,
        )
        assert pruned[0].perm == baseline[0].perm
        assert pruned[1].tiles == baseline[1].tiles
        assert pruned[1].dv == baseline[1].dv
        assert stats.solves < len(models)  # pruning actually engaged
