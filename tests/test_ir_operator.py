"""Tests for loops, tensors and operator specs."""

import pytest

from repro.ir.access import AffineExpr, TensorAccess
from repro.ir.builders import batch_gemm, conv2d, gemm, relu, softmax
from repro.ir.loops import Loop, LoopKind
from repro.ir.tensor import TensorSpec


class TestLoop:
    def test_reduction_flag(self):
        assert Loop("k", 8, LoopKind.REDUCTION).is_reduction
        assert not Loop("m", 8).is_reduction

    def test_bad_extent(self):
        with pytest.raises(ValueError):
            Loop("m", 0)

    def test_with_kind(self):
        loop = Loop("k", 8).with_kind(LoopKind.REDUCTION)
        assert loop.is_reduction and loop.extent == 8


class TestTensorSpec:
    def test_sizes(self):
        spec = TensorSpec("A", (4, 8))
        assert spec.elements == 32
        assert spec.nbytes == 64  # fp16 default

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            TensorSpec("A", (0, 3))
        with pytest.raises(ValueError):
            TensorSpec("A", ())


class TestGemmBuilder:
    def test_loops_and_flops(self):
        op, tensors = gemm("g", 32, 16, 8)
        assert op.flops == 2 * 32 * 16 * 8
        assert set(op.loop_names) == {"g.m", "g.k", "g.n"}
        assert op.reduction_loop_names == ("g.k",)
        assert tensors["g.A"].shape == (32, 16)
        assert tensors["g.C"].shape == (32, 8)

    def test_access_of(self):
        op, _ = gemm("g", 4, 4, 4)
        assert op.access_of("g.A").loops == ("g.k", "g.m")
        with pytest.raises(KeyError):
            op.access_of("missing")

    def test_output(self):
        op, _ = gemm("g", 4, 4, 4)
        assert op.output.tensor == "g.C"

    def test_iteration_space(self):
        op, _ = gemm("g", 4, 5, 6)
        assert op.iteration_space() == 4 * 5 * 6


class TestBatchGemmBuilder:
    def test_shapes(self):
        op, tensors = batch_gemm("bg", 2, 8, 4, 16)
        assert tensors["bg.A"].shape == (2, 8, 4)
        assert tensors["bg.B"].shape == (2, 4, 16)
        assert tensors["bg.C"].shape == (2, 8, 16)
        assert op.flops == 2 * 2 * 8 * 4 * 16


class TestConvBuilder:
    def test_output_size_convention(self):
        op, tensors = conv2d("c", 1, 8, 28, 28, 16, 3, stride=2)
        assert tensors["c.Y"].shape == (1, 16, 14, 14)

    def test_strided_access(self):
        op, _ = conv2d("c", 1, 8, 28, 28, 16, 3, stride=2)
        data = op.access_of("c.X")
        h_dim = data.dims[2]
        assert h_dim.coeff("c.oh") == 2
        assert h_dim.coeff("c.rh") == 1

    def test_reduction_order_is_ic_rh_rw(self):
        op, _ = conv2d("c", 1, 8, 28, 28, 16, 3)
        names = op.reduction_loop_names
        assert names == ("c.ic", "c.rh", "c.rw")


class TestMemoryIntensiveBuilders:
    def test_softmax_is_memory_intensive(self):
        op, _ = softmax("s", (2, 4, 8))
        assert not op.is_compute_intensive
        assert op.tag == "softmax"

    def test_relu_flops(self):
        op, _ = relu("r", (4, 4))
        assert op.flops == 16


class TestOperatorValidation:
    def test_duplicate_loops_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            from repro.ir.operator import OperatorKind, OperatorSpec

            OperatorSpec(
                name="bad",
                kind=OperatorKind.COMPUTE_INTENSIVE,
                tag="gemm",
                loops=(Loop("m", 2), Loop("m", 2)),
                reads=(),
                writes=(TensorAccess.simple("C", ("m",)),),
                flops=1,
            )

    def test_undeclared_loop_in_access_rejected(self):
        from repro.ir.operator import OperatorKind, OperatorSpec

        with pytest.raises(ValueError, match="undeclared"):
            OperatorSpec(
                name="bad",
                kind=OperatorKind.COMPUTE_INTENSIVE,
                tag="gemm",
                loops=(Loop("m", 2),),
                reads=(TensorAccess.simple("A", ("m", "k")),),
                writes=(TensorAccess.simple("C", ("m",)),),
                flops=1,
            )

    def test_renamed_loops(self):
        op, _ = gemm("g", 4, 4, 4)
        renamed = op.renamed_loops({"g.m": "m", "g.k": "k", "g.n": "n"})
        assert set(renamed.loop_names) == {"m", "k", "n"}
        assert renamed.access_of("g.A").loops == ("k", "m")

    def test_substituted_introduces_consumer_loops(self):
        op, _ = gemm("g", 4, 4, 4)
        mapping = {
            "g.m": AffineExpr.var("m"),
            "g.n": AffineExpr.var("l"),
        }
        new_loops = {"m": Loop("m", 4), "l": Loop("l", 4)}
        rewritten = op.substituted(mapping, new_loops)
        assert set(rewritten.loop_names) == {"g.k", "m", "l"}
        assert rewritten.access_of("g.C").loops == ("l", "m")
