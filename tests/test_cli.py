"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "G12" in out and "C8" in out and "chimera" in out

    def test_plan_gemm_chain(self, capsys):
        assert main(["plan", "G10", "--hw", "xeon-gold-6240"]) == 0
        out = capsys.readouterr().out
        assert "FusionPlan" in out and "sim report" in out

    def test_plan_with_source(self, capsys):
        assert main(["plan", "G10", "--source"]) == 0
        out = capsys.readouterr().out
        assert "fused kernel" in out

    @pytest.mark.slow
    def test_plan_conv_chain(self, capsys):
        assert main(["plan", "C7", "--hw", "a100", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out

    @pytest.mark.slow
    def test_compare_subset(self, capsys):
        assert main([
            "compare", "G10", "--systems", "relay,chimera",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chimera" in out and "Relay" in out

    def test_validate(self, capsys):
        assert main(["validate", "--size", "256", "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "R^2" in out

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["plan", "X9"])


class TestServiceCli:
    def test_compile_batch_cold_then_warm(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "plans")
        argv = ["compile-batch", "G10", "G11",
                "--cache-dir", cache_dir, "--workers", "2"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "compiled" in cold and "2 ok" in cold
        assert "misses 2" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "disk" in warm or "memory" in warm
        assert "compiled" not in warm.split("\n\n")[0]  # report table
        assert "hit rate 100%" in warm

    def test_compile_batch_without_cache_dir(self, capsys):
        assert main(["compile-batch", "G10"]) == 0
        out = capsys.readouterr().out
        assert "1 ok, 0 fallback, 0 failed" in out
        assert "<none>" in out  # no persistent tier configured

    def test_search_stats(self, capsys):
        assert main(["search-stats", "G10"]) == 0
        out = capsys.readouterr().out
        assert "compiled G10" in out
        assert "orders enumerated" in out
        assert "pruned" in out and "memo hits" in out and "solves" in out

    def test_search_stats_no_prune(self, capsys):
        assert main(["search-stats", "G10", "--no-prune", "--no-memo"]) == 0
        out = capsys.readouterr().out
        assert "pruned 0" in out
        assert "memo hits 0" in out

    def test_cache_stats_list_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "plans")
        main(["compile-batch", "G10", "--cache-dir", cache_dir])
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "1 cached plan(s)" in capsys.readouterr().out

        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "G10" in out and "xeon-gold-6240" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 cached plan(s)" in capsys.readouterr().out


class TestNetworkCli:
    @pytest.fixture(autouse=True)
    def _force_stitching(self, monkeypatch):
        # The table assertions describe the stitched partition.
        monkeypatch.setenv("REPRO_STITCH", "1")

    def test_compile_network_table_then_warm_json(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "plans")
        out_path = tmp_path / "bert-small.network.json"
        assert main([
            "compile-network", "--network", "bert-small",
            "--hw", "xeon-gold-6240", "--cache-dir", cache_dir,
            "--out", str(out_path),
        ]) == 0
        cold = capsys.readouterr().out
        assert "attention_score+attention_softmax+attention_value" in cold
        assert "stitched" in cold
        assert "end-to-end" in cold
        assert out_path.exists()

        assert main([
            "compile-network", "--network", "bert-small",
            "--hw", "xeon-gold-6240", "--cache-dir", cache_dir, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "Bert-Small"
        assert payload["service"]["hit_rate"] == 1.0
        assert payload["total_time"] <= payload["unfused_total_time"]
        saved = json.loads(out_path.read_text())
        assert payload["total_time"] == pytest.approx(
            sum(n["time"] * n["repeat"] for n in saved["nodes"])
        )

    def test_compile_network_unknown_network(self):
        with pytest.raises(KeyError):
            main(["compile-network", "--network", "GPT-3"])


class TestServingCli:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.__main__ as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_workloads", interrupted)
        assert main(["workloads"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_cache_stats_prints_bytes_and_shards(self, capsys, tmp_path):
        from repro.runtime.serialization import FORMAT_VERSION
        from repro.service import ShardedPlanCache

        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2)
        for i in range(4):
            key = f"{i:08x}" + "0" * 56
            cache.put(key, {
                "format_version": FORMAT_VERSION,
                "key": key,
                "use_fusion": True,
                "fused_plan": {},
                "unfused_plans": [],
            })

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 cached plan(s)" in out
        assert "2 shard(s)" in out
        assert "bytes on disk" in out
        assert "shard 00:" in out and "shard 01:" in out
        assert "memory tier:" in out

    def test_cache_clear_handles_sharded_layout(self, capsys, tmp_path):
        from repro.runtime.serialization import FORMAT_VERSION
        from repro.service import ShardedPlanCache

        cache = ShardedPlanCache(cache_dir=tmp_path, shards=2)
        key = "deadbeef" + "0" * 56
        cache.put(key, {
            "format_version": FORMAT_VERSION,
            "key": key,
            "use_fusion": True,
            "fused_plan": {},
            "unfused_plans": [],
        })
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_serve_drains_on_sigterm(self, tmp_path):
        import os
        import signal
        import socket
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--compact-interval", "0",
             "--cache-dir", str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=os.path.dirname(os.path.dirname(__file__)) or ".",
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on "), line
            host, port = line.strip().rsplit(" ", 1)[-1].split(":")
            with socket.create_connection((host, int(port)), timeout=10) as s:
                s.sendall(b'{"op":"ping","id":1}\n')
                reply = json.loads(s.makefile("rb").readline())
            assert reply["ok"] is True
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "drained cleanly" in out
