"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "G12" in out and "C8" in out and "chimera" in out

    def test_plan_gemm_chain(self, capsys):
        assert main(["plan", "G10", "--hw", "xeon-gold-6240"]) == 0
        out = capsys.readouterr().out
        assert "FusionPlan" in out and "sim report" in out

    def test_plan_with_source(self, capsys):
        assert main(["plan", "G10", "--source"]) == 0
        out = capsys.readouterr().out
        assert "fused kernel" in out

    @pytest.mark.slow
    def test_plan_conv_chain(self, capsys):
        assert main(["plan", "C7", "--hw", "a100", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out

    @pytest.mark.slow
    def test_compare_subset(self, capsys):
        assert main([
            "compare", "G10", "--systems", "relay,chimera",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chimera" in out and "Relay" in out

    def test_validate(self, capsys):
        assert main(["validate", "--size", "256", "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "R^2" in out

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["plan", "X9"])
