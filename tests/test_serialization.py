"""Tests for plan/chain/hardware JSON round-trips."""

import numpy as np
import pytest

import repro
from repro.codegen import build_kernel, execute_reference, random_inputs
from repro.hardware import all_presets, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.runtime.serialization import (
    PlanFormatError,
    chain_from_dict,
    chain_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)


class TestChainRoundTrip:
    def test_bmm_chain(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        rebuilt = chain_from_dict(chain_to_dict(chain))
        assert rebuilt.name == chain.name
        assert [op.name for op in rebuilt.ops] == [op.name for op in chain.ops]
        assert rebuilt.io_tensors() == chain.io_tensors()
        assert rebuilt.loop_extents() == chain.loop_extents()

    def test_conv_chain_preserves_affine_accesses(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 3)
        rebuilt = chain_from_dict(chain_to_dict(chain))
        original = chain.op("conv1").access_of("X")
        restored = rebuilt.op("conv1").access_of("X")
        assert original.dims == restored.dims

    def test_attrs_preserved(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1)
        rebuilt = chain_from_dict(chain_to_dict(chain))
        assert rebuilt.op("conv1").attrs["stride"] == 2

    def test_json_compatible(self):
        import json

        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        text = json.dumps(chain_to_dict(chain))
        assert chain_from_dict(json.loads(text)).name == chain.name


class TestHardwareRoundTrip:
    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    def test_presets(self, hw):
        rebuilt = hardware_from_dict(hardware_to_dict(hw))
        assert rebuilt == hw


class TestPlanRoundTrip:
    @pytest.fixture(scope="class")
    def plan(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        return repro.optimize_chain(chain, xeon_gold_6240())

    def test_round_trip_equivalence(self, plan):
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.micro_kernel == plan.micro_kernel
        assert rebuilt.compute_efficiency == plan.compute_efficiency
        assert rebuilt.predicted_time == pytest.approx(plan.predicted_time)
        for a, b in zip(rebuilt.levels, plan.levels):
            assert a.order == b.order
            assert dict(a.tiles) == dict(b.tiles)

    def test_reloaded_plan_executes_correctly(self, plan, tmp_path):
        path = tmp_path / "g.plan.json"
        save_plan(plan, path)
        reloaded = load_plan(path)
        kernel = build_kernel(reloaded)
        inputs = random_inputs(reloaded.chain, 3)
        outputs = kernel(inputs)
        reference = execute_reference(reloaded.chain, inputs)
        np.testing.assert_allclose(
            outputs["E"], reference["E"], rtol=1e-9, atol=1e-11
        )

    def test_reloaded_plan_simulates(self, plan, tmp_path):
        path = tmp_path / "g.plan.json"
        save_plan(plan, path)
        reloaded = load_plan(path)
        original = repro.simulate_plan(plan)
        again = repro.simulate_plan(reloaded)
        assert again.dram_traffic == pytest.approx(original.dram_traffic)

    def test_version_check(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(data)


class TestPlanFormatError:
    @pytest.fixture(scope="class")
    def plan(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        return repro.optimize_chain(chain, xeon_gold_6240())

    def test_unknown_version_raises_typed_error(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = 99
        with pytest.raises(PlanFormatError, match="format version"):
            plan_from_dict(data)

    def test_missing_version_raises_typed_error(self, plan):
        data = plan_to_dict(plan)
        del data["format_version"]
        with pytest.raises(PlanFormatError, match="format version"):
            plan_from_dict(data)

    @pytest.mark.parametrize(
        "field", ["chain", "hardware", "levels", "fused", "micro_kernel"]
    )
    def test_missing_field_raises_typed_error(self, plan, field):
        data = plan_to_dict(plan)
        del data[field]
        with pytest.raises(PlanFormatError, match="missing required field"):
            plan_from_dict(data)

    def test_missing_field_is_not_a_key_error(self, plan):
        data = plan_to_dict(plan)
        del data["levels"]
        try:
            plan_from_dict(data)
        except KeyError:  # pragma: no cover - the regression being guarded
            pytest.fail("load surfaced a raw KeyError")
        except PlanFormatError:
            pass

    def test_is_a_value_error_for_old_callers(self):
        assert issubclass(PlanFormatError, ValueError)

    def test_load_plan_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.plan.json"
        path.write_text("{ not json at all")
        with pytest.raises(PlanFormatError, match="not valid JSON"):
            load_plan(path)

    def test_load_plan_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.plan.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PlanFormatError, match="JSON object"):
            load_plan(path)

    def test_exported_at_top_level(self):
        assert repro.PlanFormatError is PlanFormatError


class TestRoundTripAcrossPresetsAndFamilies:
    """save_plan/load_plan equivalence for every Table I device and both
    chain families (attention batch-GEMM and conv chain)."""

    CHAINS = {
        "bmm": lambda: batch_gemm_chain(2, 64, 32, 32, 64, with_softmax=True),
        "conv": lambda: conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1),
    }

    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    @pytest.mark.parametrize("family", sorted(CHAINS))
    def test_save_load_round_trip(self, hw, family, tmp_path):
        plan = repro.optimize_chain(self.CHAINS[family](), hw)
        path = tmp_path / f"{family}-{hw.name}.plan.json"
        save_plan(plan, path)
        reloaded = load_plan(path)
        assert reloaded.hardware == plan.hardware
        assert reloaded.predicted_time == pytest.approx(plan.predicted_time)
        for a, b in zip(reloaded.levels, plan.levels):
            assert a.order == b.order
            assert dict(a.tiles) == dict(b.tiles)

    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    @pytest.mark.parametrize("family", sorted(CHAINS))
    def test_cache_key_stable_under_round_trip(self, hw, family, tmp_path):
        """The content hash survives a serialize/deserialize cycle — a
        reloaded request hits the same cache slot."""
        from repro.service import cache_key

        chain = self.CHAINS[family]()
        plan = repro.optimize_chain(chain, hw)
        path = tmp_path / "rt.plan.json"
        save_plan(plan, path)
        reloaded = load_plan(path)
        assert cache_key(reloaded.chain, reloaded.hardware) == cache_key(
            chain, hw
        )
